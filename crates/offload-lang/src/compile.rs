//! The compilation pipeline driver.

use std::collections::HashMap;

use memspace::AddressingMode;

use crate::bytecode::{FuncBody, FuncId, ModeRange, VmClass, VmDomain};
use crate::codegen::Compiler;
use crate::diag::CompileError;
use crate::parser::parse;
use crate::types::TypeTable;

/// How byte-level access is compiled on a word-addressed target
/// (paper §5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WordStrategy {
    /// The paper's hybrid discipline: pointers are word-addressed by
    /// default, constant sub-word offsets compile efficiently, and
    /// pointer arithmetic that would require a *variable* byte pointer
    /// is a **static error** pushing the programmer to restructure.
    #[default]
    Hybrid,
    /// "Keep all pointers as byte-pointers and convert when
    /// dereferencing": everything compiles, and every dereference pays
    /// shift/mask emulation cycles.
    ByteEmulate,
}

/// The machine model a program is compiled for.
#[derive(Clone, Copy, Debug)]
pub struct Target {
    /// Native addressing unit.
    pub addressing: AddressingMode,
    /// Strategy on word-addressed targets (ignored for byte targets).
    pub strategy: WordStrategy,
    /// Extra cycles per dereference under [`WordStrategy::ByteEmulate`].
    pub byte_emulation_cost: u32,
    /// Extra cycles for a constant sub-word extract under
    /// [`WordStrategy::Hybrid`].
    pub subword_extract_cost: u32,
    /// Extra cycles to dereference a stored `byte*` value (runtime
    /// extract) under [`WordStrategy::Hybrid`].
    pub byte_ptr_deref_cost: u32,
    /// Whether the [`crate::peephole`] superinstruction-fusion pass
    /// runs after codegen (on by default). Fusion is a host wall-clock
    /// optimisation only — simulated cycles, instruction counts and
    /// traces are bit-identical either way; turning it off is for the
    /// differential dispatch tests and for reading plain disassembly.
    pub superinstructions: bool,
}

impl Target {
    /// The Cell-like byte-addressed target (the default for offload
    /// experiments).
    pub fn cell_like() -> Target {
        Target {
            addressing: AddressingMode::Byte,
            strategy: WordStrategy::Hybrid,
            byte_emulation_cost: 4,
            subword_extract_cost: 1,
            byte_ptr_deref_cost: 2,
            superinstructions: true,
        }
    }

    /// A word-addressed target (TigerSHARC/PS2-VU-like) with the given
    /// word size in bytes.
    pub fn word_addressed(bytes: u8) -> Target {
        Target {
            addressing: AddressingMode::Word { bytes },
            ..Target::cell_like()
        }
    }

    /// Selects the word strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: WordStrategy) -> Target {
        self.strategy = strategy;
        self
    }

    /// Enables or disables the superinstruction-fusion peephole pass.
    #[must_use]
    pub fn with_superinstructions(mut self, enabled: bool) -> Target {
        self.superinstructions = enabled;
        self
    }

    /// Whether word-addressing rules apply.
    pub fn is_word_addressed(&self) -> bool {
        self.addressing.is_word_addressed()
    }

    /// The word size in bytes (1 on byte targets).
    pub fn word_bytes(&self) -> u32 {
        self.addressing.unit_bytes()
    }
}

/// Statistics from one compilation — the data of experiment E10
/// (function duplication) and E4 (annotation counts).
#[derive(Clone, Debug, Default)]
pub struct CompileStats {
    /// Total function bodies emitted (host + accelerator + offload
    /// blocks).
    pub functions_compiled: usize,
    /// Per source function: how many space-signature duplicates were
    /// compiled (host variant included).
    pub duplicates: HashMap<String, usize>,
    /// Number of offload blocks.
    pub offload_blocks: usize,
    /// Outer-domain size per offload block (annotation counts).
    pub domain_sizes: Vec<usize>,
    /// Superinstructions formed by the peephole fusion pass (0 when the
    /// pass is disabled on the [`Target`]).
    pub superinstructions: usize,
}

impl CompileStats {
    /// Total duplicates across all functions.
    pub fn total_duplicates(&self) -> usize {
        self.duplicates.values().sum()
    }
}

/// A compiled program, ready for the [`crate::Vm`].
#[derive(Clone, Debug)]
pub struct Program {
    /// All compiled function bodies.
    pub funcs: Vec<FuncBody>,
    /// Classes with their host vtables.
    pub classes: Vec<VmClass>,
    /// Dispatch domains, one per offload block.
    pub domains: Vec<VmDomain>,
    /// Access-mode tables, one per offload block (same index as
    /// [`Program::domains`]). An empty table is the legacy permissive
    /// contract; a non-empty one is handed to the runtime builder via
    /// `with_modes` at every launch of that block.
    pub mode_tables: Vec<Vec<ModeRange>>,
    /// Bytes of global variables (zero-initialised).
    pub globals_size: u32,
    /// The entry point (`fn main() -> int`).
    pub main: FuncId,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// The type table (for diagnostics).
    pub types: TypeTable,
}

impl Program {
    /// Looks up a function body.
    pub fn func(&self, id: FuncId) -> &FuncBody {
        &self.funcs[id.0 as usize]
    }

    /// Disassembles the whole program (debugging aid).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for func in &self.funcs {
            out.push_str(&func.to_string());
            out.push('\n');
        }
        out
    }
}

/// Compiles Offload/Mini source for a target.
///
/// # Errors
///
/// Returns the first lexical, syntax, type, memory-space,
/// word-addressing or offload error (see [`crate::ErrorKind`]). Use
/// [`CompileError::render`] for a source-annotated message.
pub fn compile(source: &str, target: &Target) -> Result<Program, CompileError> {
    let ast = parse(source)?;
    let compiler = Compiler::new(target);
    compiler.compile(&ast)
}
