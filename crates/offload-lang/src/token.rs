//! Token kinds.

use std::fmt;

use crate::span::Span;

/// A lexical token kind.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal.
    Int(i32),
    /// Float literal.
    Float(f32),
    /// `true` / `false`.
    Bool(bool),
    /// An identifier.
    Ident(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `var` (global declaration)
    Var,
    /// `struct`
    Struct,
    /// `class`
    Class,
    /// `virtual`
    Virtual,
    /// `override`
    Override,
    /// `new`
    New,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `offload`
    Offload,
    /// `domain`
    Domain,
    /// `join` (synchronise with a named offload handle)
    Join,
    /// `byte` (byte-addressed pointer qualifier, paper §5)
    Byte,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Bool(v) => write!(f, "`{v}`"),
            TokenKind::Ident(name) => write!(f, "identifier `{name}`"),
            TokenKind::Fn => write!(f, "`fn`"),
            TokenKind::Let => write!(f, "`let`"),
            TokenKind::Var => write!(f, "`var`"),
            TokenKind::Struct => write!(f, "`struct`"),
            TokenKind::Class => write!(f, "`class`"),
            TokenKind::Virtual => write!(f, "`virtual`"),
            TokenKind::Override => write!(f, "`override`"),
            TokenKind::New => write!(f, "`new`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::While => write!(f, "`while`"),
            TokenKind::Return => write!(f, "`return`"),
            TokenKind::Offload => write!(f, "`offload`"),
            TokenKind::Domain => write!(f, "`domain`"),
            TokenKind::Join => write!(f, "`join`"),
            TokenKind::Byte => write!(f, "`byte`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Eq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Not => write!(f, "`!`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The kind (and payload).
    pub kind: TokenKind,
    /// Where in the source.
    pub span: Span,
}
