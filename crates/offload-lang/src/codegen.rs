//! The code generator: type checking, memory-space inference,
//! word-addressing discipline, call-graph duplication, domain
//! construction, and lowering to bytecode — one type-directed pass per
//! compiled function variant, mirroring how Offload C++ compiles each
//! function once per memory-space signature actually used (paper §3).

use std::collections::{HashMap, HashSet};

use crate::ast::{self, BinOp, Expr, Stmt, UnOp};
use crate::bytecode::{
    Cmp, DomainId, FuncBody, FuncId, Instr, ModeRange, SpaceTag, ValType, VmClass, VmDomain,
};
use crate::compile::{CompileStats, Program, Target, WordStrategy};
use crate::diag::{CompileError, ErrorKind};
use crate::span::Span;
use crate::types::{
    ClassInfo, FieldInfo, MethodInfo, PtrUnit, ResolvedDomainEntry, Space, StructInfo, Type,
    TypeTable,
};

/// How a pointer expression relates to word alignment (paper §5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WordClass {
    /// Word-aligned (or the target is byte-addressed).
    Aligned,
    /// Word base plus a compile-time-constant sub-word offset.
    ConstSub(u32),
    /// A stored `byte*` value: sub-word offset known only at runtime,
    /// but bounded machinery (declared byte-addressed).
    RuntimeByte,
    /// A variable byte offset — inexpressible efficiently; a static
    /// error under the hybrid strategy.
    Dynamic,
}

/// The static result of compiling an expression.
#[derive(Clone, Debug)]
struct ExprVal {
    ty: Type,
    word: WordClass,
}

impl ExprVal {
    fn plain(ty: Type) -> ExprVal {
        ExprVal {
            ty,
            word: WordClass::Aligned,
        }
    }
}

/// A resolved assignment/read target.
enum PlaceVal {
    /// A scalar frame slot (register-like cost).
    Slot { offset: u32, ty: Type },
    /// A memory location whose address is on the operand stack.
    Mem {
        ty: Type,
        space: Space,
        word: WordClass,
    },
}

#[derive(Clone, Debug)]
struct LocalVar {
    offset: u32,
    ty: Type,
}

#[derive(Clone, Debug)]
struct GlobalVar {
    offset: u32,
    ty: Type,
}

/// One function AST tracked by the compiler.
struct FnAst {
    def: ast::FuncDef,
    /// `Some(method index)` when this is a class method.
    method_of: Option<usize>,
}

/// Key identifying one compiled variant of a function.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct FuncKey {
    ast: usize,
    accel: bool,
    /// Full space-resolved parameter types (receiver first for methods).
    params: Vec<Type>,
}

/// Per-function compilation state.
struct FnCtx {
    accel: bool,
    space_here: Space,
    scopes: Vec<HashMap<String, LocalVar>>,
    frame_size: u32,
    code: Vec<Instr>,
    ret: Type,
    /// Local names of the *enclosing host function* (for offload-body
    /// diagnostics).
    enclosing_names: Vec<String>,
    /// Offload handle names declared in this function, by slot.
    handles: HashMap<String, u16>,
    next_handle: u16,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<LocalVar> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn emit(&mut self, instr: Instr) -> usize {
        self.code.push(instr);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.here();
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching a non-jump {other:?}"),
        }
    }
}

/// The program compiler. Create with [`Compiler::new`], run with
/// [`Compiler::compile`].
pub struct Compiler<'t> {
    target: &'t Target,
    types: TypeTable,
    fn_asts: Vec<FnAst>,
    free_fns: HashMap<String, usize>,
    globals: HashMap<String, GlobalVar>,
    globals_size: u32,
    funcs: Vec<FuncBody>,
    classes: Vec<VmClass>,
    domains: Vec<VmDomain>,
    /// Per offload block (same index as `domains`): the compiled
    /// access-mode table from its `reads`/`writes`/`updates` clauses.
    mode_tables: Vec<Vec<ModeRange>>,
    compiled: HashMap<FuncKey, FuncId>,
    /// `(slot, duplicate-id)` signatures observed at accelerator virtual
    /// call sites.
    vcall_sigs: HashSet<(u16, u16)>,
    stats: CompileStats,
}

fn err(kind: ErrorKind, span: Span, message: impl Into<String>) -> CompileError {
    CompileError::new(kind, span, message)
}

impl<'t> Compiler<'t> {
    /// Creates a compiler for the target.
    pub fn new(target: &'t Target) -> Compiler<'t> {
        Compiler {
            target,
            types: TypeTable::default(),
            fn_asts: Vec::new(),
            free_fns: HashMap::new(),
            globals: HashMap::new(),
            globals_size: 0,
            funcs: Vec::new(),
            classes: Vec::new(),
            domains: Vec::new(),
            mode_tables: Vec::new(),
            compiled: HashMap::new(),
            vcall_sigs: HashSet::new(),
            stats: CompileStats::default(),
        }
    }

    /// Runs the full pipeline over a parsed program.
    ///
    /// # Errors
    ///
    /// Returns the first semantic error.
    pub fn compile(mut self, source: &ast::SourceProgram) -> Result<Program, CompileError> {
        self.collect_types(source)?;
        self.collect_globals(source)?;
        self.collect_functions(source)?;
        self.compile_host_world()?;
        let main_ast = *self.free_fns.get("main").ok_or_else(|| {
            err(
                ErrorKind::Resolve,
                Span::point(0),
                "missing `fn main() -> int`",
            )
        })?;
        let main_def = &self.fn_asts[main_ast].def;
        if !main_def.params.is_empty() {
            return Err(err(
                ErrorKind::Resolve,
                main_def.span,
                "`main` must take no parameters",
            ));
        }
        let main = self.compiled[&FuncKey {
            ast: main_ast,
            accel: false,
            params: vec![],
        }];
        if !self.funcs[main.0 as usize].returns_value {
            return Err(err(
                ErrorKind::Resolve,
                main_def.span,
                "`main` must return `int`",
            ));
        }
        self.stats.functions_compiled = self.funcs.len();
        Ok(Program {
            funcs: self.funcs,
            classes: self.classes,
            domains: self.domains,
            mode_tables: self.mode_tables,
            globals_size: self.globals_size.max(4),
            main,
            stats: self.stats,
            types: self.types,
        })
    }

    // ---- declaration collection -------------------------------------------

    fn collect_types(&mut self, source: &ast::SourceProgram) -> Result<(), CompileError> {
        for item in &source.items {
            match item {
                ast::Item::Struct(def) => {
                    if self.types.struct_by_name(&def.name).is_some()
                        || self.types.class_by_name(&def.name).is_some()
                    {
                        return Err(err(
                            ErrorKind::Resolve,
                            def.span,
                            format!("type `{}` is defined twice", def.name),
                        ));
                    }
                    let mut decls = Vec::new();
                    for field in &def.fields {
                        let ty = self.types.lower(&field.ty, Space::Host)?;
                        if ty == Type::Void {
                            return Err(err(ErrorKind::Type, field.span, "fields cannot be void"));
                        }
                        decls.push((field.name.clone(), ty));
                    }
                    let (fields, size, align) = self.types.layout_fields(0, &decls);
                    self.types.add_struct(StructInfo {
                        name: def.name.clone(),
                        fields,
                        size,
                        align,
                    });
                }
                ast::Item::Class(def) => {
                    self.collect_class(def)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn collect_class(&mut self, def: &ast::ClassDef) -> Result<(), CompileError> {
        if self.types.struct_by_name(&def.name).is_some()
            || self.types.class_by_name(&def.name).is_some()
        {
            return Err(err(
                ErrorKind::Resolve,
                def.span,
                format!("type `{}` is defined twice", def.name),
            ));
        }
        let parent = match &def.parent {
            Some(name) => Some(self.types.class_by_name(name).ok_or_else(|| {
                err(
                    ErrorKind::Resolve,
                    def.span,
                    format!("unknown parent class `{name}` (classes must be declared before use)"),
                )
            })?),
            None => None,
        };
        // Fields: class-id header at offset 0, then inherited, then own.
        let (mut fields, start) = match parent {
            Some(p) => {
                let info = &self.types.classes[p];
                (info.fields.clone(), info.size)
            }
            None => (Vec::new(), 4),
        };
        let mut decls = Vec::new();
        for field in &def.fields {
            if fields.iter().any(|f: &FieldInfo| f.name == field.name)
                || decls.iter().any(|(n, _)| n == &field.name)
            {
                return Err(err(
                    ErrorKind::Resolve,
                    field.span,
                    format!(
                        "field `{}` shadows an inherited or duplicate field",
                        field.name
                    ),
                ));
            }
            decls.push((
                field.name.clone(),
                self.types.lower(&field.ty, Space::Host)?,
            ));
        }
        let (own, size, align) = self.types.layout_fields(start, &decls);
        fields.extend(own);
        let (mut vtable, parent_size_align) = match parent {
            Some(p) => (
                self.types.classes[p].vtable.clone(),
                self.types.classes[p].align,
            ),
            None => (Vec::new(), 4),
        };
        let align = align.max(parent_size_align).max(4);
        let size = memspace::align_up(size.max(start), align);

        let class_idx = self.types.classes.len();
        let mut static_methods = HashMap::new();

        for method in &def.methods {
            let fdef = &method.func;
            let mut params = Vec::new();
            for p in &fdef.params {
                let ty = self.types.lower(&p.ty, Space::Host)?;
                if !ty.is_scalar() {
                    return Err(err(
                        ErrorKind::Type,
                        p.span,
                        "parameters must be scalars or pointers (pass aggregates by pointer)",
                    ));
                }
                params.push(ty);
            }
            let ret = self.types.lower(&fdef.ret, Space::Host)?;
            if ret.is_ptr() {
                return Err(err(
                    ErrorKind::Type,
                    fdef.span,
                    "returning pointers is not supported; return through an out-parameter",
                ));
            }
            let ast_index = self.fn_asts.len();
            let method_index = self.types.methods.len();

            if method.is_override {
                // Find the parent slot with this name.
                let parent_method = parent
                    .and_then(|p| self.types.method_by_name(p, &fdef.name))
                    .ok_or_else(|| {
                        err(
                            ErrorKind::Resolve,
                            fdef.span,
                            format!("`{}` overrides nothing in the parent class", fdef.name),
                        )
                    })?;
                let parent_info = &self.types.methods[parent_method];
                if !parent_info.is_virtual {
                    return Err(err(
                        ErrorKind::Resolve,
                        fdef.span,
                        format!("`{}` in the parent class is not virtual", fdef.name),
                    ));
                }
                if parent_info.params.len() != params.len()
                    || !parent_info
                        .params
                        .iter()
                        .zip(&params)
                        .all(|(a, b)| a.same_shape(b))
                    || !parent_info.ret.same_shape(&ret)
                {
                    return Err(err(
                        ErrorKind::Type,
                        fdef.span,
                        format!("override of `{}` changes the signature", fdef.name),
                    ));
                }
                let slot = parent_info.slot;
                vtable[usize::from(slot)] = method_index;
                self.types.methods.push(MethodInfo {
                    name: fdef.name.clone(),
                    slot,
                    is_virtual: true,
                    params,
                    ret,
                    defined_in: class_idx,
                    ast_index,
                });
            } else if method.is_virtual {
                let slot = vtable.len() as u16;
                vtable.push(method_index);
                self.types.methods.push(MethodInfo {
                    name: fdef.name.clone(),
                    slot,
                    is_virtual: true,
                    params,
                    ret,
                    defined_in: class_idx,
                    ast_index,
                });
            } else {
                static_methods.insert(fdef.name.clone(), method_index);
                self.types.methods.push(MethodInfo {
                    name: fdef.name.clone(),
                    slot: u16::MAX,
                    is_virtual: false,
                    params,
                    ret,
                    defined_in: class_idx,
                    ast_index,
                });
            }
            self.fn_asts.push(FnAst {
                def: fdef.clone(),
                method_of: Some(method_index),
            });
        }

        self.types.add_class(ClassInfo {
            name: def.name.clone(),
            parent,
            fields,
            size,
            align,
            vtable,
            static_methods,
        });
        Ok(())
    }

    fn collect_globals(&mut self, source: &ast::SourceProgram) -> Result<(), CompileError> {
        for item in &source.items {
            if let ast::Item::Global(def) = item {
                if self.globals.contains_key(&def.name) {
                    return Err(err(
                        ErrorKind::Resolve,
                        def.span,
                        format!("global `{}` is defined twice", def.name),
                    ));
                }
                let ty = self.types.lower(&def.ty, Space::Host)?;
                if ty == Type::Void {
                    return Err(err(ErrorKind::Type, def.span, "globals cannot be void"));
                }
                let align = self.types.align_of(&ty).max(4);
                let offset = memspace::align_up(self.globals_size, align);
                self.globals_size = offset + self.types.size_of(&ty);
                self.globals
                    .insert(def.name.clone(), GlobalVar { offset, ty });
            }
        }
        Ok(())
    }

    fn collect_functions(&mut self, source: &ast::SourceProgram) -> Result<(), CompileError> {
        for item in &source.items {
            if let ast::Item::Func(def) = item {
                if self.free_fns.contains_key(&def.name) {
                    return Err(err(
                        ErrorKind::Resolve,
                        def.span,
                        format!("function `{}` is defined twice", def.name),
                    ));
                }
                for p in &def.params {
                    let ty = self.types.lower(&p.ty, Space::Host)?;
                    if !ty.is_scalar() {
                        return Err(err(
                            ErrorKind::Type,
                            p.span,
                            "parameters must be scalars or pointers (pass aggregates by pointer)",
                        ));
                    }
                }
                let ret = self.types.lower(&def.ret, Space::Host)?;
                if ret.is_ptr() {
                    return Err(err(
                        ErrorKind::Type,
                        def.span,
                        "returning pointers is not supported; return through an out-parameter",
                    ));
                }
                self.free_fns.insert(def.name.clone(), self.fn_asts.len());
                self.fn_asts.push(FnAst {
                    def: def.clone(),
                    method_of: None,
                });
            }
        }
        Ok(())
    }

    /// Compiles every function and method in host context and builds the
    /// host vtables.
    fn compile_host_world(&mut self) -> Result<(), CompileError> {
        // Methods first, so vtables are complete before any dispatch.
        for class_idx in 0..self.types.classes.len() {
            let vtable = self.types.classes[class_idx].vtable.clone();
            let mut vm_vtable = Vec::with_capacity(vtable.len());
            for &midx in &vtable {
                let fid = self.compile_method_variant(midx, false, Space::Host, None)?;
                vm_vtable.push(fid);
            }
            self.classes.push(VmClass {
                name: self.types.classes[class_idx].name.clone(),
                vtable: vm_vtable,
            });
            // Static methods too (host variants).
            let statics: Vec<usize> = self.types.classes[class_idx]
                .static_methods
                .values()
                .copied()
                .collect();
            for midx in statics {
                self.compile_method_variant(midx, false, Space::Host, None)?;
            }
        }
        for ast_idx in 0..self.fn_asts.len() {
            if self.fn_asts[ast_idx].method_of.is_none() {
                let params = self.host_param_types(ast_idx)?;
                self.compile_variant(FuncKey {
                    ast: ast_idx,
                    accel: false,
                    params,
                })?;
            }
        }
        Ok(())
    }

    fn host_param_types(&self, ast_idx: usize) -> Result<Vec<Type>, CompileError> {
        self.fn_asts[ast_idx]
            .def
            .params
            .iter()
            .map(|p| self.types.lower(&p.ty, Space::Host))
            .collect()
    }

    /// Compiles one variant of a method: receiver in `self_space`,
    /// pointer parameters per `dup_bits` (bit *i+1* set ⇒ parameter *i*
    /// outer) when given, else all receiver-space.
    fn compile_method_variant(
        &mut self,
        midx: usize,
        accel: bool,
        self_space: Space,
        dup_bits: Option<u16>,
    ) -> Result<FuncId, CompileError> {
        let info = self.types.methods[midx].clone();
        let self_ty = Type::ptr(Type::Class(info.defined_in), self_space);
        let mut params = vec![self_ty];
        let mut ptr_index = 0u16;
        for p in &info.params {
            let ty = if p.is_ptr() {
                ptr_index += 1;
                let space = match dup_bits {
                    Some(bits) => {
                        if bits & (1 << ptr_index) != 0 {
                            Space::Host
                        } else {
                            Space::Local
                        }
                    }
                    None => self_space,
                };
                respace_top(p, space)
            } else {
                p.clone()
            };
            params.push(ty);
        }
        self.compile_variant(FuncKey {
            ast: info.ast_index,
            accel,
            params,
        })
    }

    /// Compiles (or reuses) the function variant named by `key`.
    fn compile_variant(&mut self, key: FuncKey) -> Result<FuncId, CompileError> {
        if let Some(&fid) = self.compiled.get(&key) {
            return Ok(fid);
        }
        // Reserve the id first so recursion terminates.
        let fid = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncBody {
            name: String::new(),
            params: Vec::new(),
            param_offsets: Vec::new(),
            frame_size: 0,
            returns_value: false,
            code: Vec::new(),
        });
        self.compiled.insert(key.clone(), fid);

        let fn_ast = &self.fn_asts[key.ast];
        let def = fn_ast.def.clone();
        let method_of = fn_ast.method_of;
        let ret = self.types.lower(&def.ret, Space::Host)?;

        let mut fx = FnCtx {
            accel: key.accel,
            space_here: if key.accel { Space::Local } else { Space::Host },
            scopes: vec![HashMap::new()],
            frame_size: 0,
            code: Vec::new(),
            ret: ret.clone(),
            enclosing_names: Vec::new(),
            handles: HashMap::new(),
            next_handle: 0,
        };

        // Bind parameters to frame slots.
        let mut param_tys = Vec::new();
        let mut param_offsets = Vec::new();
        let names: Vec<String> = if method_of.is_some() {
            std::iter::once("self".to_string())
                .chain(def.params.iter().map(|p| p.name.clone()))
                .collect()
        } else {
            def.params.iter().map(|p| p.name.clone()).collect()
        };
        if names.len() != key.params.len() {
            unreachable!("caller built the parameter list from the signature");
        }
        for (name, ty) in names.iter().zip(&key.params) {
            let offset = self.alloc_slot(&mut fx, ty);
            fx.scopes[0].insert(
                name.clone(),
                LocalVar {
                    offset,
                    ty: ty.clone(),
                },
            );
            param_tys.push(self.val_type(ty, def.span)?);
            param_offsets.push(offset);
        }

        self.block(&mut fx, &def.body)?;
        fx.emit(Instr::Ret { has_value: false });

        let sig: Vec<String> = key.params.iter().map(|t| self.types.display(t)).collect();
        let variant_name = format!(
            "{}{}({})",
            def.name,
            if key.accel { "@accel" } else { "" },
            sig.join(", ")
        );
        *self.stats.duplicates.entry(def.name.clone()).or_insert(0) += 1;
        let mut code = fx.code;
        if self.target.superinstructions {
            self.stats.superinstructions += crate::peephole::fuse(&mut code) as usize;
        }
        self.funcs[fid.0 as usize] = FuncBody {
            name: variant_name,
            params: param_tys,
            param_offsets,
            frame_size: memspace::align_up(fx.frame_size.max(4), 16),
            returns_value: ret != Type::Void,
            code,
        };
        Ok(fid)
    }

    fn alloc_slot(&self, fx: &mut FnCtx, ty: &Type) -> u32 {
        let align = self.types.align_of(ty).max(4);
        let offset = memspace::align_up(fx.frame_size, align);
        fx.frame_size = offset + self.types.size_of(ty);
        offset
    }

    fn val_type(&self, ty: &Type, span: Span) -> Result<ValType, CompileError> {
        match ty {
            Type::Int => Ok(ValType::I32),
            Type::Float => Ok(ValType::F32),
            Type::Bool => Ok(ValType::Bool),
            Type::Char => Ok(ValType::Char),
            Type::Ptr { space, .. } => Ok(ValType::Ptr(match space {
                Space::Host => SpaceTag::Host,
                Space::Local => SpaceTag::Local,
            })),
            other => Err(err(
                ErrorKind::Type,
                span,
                format!(
                    "a value of type `{}` cannot be used here (scalars only)",
                    self.types.display(other)
                ),
            )),
        }
    }

    // ---- word-addressing helpers --------------------------------------------

    fn word_bytes(&self) -> u32 {
        self.target.word_bytes()
    }

    fn word_rules_apply(&self) -> bool {
        self.target.is_word_addressed()
    }

    fn hybrid(&self) -> bool {
        self.target.strategy == WordStrategy::Hybrid
    }

    fn combine_const(&self, word: WordClass, delta: i64) -> WordClass {
        if !self.word_rules_apply() {
            return WordClass::Aligned;
        }
        let w = i64::from(self.word_bytes());
        match word {
            WordClass::Aligned => {
                if delta.rem_euclid(w) == 0 {
                    WordClass::Aligned
                } else {
                    WordClass::ConstSub(delta.rem_euclid(w) as u32)
                }
            }
            WordClass::ConstSub(off) => {
                let total = (i64::from(off) + delta).rem_euclid(w);
                if total == 0 {
                    WordClass::Aligned
                } else {
                    WordClass::ConstSub(total as u32)
                }
            }
            WordClass::RuntimeByte => WordClass::RuntimeByte,
            WordClass::Dynamic => WordClass::Dynamic,
        }
    }

    fn combine_dynamic(
        &self,
        word: WordClass,
        stride: u32,
        span: Span,
    ) -> Result<WordClass, CompileError> {
        if !self.word_rules_apply() {
            return Ok(WordClass::Aligned);
        }
        if stride.is_multiple_of(self.word_bytes()) {
            return Ok(word);
        }
        if self.hybrid() {
            Err(err(
                ErrorKind::WordAddressing,
                span,
                format!(
                    "adding a variable offset with stride {stride} to a pointer produces a \
                     variable byte-pointer, which cannot be dereferenced efficiently on this \
                     word-addressed target ({}-byte words); restructure the loop to step by \
                     whole words, or copy through a word-sized buffer",
                    self.word_bytes()
                ),
            ))
        } else {
            Ok(WordClass::Dynamic)
        }
    }

    /// Extra cycles a dereference of `ty` through a pointer of class
    /// `word` costs on this target.
    fn deref_penalty(&self, word: WordClass, ty: &Type) -> u32 {
        if !self.word_rules_apply() {
            return 0;
        }
        if self.target.strategy == WordStrategy::ByteEmulate {
            return self.target.byte_emulation_cost;
        }
        match word {
            WordClass::Aligned => {
                if self.types.size_of(ty) < self.word_bytes() {
                    self.target.subword_extract_cost
                } else {
                    0
                }
            }
            WordClass::ConstSub(_) => self.target.subword_extract_cost,
            WordClass::RuntimeByte => self.target.byte_ptr_deref_cost,
            WordClass::Dynamic => self.target.byte_emulation_cost,
        }
    }

    /// The word class of a pointer *value loaded from storage*, by its
    /// declared unit.
    fn loaded_class(&self, ty: &Type) -> WordClass {
        if !self.word_rules_apply() {
            return WordClass::Aligned;
        }
        match ty {
            Type::Ptr {
                unit: PtrUnit::Byte,
                ..
            } => WordClass::RuntimeByte,
            _ => WordClass::Aligned,
        }
    }

    /// Checks that `value` may be stored into a declared `target` type
    /// (spaces, units, shapes, numeric coercions).
    fn check_assign(&self, target: &Type, value: &ExprVal, span: Span) -> Result<(), CompileError> {
        // Numeric coercion.
        if (target == &Type::Char && value.ty == Type::Int)
            || (target == &Type::Int && value.ty == Type::Char)
        {
            return Ok(());
        }
        match (target, &value.ty) {
            (
                Type::Ptr {
                    pointee: tp,
                    space: ts,
                    unit: tu,
                },
                Type::Ptr {
                    pointee: vp,
                    space: vs,
                    ..
                },
            ) => {
                let pointee_ok = tp.same_shape(vp)
                    || match (&**tp, &**vp) {
                        (Type::Class(sup), Type::Class(sub)) => {
                            self.types.is_subclass_of(*sub, *sup)
                        }
                        _ => false,
                    };
                if !pointee_ok {
                    return Err(err(
                        ErrorKind::Type,
                        span,
                        format!(
                            "expected `{}`, found `{}`",
                            self.types.display(target),
                            self.types.display(&value.ty)
                        ),
                    ));
                }
                if ts != vs {
                    return Err(err(
                        ErrorKind::MemorySpace,
                        span,
                        format!(
                            "cannot assign a pointer into {vs} memory to a pointer into {ts} \
                             memory; data must be moved between memory spaces explicitly",
                        ),
                    ));
                }
                if !self.deep_spaces_match(tp, vp) {
                    return Err(err(
                        ErrorKind::MemorySpace,
                        span,
                        "pointer targets disagree about nested memory spaces".to_string(),
                    ));
                }
                if self.word_rules_apply() && self.hybrid() && *tu == PtrUnit::Word {
                    match value.word {
                        WordClass::Aligned => {}
                        _ => {
                            return Err(err(
                                ErrorKind::WordAddressing,
                                span,
                                "cannot assign a byte-addressed value to a word-addressed \
                                 pointer; declare the destination as `byte*`",
                            ))
                        }
                    }
                }
                Ok(())
            }
            _ if target.same_shape(&value.ty) && self.deep_spaces_match(target, &value.ty) => {
                Ok(())
            }
            _ if target.same_shape(&value.ty) => Err(err(
                ErrorKind::MemorySpace,
                span,
                "value has the right shape but refers into a different memory space",
            )),
            _ => Err(err(
                ErrorKind::Type,
                span,
                format!(
                    "expected `{}`, found `{}`",
                    self.types.display(target),
                    self.types.display(&value.ty)
                ),
            )),
        }
    }

    fn deep_spaces_match(&self, a: &Type, b: &Type) -> bool {
        match (a, b) {
            (
                Type::Ptr {
                    pointee: ap,
                    space: asp,
                    ..
                },
                Type::Ptr {
                    pointee: bp,
                    space: bsp,
                    ..
                },
            ) => asp == bsp && self.deep_spaces_match(ap, bp),
            (Type::Array { elem: ae, .. }, Type::Array { elem: be, .. }) => {
                self.deep_spaces_match(ae, be)
            }
            _ => true,
        }
    }

    // ---- statements -----------------------------------------------------------

    fn block(&mut self, fx: &mut FnCtx, block: &ast::Block) -> Result<(), CompileError> {
        fx.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(fx, stmt)?;
        }
        fx.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, fx: &mut FnCtx, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                span,
            } => self.stmt_let(fx, name, ty, init.as_ref(), *span),
            Stmt::Assign {
                target,
                value,
                span,
            } => self.stmt_assign(fx, target, value, *span),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let c = self.expr(fx, cond)?;
                if c.ty != Type::Bool {
                    return Err(err(ErrorKind::Type, *span, "`if` condition must be bool"));
                }
                let jf = fx.emit(Instr::JumpIfFalse(0));
                self.block(fx, then_blk)?;
                if let Some(else_blk) = else_blk {
                    let jend = fx.emit(Instr::Jump(0));
                    fx.patch_jump(jf);
                    self.block(fx, else_blk)?;
                    fx.patch_jump(jend);
                } else {
                    fx.patch_jump(jf);
                }
                Ok(())
            }
            Stmt::While { cond, body, span } => {
                let top = fx.here();
                let c = self.expr(fx, cond)?;
                if c.ty != Type::Bool {
                    return Err(err(
                        ErrorKind::Type,
                        *span,
                        "`while` condition must be bool",
                    ));
                }
                let jf = fx.emit(Instr::JumpIfFalse(0));
                self.block(fx, body)?;
                fx.emit(Instr::Jump(top));
                fx.patch_jump(jf);
                Ok(())
            }
            Stmt::Return { value, span } => {
                if fx.accel && fx.ret == Type::Void && fx.enclosing_names.is_empty() {
                    // Plain `return;` from an offload body is fine; it just
                    // ends the block.
                }
                match (value, fx.ret.clone()) {
                    (None, Type::Void) => {
                        fx.emit(Instr::Ret { has_value: false });
                        Ok(())
                    }
                    (Some(_), Type::Void) => Err(err(
                        ErrorKind::Type,
                        *span,
                        "this function does not return a value",
                    )),
                    (None, _) => Err(err(
                        ErrorKind::Type,
                        *span,
                        "this function must return a value",
                    )),
                    (Some(expr), ret) => {
                        let v = self.expr(fx, expr)?;
                        self.check_assign(&ret, &v, *span)?;
                        self.coerce_numeric(fx, &ret, &v);
                        fx.emit(Instr::Ret { has_value: true });
                        Ok(())
                    }
                }
            }
            Stmt::Expr { expr, span } => {
                let v = self.expr(fx, expr)?;
                if v.ty != Type::Void {
                    fx.emit(Instr::Drop);
                }
                let _ = span;
                Ok(())
            }
            Stmt::Offload {
                handle,
                captures,
                domain,
                modes,
                body,
                span,
            } => self.stmt_offload(fx, handle.as_deref(), captures, domain, modes, body, *span),
            Stmt::Join { name, span } => {
                if fx.accel {
                    return Err(err(
                        ErrorKind::Offload,
                        *span,
                        "`join` synchronises host code with an offload; it cannot appear on \
                         the accelerator",
                    ));
                }
                let slot = *fx.handles.get(name).ok_or_else(|| {
                    err(
                        ErrorKind::Resolve,
                        *span,
                        format!(
                            "no offload handle named `{name}` in this function; handles are \
                             created with `offload {name} {{ ... }}`"
                        ),
                    )
                })?;
                fx.emit(Instr::Join { slot });
                Ok(())
            }
        }
    }

    fn coerce_numeric(&self, _fx: &mut FnCtx, _target: &Type, _value: &ExprVal) {
        // Char and Int share the I32 stack representation; stores
        // truncate by ValType. Nothing to emit.
    }

    fn stmt_let(
        &mut self,
        fx: &mut FnCtx,
        name: &str,
        ty: &ast::TypeExpr,
        init: Option<&Expr>,
        span: Span,
    ) -> Result<(), CompileError> {
        let declared = self.types.lower(ty, fx.space_here)?;
        if declared == Type::Void {
            return Err(err(ErrorKind::Type, span, "variables cannot be void"));
        }
        let final_ty = match init {
            Some(init_expr) => {
                let v = self.expr(fx, init_expr)?;
                // Adopt the initialiser's spaces (Offload C++'s automatic
                // `__outer` qualification), keeping declared units.
                let adopted = adopt_spaces(&declared, &v.ty);
                self.check_assign(&adopted, &v, span)?;
                let offset = self.alloc_slot(fx, &adopted);
                if adopted.is_scalar() {
                    fx.emit(Instr::StoreLocal {
                        offset,
                        ty: self.val_type(&adopted, span)?,
                    });
                } else {
                    // Aggregate initialisation: the initialiser must be a
                    // place; copy bytes.
                    return Err(err(
                        ErrorKind::Type,
                        span,
                        "aggregate initialisers are not supported; declare then assign fields",
                    ));
                }
                fx.scopes.last_mut().expect("function scope").insert(
                    name.to_string(),
                    LocalVar {
                        offset,
                        ty: adopted.clone(),
                    },
                );
                adopted
            }
            None => {
                if declared.is_scalar() && declared.is_ptr() {
                    return Err(err(
                        ErrorKind::MemorySpace,
                        span,
                        "pointer variables must be initialised so their memory space is known",
                    ));
                }
                let offset = self.alloc_slot(fx, &declared);
                fx.scopes.last_mut().expect("function scope").insert(
                    name.to_string(),
                    LocalVar {
                        offset,
                        ty: declared.clone(),
                    },
                );
                declared
            }
        };
        let _ = final_ty;
        Ok(())
    }

    fn stmt_assign(
        &mut self,
        fx: &mut FnCtx,
        target: &Expr,
        value: &Expr,
        span: Span,
    ) -> Result<(), CompileError> {
        let place = self.place(fx, target)?;
        match place {
            PlaceVal::Slot { offset, ty } => {
                let v = self.expr(fx, value)?;
                self.check_assign(&ty, &v, span)?;
                fx.emit(Instr::StoreLocal {
                    offset,
                    ty: self.val_type(&ty, span)?,
                });
                Ok(())
            }
            PlaceVal::Mem { ty, word, .. } => {
                if ty.is_scalar() {
                    let v = self.expr(fx, value)?;
                    self.check_assign(&ty, &v, span)?;
                    let penalty = self.deref_penalty(word, &ty);
                    fx.emit(Instr::StoreMem {
                        ty: self.val_type(&ty, span)?,
                        penalty,
                    });
                    Ok(())
                } else {
                    // Aggregate copy: compute the source address.
                    let src = self.place(fx, value)?;
                    match src {
                        PlaceVal::Mem { ty: sty, .. } => {
                            if !sty.same_shape(&ty) {
                                return Err(err(
                                    ErrorKind::Type,
                                    span,
                                    format!(
                                        "cannot assign `{}` to `{}`",
                                        self.types.display(&sty),
                                        self.types.display(&ty)
                                    ),
                                ));
                            }
                            fx.emit(Instr::CopyMem {
                                size: self.types.size_of(&ty),
                            });
                            Ok(())
                        }
                        PlaceVal::Slot { .. } => Err(err(
                            ErrorKind::Type,
                            span,
                            "cannot copy an aggregate from a scalar",
                        )),
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn stmt_offload(
        &mut self,
        fx: &mut FnCtx,
        handle: Option<&str>,
        captures: &[(String, Span)],
        domain: &[ast::DomainEntry],
        modes: &[ast::ModeEntry],
        body: &ast::Block,
        span: Span,
    ) -> Result<(), CompileError> {
        if fx.accel {
            return Err(err(
                ErrorKind::Offload,
                span,
                "offload blocks cannot nest: this code already runs on the accelerator",
            ));
        }
        // Resolve the domain annotation.
        let mut entries = Vec::new();
        for entry in domain {
            let class = self.types.class_by_name(&entry.class).ok_or_else(|| {
                err(
                    ErrorKind::Resolve,
                    entry.span,
                    format!("unknown class `{}` in domain annotation", entry.class),
                )
            })?;
            let method = self
                .types
                .method_by_name(class, &entry.method)
                .ok_or_else(|| {
                    err(
                        ErrorKind::Resolve,
                        entry.span,
                        format!("class `{}` has no method `{}`", entry.class, entry.method),
                    )
                })?;
            if !self.types.methods[method].is_virtual {
                return Err(err(
                    ErrorKind::Resolve,
                    entry.span,
                    format!(
                        "`{}.{}` is not virtual and needs no domain entry",
                        entry.class, entry.method
                    ),
                ));
            }
            entries.push(ResolvedDomainEntry {
                class,
                method,
                span: entry.span,
            });
        }

        // Resolve the access-mode clauses against the global segment.
        // Each named global becomes a `ModeRange` the VM turns into the
        // runtime's `AccessMode` metadata at launch (`with_modes`).
        let mut mode_table = Vec::with_capacity(modes.len());
        for entry in modes {
            let global = self.globals.get(&entry.name).ok_or_else(|| {
                err(
                    ErrorKind::Resolve,
                    entry.span,
                    format!(
                        "`{}` is not a global variable; access-mode clauses \
                         (`reads`/`writes`/`updates`) name globals",
                        entry.name
                    ),
                )
            })?;
            mode_table.push(ModeRange {
                offset: global.offset,
                len: self.types.size_of(&global.ty),
                mode: entry.mode,
            });
        }

        let domain_id = DomainId(self.domains.len() as u32);
        self.domains.push(VmDomain::default());
        self.mode_tables.push(mode_table);

        // Evaluate the captured host locals by value (they become the
        // block's parameters; pointers arrive as outer pointers).
        let mut capture_vars = Vec::with_capacity(captures.len());
        for (name, cspan) in captures {
            let local = fx.lookup(name).ok_or_else(|| {
                err(
                    ErrorKind::Resolve,
                    *cspan,
                    format!("`{name}` is not a local variable of the enclosing function"),
                )
            })?;
            if !local.ty.is_scalar() {
                return Err(err(
                    ErrorKind::Offload,
                    *cspan,
                    format!(
                        "`{name}` is an aggregate; capture a pointer to it instead                          (aggregates are not copied into offload blocks)"
                    ),
                ));
            }
            fx.emit(Instr::LoadLocal {
                offset: local.offset,
                ty: self.val_type(&local.ty, *cspan)?,
            });
            capture_vars.push((name.clone(), local.ty));
        }

        // Compile the body as a synthetic accelerator function whose
        // parameters are the captures.
        let enclosing: Vec<String> = fx.scopes.iter().flat_map(|s| s.keys().cloned()).collect();
        let mut ox = FnCtx {
            accel: true,
            space_here: Space::Local,
            scopes: vec![HashMap::new()],
            frame_size: 0,
            code: Vec::new(),
            ret: Type::Void,
            enclosing_names: enclosing,
            handles: HashMap::new(),
            next_handle: 0,
        };
        let mut param_tys = Vec::new();
        let mut param_offsets = Vec::new();
        for (name, ty) in &capture_vars {
            let offset = self.alloc_slot(&mut ox, ty);
            ox.scopes[0].insert(
                name.clone(),
                LocalVar {
                    offset,
                    ty: ty.clone(),
                },
            );
            param_tys.push(self.val_type(ty, span)?);
            param_offsets.push(offset);
        }
        self.block(&mut ox, body)?;
        ox.emit(Instr::Ret { has_value: false });
        let mut body_code = ox.code;
        if self.target.superinstructions {
            self.stats.superinstructions += crate::peephole::fuse(&mut body_code) as usize;
        }
        let body_id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncBody {
            name: format!("offload#{}", self.stats.offload_blocks),
            params: param_tys,
            param_offsets,
            frame_size: memspace::align_up(ox.frame_size.max(4), 16),
            returns_value: false,
            code: body_code,
        });

        // Compile duplicates for the annotated methods, for every
        // signature seen at accelerator virtual-call sites with a
        // matching slot.
        let sigs: Vec<(u16, u16)> = self.vcall_sigs.iter().copied().collect();
        for entry in &entries {
            let slot = self.types.methods[entry.method].slot;
            let host_fn = self.classes[entry.class].vtable[usize::from(slot)];
            for &(s, dup) in &sigs {
                if s != slot {
                    continue;
                }
                let self_space = if dup & 1 != 0 {
                    Space::Host
                } else {
                    Space::Local
                };
                let accel_fn =
                    self.compile_method_variant(entry.method, true, self_space, Some(dup))?;
                self.domains[domain_id.0 as usize].add(host_fn, dup, accel_fn);
            }
        }
        self.stats.offload_blocks += 1;
        self.stats
            .domain_sizes
            .push(self.domains[domain_id.0 as usize].len());

        match handle {
            None => {
                fx.emit(Instr::Offload {
                    func: body_id,
                    domain: domain_id,
                });
            }
            Some(name) => {
                let slot = fx.next_handle;
                fx.next_handle += 1;
                fx.handles.insert(name.to_string(), slot);
                fx.emit(Instr::OffloadAsync {
                    func: body_id,
                    domain: domain_id,
                    slot,
                });
            }
        }
        Ok(())
    }

    // ---- places -------------------------------------------------------------

    fn place(&mut self, fx: &mut FnCtx, expr: &Expr) -> Result<PlaceVal, CompileError> {
        match expr {
            Expr::Var(name, span) => {
                if let Some(local) = fx.lookup(name) {
                    if local.ty.is_scalar() {
                        return Ok(PlaceVal::Slot {
                            offset: local.offset,
                            ty: local.ty,
                        });
                    }
                    fx.emit(Instr::AddrOfLocal {
                        offset: local.offset,
                    });
                    return Ok(PlaceVal::Mem {
                        ty: local.ty,
                        space: fx.space_here,
                        word: WordClass::Aligned,
                    });
                }
                if let Some(global) = self.globals.get(name).cloned() {
                    fx.emit(Instr::AddrOfGlobal {
                        offset: global.offset,
                    });
                    return Ok(PlaceVal::Mem {
                        ty: global.ty,
                        space: Space::Host,
                        word: WordClass::Aligned,
                    });
                }
                if fx.accel && fx.enclosing_names.iter().any(|n| n == name) {
                    return Err(err(
                        ErrorKind::Offload,
                        *span,
                        format!(
                            "`{name}` is a local of the enclosing host function and is not \
                             accessible inside the offload block; capture it by value with \
                             `offload use({name}) {{ ... }}` or pass it through a global"
                        ),
                    ));
                }
                Err(err(
                    ErrorKind::Resolve,
                    *span,
                    format!("unknown variable `{name}`"),
                ))
            }
            Expr::Deref { ptr, span } => {
                let p = self.expr(fx, ptr)?;
                match p.ty.clone() {
                    Type::Ptr { pointee, space, .. } => Ok(PlaceVal::Mem {
                        ty: *pointee,
                        space,
                        word: p.word,
                    }),
                    other => Err(err(
                        ErrorKind::Type,
                        *span,
                        format!("cannot dereference `{}`", self.types.display(&other)),
                    )),
                }
            }
            Expr::Field { base, field, span } => {
                // Pointer base: auto-deref.
                let base_val_ty = self.peek_type(fx, base)?;
                if let Type::Ptr { pointee, space, .. } = base_val_ty {
                    let v = self.expr(fx, base)?;
                    let info = self
                        .types
                        .field_of(&pointee, field)
                        .ok_or_else(|| self.no_field_err(&pointee, field, *span))?;
                    fx.emit(Instr::PtrAddConst(info.offset as i32));
                    let word = self.combine_const(v.word, i64::from(info.offset));
                    return Ok(PlaceVal::Mem {
                        ty: self.respace_field(&info.ty, space),
                        space,
                        word,
                    });
                }
                let place = self.place(fx, base)?;
                match place {
                    PlaceVal::Mem { ty, space, word } => {
                        let info = self
                            .types
                            .field_of(&ty, field)
                            .ok_or_else(|| self.no_field_err(&ty, field, *span))?;
                        fx.emit(Instr::PtrAddConst(info.offset as i32));
                        let word = self.combine_const(word, i64::from(info.offset));
                        Ok(PlaceVal::Mem {
                            ty: self.respace_field(&info.ty, space),
                            space,
                            word,
                        })
                    }
                    PlaceVal::Slot { ty, .. } => Err(self.no_field_err(&ty, field, *span)),
                }
            }
            Expr::Index { base, index, span } => {
                let base_val_ty = self.peek_type(fx, base)?;
                let (elem, space, base_word) =
                    if let Type::Ptr { pointee, space, .. } = base_val_ty.clone() {
                        let v = self.expr(fx, base)?;
                        (*pointee, space, v.word)
                    } else {
                        let place = self.place(fx, base)?;
                        match place {
                            PlaceVal::Mem {
                                ty: Type::Array { elem, .. },
                                space,
                                word,
                            } => (*elem, space, word),
                            PlaceVal::Mem { ty, .. } | PlaceVal::Slot { ty, .. } => {
                                return Err(err(
                                    ErrorKind::Type,
                                    *span,
                                    format!("cannot index `{}`", self.types.display(&ty)),
                                ))
                            }
                        }
                    };
                let stride = self.types.size_of(&elem);
                let word = if let Some(k) = const_int(index) {
                    fx.emit(Instr::PtrAddConst((k as i32).wrapping_mul(stride as i32)));
                    self.combine_const(base_word, k * i64::from(stride))
                } else {
                    let i = self.expr(fx, index)?;
                    if !i.ty.is_integer() {
                        return Err(err(ErrorKind::Type, *span, "index must be an integer"));
                    }
                    let wc = self.combine_dynamic(base_word, stride, *span)?;
                    fx.emit(Instr::PtrIndex { stride });
                    wc
                };
                Ok(PlaceVal::Mem {
                    ty: self.respace_field(&elem, space),
                    space,
                    word,
                })
            }
            other => Err(err(
                ErrorKind::Type,
                other.span(),
                "this expression is not assignable",
            )),
        }
    }

    fn no_field_err(&self, ty: &Type, field: &str, span: Span) -> CompileError {
        err(
            ErrorKind::Resolve,
            span,
            format!("`{}` has no field `{field}`", self.types.display(ty)),
        )
    }

    /// Fields of aggregates stored in a space hold pointers whose
    /// declared (Host-default) spaces must be reinterpreted: a pointer
    /// *stored in* outer memory still points wherever its declared space
    /// says. Offload/Mini restricts stored pointer fields to Host space
    /// (data structures live in main memory), so this is the identity —
    /// kept as a single point of truth.
    fn respace_field(&self, ty: &Type, _container_space: Space) -> Type {
        ty.clone()
    }

    /// Computes the type an expression would have, *without* emitting
    /// code, for the cases where place/rvalue handling diverges. Only
    /// the outermost constructor is needed.
    fn peek_type(&mut self, fx: &mut FnCtx, expr: &Expr) -> Result<Type, CompileError> {
        Ok(match expr {
            Expr::Var(name, _) => {
                if let Some(local) = fx.lookup(name) {
                    local.ty
                } else if let Some(global) = self.globals.get(name) {
                    global.ty.clone()
                } else {
                    Type::Void
                }
            }
            Expr::Deref { ptr, .. } => match self.peek_type(fx, ptr)? {
                Type::Ptr { pointee, .. } => *pointee,
                _ => Type::Void,
            },
            Expr::Field { base, field, .. } => {
                let base_ty = self.peek_type(fx, base)?;
                let target = match &base_ty {
                    Type::Ptr { pointee, .. } => (**pointee).clone(),
                    other => other.clone(),
                };
                self.types
                    .field_of(&target, field)
                    .map(|f| f.ty)
                    .unwrap_or(Type::Void)
            }
            Expr::Index { base, .. } => {
                let base_ty = self.peek_type(fx, base)?;
                match base_ty {
                    Type::Ptr { pointee, .. } => *pointee,
                    Type::Array { elem, .. } => *elem,
                    _ => Type::Void,
                }
            }
            Expr::AddrOf { place, .. } => {
                let inner = self.peek_type(fx, place)?;
                Type::ptr(inner, fx.space_here)
            }
            Expr::New { class, .. } => match self.types.class_by_name(class) {
                Some(c) => Type::ptr(Type::Class(c), fx.space_here),
                None => Type::Void,
            },
            Expr::IntLit(..) => Type::Int,
            Expr::FloatLit(..) => Type::Float,
            Expr::BoolLit(..) => Type::Bool,
            Expr::Unary { operand, .. } => self.peek_type(fx, operand)?,
            Expr::Binary { op, lhs, .. } => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Type::Bool
                } else {
                    self.peek_type(fx, lhs)?
                }
            }
            Expr::Call { callee, .. } => match self.free_fns.get(callee) {
                Some(&idx) => self
                    .types
                    .lower(&self.fn_asts[idx].def.ret.clone(), Space::Host)?,
                None => Type::Void,
            },
            Expr::MethodCall { recv, method, .. } => {
                let recv_ty = self.peek_type(fx, recv)?;
                if let Type::Ptr { pointee, .. } = recv_ty {
                    if let Type::Class(c) = *pointee {
                        if let Some(m) = self.types.method_by_name(c, method) {
                            return Ok(self.types.methods[m].ret.clone());
                        }
                    }
                }
                Type::Void
            }
        })
    }

    // ---- expressions -----------------------------------------------------------

    fn expr(&mut self, fx: &mut FnCtx, expr: &Expr) -> Result<ExprVal, CompileError> {
        match expr {
            Expr::IntLit(v, _) => {
                fx.emit(Instr::ConstI(*v));
                Ok(ExprVal::plain(Type::Int))
            }
            Expr::FloatLit(v, _) => {
                fx.emit(Instr::ConstF(*v));
                Ok(ExprVal::plain(Type::Float))
            }
            Expr::BoolLit(v, _) => {
                fx.emit(Instr::ConstB(*v));
                Ok(ExprVal::plain(Type::Bool))
            }
            Expr::Var(_, span)
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Deref { span, .. } => {
                let place = self.place(fx, expr)?;
                match place {
                    PlaceVal::Slot { offset, ty } => {
                        fx.emit(Instr::LoadLocal {
                            offset,
                            ty: self.val_type(&ty, *span)?,
                        });
                        let word = self.loaded_class(&ty);
                        Ok(ExprVal { ty, word })
                    }
                    PlaceVal::Mem { ty, word, .. } => {
                        if !ty.is_scalar() {
                            return Err(err(
                                ErrorKind::Type,
                                *span,
                                "aggregates cannot be read as values; access a field or element",
                            ));
                        }
                        let penalty = self.deref_penalty(word, &ty);
                        fx.emit(Instr::LoadMem {
                            ty: self.val_type(&ty, *span)?,
                            penalty,
                        });
                        let word = self.loaded_class(&ty);
                        Ok(ExprVal { ty, word })
                    }
                }
            }
            Expr::AddrOf { place, span } => {
                let p = self.place(fx, place)?;
                match p {
                    PlaceVal::Slot { offset, ty } => {
                        fx.emit(Instr::AddrOfLocal { offset });
                        Ok(ExprVal {
                            ty: Type::ptr(ty, fx.space_here),
                            word: WordClass::Aligned,
                        })
                    }
                    PlaceVal::Mem { ty, space, word } => {
                        let _ = span;
                        Ok(ExprVal {
                            ty: Type::ptr(ty, space),
                            word,
                        })
                    }
                }
            }
            Expr::Unary { op, operand, span } => {
                let v = self.expr(fx, operand)?;
                match op {
                    UnOp::Neg => match v.ty {
                        Type::Int | Type::Char => {
                            fx.emit(Instr::NegI);
                            Ok(ExprVal::plain(Type::Int))
                        }
                        Type::Float => {
                            fx.emit(Instr::NegF);
                            Ok(ExprVal::plain(Type::Float))
                        }
                        other => Err(err(
                            ErrorKind::Type,
                            *span,
                            format!("cannot negate `{}`", self.types.display(&other)),
                        )),
                    },
                    UnOp::Not => {
                        if v.ty != Type::Bool {
                            return Err(err(ErrorKind::Type, *span, "`!` needs a bool"));
                        }
                        fx.emit(Instr::NotB);
                        Ok(ExprVal::plain(Type::Bool))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, span } => self.expr_binary(fx, *op, lhs, rhs, *span),
            Expr::Call { callee, args, span } => self.expr_call(fx, callee, args, *span),
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => self.expr_method_call(fx, recv, method, args, *span),
            Expr::New { class, span } => {
                let c = self.types.class_by_name(class).ok_or_else(|| {
                    err(
                        ErrorKind::Resolve,
                        *span,
                        format!("unknown class `{class}`"),
                    )
                })?;
                let size = self.types.classes[c].size;
                fx.emit(Instr::NewObject {
                    class: c as u32,
                    size,
                });
                Ok(ExprVal {
                    ty: Type::ptr(Type::Class(c), fx.space_here),
                    word: WordClass::Aligned,
                })
            }
        }
    }

    fn expr_binary(
        &mut self,
        fx: &mut FnCtx,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<ExprVal, CompileError> {
        // Short-circuit logic.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.expr(fx, lhs)?;
            if l.ty != Type::Bool {
                return Err(err(ErrorKind::Type, span, "logical operands must be bool"));
            }
            let j = fx.emit(if op == BinOp::And {
                Instr::JumpIfFalse(0)
            } else {
                Instr::JumpIfTrue(0)
            });
            let r = self.expr(fx, rhs)?;
            if r.ty != Type::Bool {
                return Err(err(ErrorKind::Type, span, "logical operands must be bool"));
            }
            let jend = fx.emit(Instr::Jump(0));
            fx.patch_jump(j);
            fx.emit(Instr::ConstB(op == BinOp::Or));
            fx.patch_jump(jend);
            return Ok(ExprVal::plain(Type::Bool));
        }

        // Pointer arithmetic: `p + k` / `p - k`.
        let lhs_ty = self.peek_type(fx, lhs)?;
        if lhs_ty.is_ptr() && matches!(op, BinOp::Add | BinOp::Sub) {
            let p = self.expr(fx, lhs)?;
            let Type::Ptr {
                pointee,
                space,
                unit,
            } = p.ty.clone()
            else {
                unreachable!("peeked as pointer");
            };
            let stride = self.types.size_of(&pointee);
            let word = if let Some(k) = const_int(rhs) {
                let signed = if op == BinOp::Sub { -k } else { k };
                fx.emit(Instr::PtrAddConst(
                    (signed as i32).wrapping_mul(stride as i32),
                ));
                self.combine_const(p.word, signed * i64::from(stride))
            } else {
                let i = self.expr(fx, rhs)?;
                if !i.ty.is_integer() {
                    return Err(err(
                        ErrorKind::Type,
                        span,
                        "pointer arithmetic needs an integer offset",
                    ));
                }
                let wc = self.combine_dynamic(p.word, stride, span)?;
                if op == BinOp::Sub {
                    fx.emit(Instr::NegI);
                }
                fx.emit(Instr::PtrIndex { stride });
                wc
            };
            return Ok(ExprVal {
                ty: Type::Ptr {
                    pointee,
                    space,
                    unit,
                },
                word,
            });
        }

        // Pointer comparison.
        if lhs_ty.is_ptr() && op.is_comparison() {
            let l = self.expr(fx, lhs)?;
            let r = self.expr(fx, rhs)?;
            match (&l.ty, &r.ty) {
                (Type::Ptr { space: ls, .. }, Type::Ptr { space: rs, .. }) => {
                    if ls != rs {
                        return Err(err(
                            ErrorKind::MemorySpace,
                            span,
                            "cannot compare pointers into different memory spaces",
                        ));
                    }
                }
                _ => {
                    return Err(err(
                        ErrorKind::Type,
                        span,
                        "cannot compare a pointer with a non-pointer",
                    ))
                }
            }
            fx.emit(Instr::CmpI(cmp_of(op)));
            return Ok(ExprVal::plain(Type::Bool));
        }

        let l = self.expr(fx, lhs)?;
        let r = self.expr(fx, rhs)?;
        let both_int = l.ty.is_integer() && r.ty.is_integer();
        let both_float = l.ty == Type::Float && r.ty == Type::Float;
        if !(both_int || both_float) {
            return Err(err(
                ErrorKind::Type,
                span,
                format!(
                    "operands of `{op:?}` must both be integers or both floats \
                     (found `{}` and `{}`; use int_to_float/float_to_int)",
                    self.types.display(&l.ty),
                    self.types.display(&r.ty)
                ),
            ));
        }
        if op.is_comparison() {
            fx.emit(if both_int {
                Instr::CmpI(cmp_of(op))
            } else {
                Instr::CmpF(cmp_of(op))
            });
            return Ok(ExprVal::plain(Type::Bool));
        }
        let instr = match (op, both_int) {
            (BinOp::Add, true) => Instr::AddI,
            (BinOp::Sub, true) => Instr::SubI,
            (BinOp::Mul, true) => Instr::MulI,
            (BinOp::Div, true) => Instr::DivI,
            (BinOp::Mod, true) => Instr::ModI,
            (BinOp::Add, false) => Instr::AddF,
            (BinOp::Sub, false) => Instr::SubF,
            (BinOp::Mul, false) => Instr::MulF,
            (BinOp::Div, false) => Instr::DivF,
            (BinOp::Mod, false) => {
                return Err(err(ErrorKind::Type, span, "`%` needs integer operands"))
            }
            _ => unreachable!("comparisons handled above"),
        };
        fx.emit(instr);
        Ok(ExprVal::plain(if both_int {
            Type::Int
        } else {
            Type::Float
        }))
    }

    fn expr_call(
        &mut self,
        fx: &mut FnCtx,
        callee: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<ExprVal, CompileError> {
        // Intrinsics.
        match callee {
            "print_int" | "print_float" | "int_to_float" | "float_to_int" => {
                if args.len() != 1 {
                    return Err(err(
                        ErrorKind::Type,
                        span,
                        format!("`{callee}` takes exactly one argument"),
                    ));
                }
                let v = self.expr(fx, &args[0])?;
                return match callee {
                    "print_int" => {
                        if !v.ty.is_integer() {
                            return Err(err(ErrorKind::Type, span, "`print_int` needs an int"));
                        }
                        fx.emit(Instr::PrintI);
                        Ok(ExprVal::plain(Type::Void))
                    }
                    "print_float" => {
                        if v.ty != Type::Float {
                            return Err(err(ErrorKind::Type, span, "`print_float` needs a float"));
                        }
                        fx.emit(Instr::PrintF);
                        Ok(ExprVal::plain(Type::Void))
                    }
                    "int_to_float" => {
                        if !v.ty.is_integer() {
                            return Err(err(ErrorKind::Type, span, "`int_to_float` needs an int"));
                        }
                        fx.emit(Instr::I2F);
                        Ok(ExprVal::plain(Type::Float))
                    }
                    _ => {
                        if v.ty != Type::Float {
                            return Err(err(ErrorKind::Type, span, "`float_to_int` needs a float"));
                        }
                        fx.emit(Instr::F2I);
                        Ok(ExprVal::plain(Type::Int))
                    }
                };
            }
            _ => {}
        }

        let &ast_idx = self.free_fns.get(callee).ok_or_else(|| {
            err(
                ErrorKind::Resolve,
                span,
                format!("unknown function `{callee}`"),
            )
        })?;
        let def_params: Vec<ast::Param> = self.fn_asts[ast_idx].def.params.clone();
        let ret = self
            .types
            .lower(&self.fn_asts[ast_idx].def.ret.clone(), Space::Host)?;
        if args.len() != def_params.len() {
            return Err(err(
                ErrorKind::Type,
                span,
                format!(
                    "`{callee}` takes {} argument(s), {} given",
                    def_params.len(),
                    args.len()
                ),
            ));
        }
        let mut key_params = Vec::with_capacity(args.len());
        for (arg, param) in args.iter().zip(&def_params) {
            let declared = self.types.lower(&param.ty, fx.space_here)?;
            let v = self.expr(fx, arg)?;
            let adopted = adopt_spaces(&declared, &v.ty);
            self.check_assign(&adopted, &v, arg.span())?;
            key_params.push(adopted);
        }
        let func = self.compile_variant(FuncKey {
            ast: ast_idx,
            accel: fx.accel,
            params: key_params,
        })?;
        fx.emit(Instr::Call { func });
        Ok(ExprVal::plain(ret))
    }

    fn expr_method_call(
        &mut self,
        fx: &mut FnCtx,
        recv: &Expr,
        method: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<ExprVal, CompileError> {
        let r = self.expr(fx, recv)?;
        let (class, recv_space) = match &r.ty {
            Type::Ptr { pointee, space, .. } => match &**pointee {
                Type::Class(c) => (*c, *space),
                other => {
                    return Err(err(
                        ErrorKind::Type,
                        span,
                        format!(
                            "method calls need a class pointer, found `{} {space}*`",
                            self.types.display(other)
                        ),
                    ))
                }
            },
            other => {
                return Err(err(
                    ErrorKind::Type,
                    span,
                    format!(
                        "method calls need a class pointer, found `{}`",
                        self.types.display(other)
                    ),
                ))
            }
        };
        let midx = self.types.method_by_name(class, method).ok_or_else(|| {
            err(
                ErrorKind::Resolve,
                span,
                format!(
                    "class `{}` has no method `{method}`",
                    self.types.classes[class].name
                ),
            )
        })?;
        let info = self.types.methods[midx].clone();
        if args.len() != info.params.len() {
            return Err(err(
                ErrorKind::Type,
                span,
                format!(
                    "`{method}` takes {} argument(s), {} given",
                    info.params.len(),
                    args.len()
                ),
            ));
        }
        // Compile arguments and build the duplicate signature.
        let mut dup: u16 = if recv_space == Space::Host { 1 } else { 0 };
        let mut arg_types = Vec::with_capacity(args.len());
        let mut ptr_index = 0u16;
        for (arg, param) in args.iter().zip(&info.params) {
            let declared = param.clone();
            let v = self.expr(fx, arg)?;
            let adopted = adopt_spaces(&declared, &v.ty);
            self.check_assign(&adopted, &v, arg.span())?;
            if adopted.is_ptr() {
                ptr_index += 1;
                if let Type::Ptr {
                    space: Space::Host, ..
                } = adopted
                {
                    dup |= 1 << ptr_index;
                }
            }
            arg_types.push(adopted);
        }

        if info.is_virtual {
            if fx.accel {
                self.vcall_sigs.insert((info.slot, dup));
            }
            fx.emit(Instr::CallVirtual {
                slot: info.slot,
                nargs: args.len() as u16,
                domain: None,
                dup,
            });
        } else {
            let self_ty = Type::ptr(Type::Class(info.defined_in), recv_space);
            let mut params = vec![self_ty];
            params.extend(arg_types);
            let func = self.compile_variant(FuncKey {
                ast: info.ast_index,
                accel: fx.accel,
                params,
            })?;
            fx.emit(Instr::Call { func });
        }
        Ok(ExprVal::plain(info.ret))
    }
}

/// Rebinds the top-level space of a pointer type.
fn respace_top(ty: &Type, space: Space) -> Type {
    match ty {
        Type::Ptr { pointee, unit, .. } => Type::Ptr {
            pointee: pointee.clone(),
            space,
            unit: *unit,
        },
        other => other.clone(),
    }
}

/// Adopts the memory spaces of `found` into `declared` (keeping the
/// declared units and shape) — the automatic `__outer` qualification of
/// paper §3.
fn adopt_spaces(declared: &Type, found: &Type) -> Type {
    match (declared, found) {
        (
            Type::Ptr {
                pointee: dp, unit, ..
            },
            Type::Ptr {
                pointee: fp, space, ..
            },
        ) => Type::Ptr {
            pointee: Box::new(adopt_spaces(dp, fp)),
            space: *space,
            unit: *unit,
        },
        (Type::Array { elem: de, len }, Type::Array { elem: fe, .. }) => Type::Array {
            elem: Box::new(adopt_spaces(de, fe)),
            len: *len,
        },
        _ => declared.clone(),
    }
}

/// Constant-folds an integer expression (literals, unary minus, and
/// literal arithmetic).
fn const_int(expr: &Expr) -> Option<i64> {
    match expr {
        Expr::IntLit(v, _) => Some(i64::from(*v)),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => const_int(operand).map(|v| -v),
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = const_int(lhs)?;
            let r = const_int(rhs)?;
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => Some(l * r),
                _ => None,
            }
        }
        _ => None,
    }
}

fn cmp_of(op: BinOp) -> Cmp {
    match op {
        BinOp::Eq => Cmp::Eq,
        BinOp::Ne => Cmp::Ne,
        BinOp::Lt => Cmp::Lt,
        BinOp::Le => Cmp::Le,
        BinOp::Gt => Cmp::Gt,
        BinOp::Ge => Cmp::Ge,
        other => unreachable!("{other:?} is not a comparison"),
    }
}
