//! The lexer.

use crate::diag::{CompileError, ErrorKind};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenises `source`.
///
/// Comments run `//` to end of line. Whitespace separates tokens.
///
/// # Errors
///
/// Returns a [`CompileError`] of kind [`ErrorKind::Lex`] on unknown
/// characters or malformed numeric literals.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    let is_ident_start = |b: u8| b.is_ascii_alphabetic() || b == b'_';
    let is_ident_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_';

    while i < bytes.len() {
        let b = bytes[i];
        let start = i as u32;
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Numbers.
        if b.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let mut is_float = false;
            if j < bytes.len()
                && bytes[j] == b'.'
                && j + 1 < bytes.len()
                && bytes[j + 1].is_ascii_digit()
            {
                is_float = true;
                j += 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
            }
            let text = &source[i..j];
            let span = Span::new(start, j as u32);
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| {
                    CompileError::new(ErrorKind::Lex, span, format!("malformed float `{text}`"))
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| {
                    CompileError::new(
                        ErrorKind::Lex,
                        span,
                        format!("integer `{text}` does not fit in 32 bits"),
                    )
                })?)
            };
            tokens.push(Token { kind, span });
            i = j;
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(b) {
            let mut j = i;
            while j < bytes.len() && is_ident_cont(bytes[j]) {
                j += 1;
            }
            let text = &source[i..j];
            let span = Span::new(start, j as u32);
            let kind = match text {
                "fn" => TokenKind::Fn,
                "let" => TokenKind::Let,
                "var" => TokenKind::Var,
                "struct" => TokenKind::Struct,
                "class" => TokenKind::Class,
                "virtual" => TokenKind::Virtual,
                "override" => TokenKind::Override,
                "new" => TokenKind::New,
                "if" => TokenKind::If,
                "else" => TokenKind::Else,
                "while" => TokenKind::While,
                "return" => TokenKind::Return,
                "offload" => TokenKind::Offload,
                "domain" => TokenKind::Domain,
                "join" => TokenKind::Join,
                "byte" => TokenKind::Byte,
                "true" => TokenKind::Bool(true),
                "false" => TokenKind::Bool(false),
                _ => TokenKind::Ident(text.to_string()),
            };
            tokens.push(Token { kind, span });
            i = j;
            continue;
        }
        // Operators and punctuation.
        let two = if i + 1 < bytes.len() {
            &source[i..i + 2]
        } else {
            ""
        };
        let (kind, len) = match two {
            "->" => (TokenKind::Arrow, 2),
            "==" => (TokenKind::Eq, 2),
            "!=" => (TokenKind::Ne, 2),
            "<=" => (TokenKind::Le, 2),
            ">=" => (TokenKind::Ge, 2),
            "&&" => (TokenKind::AndAnd, 2),
            "||" => (TokenKind::OrOr, 2),
            _ => {
                let kind = match b {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b';' => TokenKind::Semi,
                    b':' => TokenKind::Colon,
                    b',' => TokenKind::Comma,
                    b'.' => TokenKind::Dot,
                    b'*' => TokenKind::Star,
                    b'&' => TokenKind::Amp,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'/' => TokenKind::Slash,
                    b'%' => TokenKind::Percent,
                    b'=' => TokenKind::Assign,
                    b'<' => TokenKind::Lt,
                    b'>' => TokenKind::Gt,
                    b'!' => TokenKind::Not,
                    other => {
                        return Err(CompileError::new(
                            ErrorKind::Lex,
                            Span::new(start, start + 1),
                            format!("unexpected character `{}`", other as char),
                        ))
                    }
                };
                (kind, 1)
            }
        };
        tokens.push(Token {
            kind,
            span: Span::new(start, start + len as u32),
        });
        i += len;
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(bytes.len() as u32),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_function_header() {
        assert_eq!(
            kinds("fn main() -> int {"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("main".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Ident("int".into()),
                TokenKind::LBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.5 0 1.0"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Int(0),
                TokenKind::Float(1.0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn int_dot_is_not_a_float_without_digits() {
        // `p.x` style field access after a number shouldn't happen, but
        // `1.` must not eat the dot.
        assert_eq!(
            kinds("1 . 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_first() {
        assert_eq!(
            kinds("== = <= < -> - && &"),
            vec![
                TokenKind::Eq,
                TokenKind::Assign,
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::Arrow,
                TokenKind::Minus,
                TokenKind::AndAnd,
                TokenKind::Amp,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("offload domain byte bytes true falsehood"),
            vec![
                TokenKind::Offload,
                TokenKind::Domain,
                TokenKind::Byte,
                TokenKind::Ident("bytes".into()),
                TokenKind::Bool(true),
                TokenKind::Ident("falsehood".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unknown_character_is_an_error() {
        let err = lex("let $x").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Lex);
        assert!(err.message.contains('$'));
    }

    #[test]
    fn overflowing_int_is_an_error() {
        let err = lex("99999999999").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Lex);
    }

    #[test]
    fn spans_point_into_the_source() {
        let tokens = lex("ab cd").unwrap();
        assert_eq!(tokens[1].span, Span::new(3, 5));
    }
}
