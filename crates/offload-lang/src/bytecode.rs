//! The bytecode a compiled program consists of.
//!
//! A stack machine: expressions push values onto an operand stack
//! (modelling registers — operand traffic is free), while locals,
//! globals, heap objects and frames live in *simulated memory*, so
//! every pointer dereference pays the cost of the space it touches.

use std::fmt;

/// Index of a compiled function within [`Program::funcs`](crate::compile::Program).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FuncId(pub u32);

/// Index of a dispatch domain within the program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DomainId(pub u32);

/// Which space a pointer *value* refers into (resolved against the
/// executing accelerator at runtime).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpaceTag {
    /// Main (outer) memory.
    Host,
    /// The executing core's local store (main memory when the host
    /// executes the instruction).
    Local,
}

/// The scalar type of a memory access or stack slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 32-bit float.
    F32,
    /// 1-byte boolean.
    Bool,
    /// 1-byte character.
    Char,
    /// 4-byte pointer (offset); the space is static.
    Ptr(SpaceTag),
}

impl ValType {
    /// Size of the value in simulated memory.
    pub fn size(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 | ValType::Ptr(_) => 4,
            ValType::Bool | ValType::Char => 1,
        }
    }
}

/// Comparison operators for `CmpI`/`CmpF`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One bytecode instruction.
///
/// Stack effects are noted as `… pops → pushes`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    /// `→ i32`
    ConstI(i32),
    /// `→ f32`
    ConstF(f32),
    /// `→ bool`
    ConstB(bool),
    /// Discard the top of stack.
    Drop,

    /// Load a frame slot. `→ value`
    LoadLocal {
        /// Byte offset within the frame.
        offset: u32,
        /// Scalar type.
        ty: ValType,
    },
    /// Store to a frame slot. `value →`
    StoreLocal {
        /// Byte offset within the frame.
        offset: u32,
        /// Scalar type.
        ty: ValType,
    },
    /// Push the address of a frame slot. `→ ptr(local-or-host)`
    AddrOfLocal {
        /// Byte offset within the frame.
        offset: u32,
    },
    /// Push the address of a global. `→ ptr(host)`
    AddrOfGlobal {
        /// Byte offset within the globals block.
        offset: u32,
    },

    /// Load through a pointer. `ptr → value`. `penalty` is extra cycles
    /// for sub-word extraction / byte-pointer emulation (paper §5).
    LoadMem {
        /// Scalar type loaded.
        ty: ValType,
        /// Extra cycles charged on top of the memory access.
        penalty: u32,
    },
    /// Store through a pointer. `ptr value →`
    StoreMem {
        /// Scalar type stored.
        ty: ValType,
        /// Extra cycles charged on top of the memory access.
        penalty: u32,
    },
    /// Aggregate copy. `dst_ptr src_ptr →`
    CopyMem {
        /// Bytes copied.
        size: u32,
    },
    /// Add a constant byte offset to a pointer. `ptr → ptr`
    PtrAddConst(i32),
    /// Add a scaled dynamic index. `ptr i32 → ptr`
    PtrIndex {
        /// Element stride in bytes.
        stride: u32,
    },

    /// `i32 i32 → i32`
    AddI,
    /// `i32 i32 → i32`
    SubI,
    /// `i32 i32 → i32`
    MulI,
    /// `i32 i32 → i32` (traps on zero divisor)
    DivI,
    /// `i32 i32 → i32` (traps on zero divisor)
    ModI,
    /// `i32 → i32`
    NegI,
    /// `f32 f32 → f32`
    AddF,
    /// `f32 f32 → f32`
    SubF,
    /// `f32 f32 → f32`
    MulF,
    /// `f32 f32 → f32`
    DivF,
    /// `f32 → f32`
    NegF,
    /// `i32 i32 → bool`
    CmpI(Cmp),
    /// `f32 f32 → bool`
    CmpF(Cmp),
    /// `bool → bool`
    NotB,
    /// `i32 → f32`
    I2F,
    /// `f32 → i32` (truncating)
    F2I,

    /// Unconditional jump to an instruction index.
    Jump(u32),
    /// `bool →`; jump when false.
    JumpIfFalse(u32),
    /// `bool →`; jump when true (for `||`).
    JumpIfTrue(u32),

    /// Static call. `args… → ret?`
    Call {
        /// Callee.
        func: FuncId,
    },
    /// Virtual call through the receiver's class-id header.
    /// `recv args… → ret?`
    CallVirtual {
        /// vtable slot.
        slot: u16,
        /// Number of arguments *excluding* the receiver.
        nargs: u16,
        /// Dispatch domain (accelerator code only; `None` on the host).
        domain: Option<DomainId>,
        /// Memory-space signature of the required duplicate.
        dup: u16,
    },
    /// Return from the current function. `ret? →` (caller receives it)
    Ret {
        /// Whether a value is returned.
        has_value: bool,
    },

    /// Allocate a class instance in the *current* space's arena and
    /// write its class-id header. `→ ptr(local)`
    NewObject {
        /// Class id (index into the program's class list).
        class: u32,
        /// Instance size in bytes.
        size: u32,
    },

    /// Launch an offload block (host only): run `func` on the
    /// accelerator under `domain`, joining before continuing.
    Offload {
        /// The compiled body.
        func: FuncId,
        /// The block's dispatch domain.
        domain: DomainId,
    },
    /// Launch an *asynchronous* offload block (host only): the host
    /// continues; `Join` with the same slot synchronises.
    OffloadAsync {
        /// The compiled body.
        func: FuncId,
        /// The block's dispatch domain.
        domain: DomainId,
        /// The handle slot.
        slot: u16,
    },
    /// Join the asynchronous offload registered under `slot`.
    Join {
        /// The handle slot.
        slot: u16,
    },

    /// Print the top of stack to the VM output. `i32 →`
    PrintI,
    /// Print the top of stack to the VM output. `f32 →`
    PrintF,
}

/// A compiled function (or function duplicate, or offload body).
#[derive(Clone, Debug)]
pub struct FuncBody {
    /// Diagnostic name, e.g. `update@Enemy[self:outer]`.
    pub name: String,
    /// Parameter types, in call order (receiver first for methods).
    pub params: Vec<ValType>,
    /// Byte offsets of the parameter slots in the frame.
    pub param_offsets: Vec<u32>,
    /// Total frame size in bytes.
    pub frame_size: u32,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// The code.
    pub code: Vec<Instr>,
}

impl fmt::Display for FuncBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {} (frame {} bytes):", self.name, self.frame_size)?;
        for (i, instr) in self.code.iter().enumerate() {
            writeln!(f, "  {i:4}: {instr:?}")?;
        }
        Ok(())
    }
}

/// A class as the VM sees it: name + vtable of host implementations.
#[derive(Clone, Debug)]
pub struct VmClass {
    /// Class name (diagnostics).
    pub name: String,
    /// slot → host-compiled [`FuncId`].
    pub vtable: Vec<FuncId>,
}

/// A dispatch domain as the VM sees it (paper Figure 3).
#[derive(Clone, Debug, Default)]
pub struct VmDomain {
    /// Outer domain: host function ids known to this offload.
    pub outer: Vec<FuncId>,
    /// Inner domain: per outer entry, `(duplicate id, accel FuncId)`.
    pub inner: Vec<Vec<(u16, FuncId)>>,
}

impl VmDomain {
    /// Adds a duplicate for `host_fn`.
    pub fn add(&mut self, host_fn: FuncId, dup: u16, accel_fn: FuncId) {
        if let Some(i) = self.outer.iter().position(|&f| f == host_fn) {
            if !self.inner[i].iter().any(|&(d, _)| d == dup) {
                self.inner[i].push((dup, accel_fn));
            }
        } else {
            self.outer.push(host_fn);
            self.inner.push(vec![(dup, accel_fn)]);
        }
    }

    /// Two-stage lookup; returns `(accel fn, outer probes, inner probes)`.
    pub fn lookup(&self, host_fn: FuncId, dup: u16) -> Option<(FuncId, u32, u32)> {
        for (i, &entry) in self.outer.iter().enumerate() {
            if entry == host_fn {
                for (j, &(d, accel_fn)) in self.inner[i].iter().enumerate() {
                    if d == dup {
                        return Some((accel_fn, i as u32 + 1, j as u32 + 1));
                    }
                }
                return None;
            }
        }
        None
    }

    /// Annotation count (outer-domain size).
    pub fn len(&self) -> usize {
        self.outer.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.outer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_type_sizes() {
        assert_eq!(ValType::I32.size(), 4);
        assert_eq!(ValType::Char.size(), 1);
        assert_eq!(ValType::Bool.size(), 1);
        assert_eq!(ValType::Ptr(SpaceTag::Host).size(), 4);
    }

    #[test]
    fn domain_add_and_lookup() {
        let mut d = VmDomain::default();
        d.add(FuncId(10), 0, FuncId(100));
        d.add(FuncId(10), 1, FuncId(101));
        d.add(FuncId(20), 1, FuncId(200));
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup(FuncId(10), 1), Some((FuncId(101), 1, 2)));
        assert_eq!(d.lookup(FuncId(20), 1), Some((FuncId(200), 2, 1)));
        assert_eq!(d.lookup(FuncId(20), 0), None, "duplicate not compiled");
        assert_eq!(d.lookup(FuncId(30), 0), None, "not annotated");
    }

    #[test]
    fn domain_deduplicates() {
        let mut d = VmDomain::default();
        d.add(FuncId(1), 0, FuncId(2));
        d.add(FuncId(1), 0, FuncId(2));
        assert_eq!(d.len(), 1);
        assert_eq!(d.inner[0].len(), 1);
    }

    #[test]
    fn func_body_display_lists_instructions() {
        let body = FuncBody {
            name: "main".into(),
            params: vec![],
            param_offsets: vec![],
            frame_size: 8,
            returns_value: true,
            code: vec![Instr::ConstI(42), Instr::Ret { has_value: true }],
        };
        let text = body.to_string();
        assert!(text.contains("main"));
        assert!(text.contains("ConstI(42)"));
    }
}
