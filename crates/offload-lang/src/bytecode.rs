//! The bytecode a compiled program consists of.
//!
//! A stack machine: expressions push values onto an operand stack
//! (modelling registers — operand traffic is free), while locals,
//! globals, heap objects and frames live in *simulated memory*, so
//! every pointer dereference pays the cost of the space it touches.
//!
//! # Cost accounting
//!
//! Unless noted otherwise, every instruction charges one `arith` cycle
//! for decode/execute (the [`simcell::CostModel`] field names are used
//! throughout). Per-opcode docs list anything charged *on top of* that
//! baseline. Accesses that fall inside the current frame model
//! register/L1-resident locals and charge nothing extra; everything
//! else pays the memory path of the space it touches.
//!
//! # Superinstructions
//!
//! The tail of [`Instr`] holds *fused* opcodes produced by the
//! [`crate::peephole`] pass. Each one stands for a short run of
//! ordinary instructions and charges **exactly** the cycles that run
//! would have charged — fusion is a wall-clock (host) optimisation
//! only; simulated time is bit-identical. [`Instr::width`] reports how
//! many original instructions a fused opcode replaces; the interpreter
//! advances the program counter and the retired-instruction counter by
//! that width, stepping over the dead original instructions the fuser
//! leaves behind as padding (so jump targets stay valid).
//!
//! # Example: disassembling a tiny program
//!
//! The peephole pass is on by default, so a counter bump compiles to a
//! single fused [`Instr::IncLocalI`]:
//!
//! ```
//! use offload_lang::{compile, Target};
//!
//! let source = "fn main() -> int { let i: int = 40; i = i + 2; return i; }";
//! let program = compile(source, &Target::cell_like()).unwrap();
//! let listing = program.disassemble();
//! assert!(listing.contains("IncLocalI"), "i = i + 2 fuses:\n{listing}");
//! assert!(listing.contains("Ret"));
//!
//! // With superinstructions off, the plain four-opcode form survives.
//! let plain = compile(source, &Target::cell_like().with_superinstructions(false)).unwrap();
//! assert!(!plain.disassemble().contains("IncLocalI"));
//! ```

#![deny(missing_docs)]

use std::fmt;

/// Index of a compiled function within [`Program::funcs`](crate::compile::Program).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FuncId(pub u32);

/// Index of a dispatch domain within the program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DomainId(pub u32);

/// Which space a pointer *value* refers into (resolved against the
/// executing accelerator at runtime).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpaceTag {
    /// Main (outer) memory.
    Host,
    /// The executing core's local store (main memory when the host
    /// executes the instruction).
    Local,
}

/// The scalar type of a memory access or stack slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 32-bit float.
    F32,
    /// 1-byte boolean.
    Bool,
    /// 1-byte character.
    Char,
    /// 4-byte pointer (offset); the space is static.
    Ptr(SpaceTag),
}

impl ValType {
    /// Size of the value in simulated memory.
    pub fn size(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 | ValType::Ptr(_) => 4,
            ValType::Bool | ValType::Char => 1,
        }
    }
}

/// Comparison operators for `CmpI`/`CmpF`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Integer operator selector for fused superinstructions.
///
/// Only the non-trapping operators appear: `DivI`/`ModI` can raise
/// [`crate::VmError::DivideByZero`] mid-sequence, so the fuser never
/// folds them into a superinstruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithI {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
}

/// Float operator selector for fused superinstructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithF {
    /// IEEE addition.
    Add,
    /// IEEE subtraction.
    Sub,
    /// IEEE multiplication.
    Mul,
    /// IEEE division (no trap; produces ±inf/NaN like the unfused op).
    Div,
}

/// One bytecode instruction.
///
/// Stack effects are noted as `… pops → pushes`; costs follow the
/// module-level convention (an implicit `arith` per instruction, extras
/// listed per opcode).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    /// Push an integer constant. `→ i32`. Cost: `arith`.
    ConstI(i32),
    /// Push a float constant. `→ f32`. Cost: `arith`.
    ConstF(f32),
    /// Push a boolean constant. `→ bool`. Cost: `arith`.
    ConstB(bool),
    /// Discard the top of stack. `v →`. Cost: `arith`.
    Drop,

    /// Load a frame slot. `→ value`. Cost: `arith` (in-frame access is
    /// register-modelled — no memory cycles).
    LoadLocal {
        /// Byte offset within the frame.
        offset: u32,
        /// Scalar type.
        ty: ValType,
    },
    /// Store to a frame slot. `value →`. Cost: `arith`.
    StoreLocal {
        /// Byte offset within the frame.
        offset: u32,
        /// Scalar type.
        ty: ValType,
    },
    /// Push the address of a frame slot. `→ ptr(local-or-host)`.
    /// Cost: `arith`.
    AddrOfLocal {
        /// Byte offset within the frame.
        offset: u32,
    },
    /// Push the address of a global. `→ ptr(host)`. Cost: `arith`.
    AddrOfGlobal {
        /// Byte offset within the globals block.
        offset: u32,
    },

    /// Load through a pointer. `ptr → value`. Cost: `arith` +
    /// `penalty`, plus the memory path of the space the pointer points
    /// into (free if it lands in the current frame; `host_mem_access`
    /// per line on the host; local-store or DMA/cache cycles on an
    /// accelerator).
    LoadMem {
        /// Scalar type loaded.
        ty: ValType,
        /// Extra cycles for sub-word extraction / byte-pointer
        /// emulation (paper §5), charged before the access.
        penalty: u32,
    },
    /// Store through a pointer. `ptr value →`. Cost: as [`Instr::LoadMem`].
    StoreMem {
        /// Scalar type stored.
        ty: ValType,
        /// Extra cycles charged on top of the memory access.
        penalty: u32,
    },
    /// Aggregate copy. `dst_ptr src_ptr →`. Cost: `arith` + the read
    /// path of `src` + the write path of `dst` for `size` bytes.
    CopyMem {
        /// Bytes copied.
        size: u32,
    },
    /// Add a constant byte offset to a pointer. `ptr → ptr`.
    /// Cost: `arith`.
    PtrAddConst(i32),
    /// Add a scaled dynamic index. `ptr i32 → ptr`. Cost: 2 × `arith`
    /// (decode + multiply-add).
    PtrIndex {
        /// Element stride in bytes.
        stride: u32,
    },

    /// Wrapping add. `i32 i32 → i32`. Cost: `arith`.
    AddI,
    /// Wrapping subtract. `i32 i32 → i32`. Cost: `arith`.
    SubI,
    /// Wrapping multiply. `i32 i32 → i32`. Cost: `arith`.
    MulI,
    /// Division. `i32 i32 → i32`. Cost: `arith`. Traps with
    /// [`crate::VmError::DivideByZero`] on a zero divisor.
    DivI,
    /// Remainder. `i32 i32 → i32`. Cost: `arith`. Traps on zero.
    ModI,
    /// Negate. `i32 → i32`. Cost: `arith`.
    NegI,
    /// `f32 f32 → f32`. Cost: `arith`.
    AddF,
    /// `f32 f32 → f32`. Cost: `arith`.
    SubF,
    /// `f32 f32 → f32`. Cost: `arith`.
    MulF,
    /// `f32 f32 → f32`. Cost: `arith` (IEEE — no trap).
    DivF,
    /// Negate. `f32 → f32`. Cost: `arith`.
    NegF,
    /// Compare integers (or pointer offsets). `i32 i32 → bool`.
    /// Cost: `arith`.
    CmpI(Cmp),
    /// Compare floats. `f32 f32 → bool`. Cost: `arith`.
    CmpF(Cmp),
    /// Logical not. `bool → bool`. Cost: `arith`.
    NotB,
    /// Convert. `i32 → f32`. Cost: `arith`.
    I2F,
    /// Convert (truncating). `f32 → i32`. Cost: `arith`.
    F2I,

    /// Unconditional jump to an instruction index. Cost: `arith` +
    /// `branch`.
    Jump(u32),
    /// `bool →`; jump when false. Cost: `arith` + `branch` (charged
    /// whether or not the branch is taken — the simulated core has no
    /// branch predictor).
    JumpIfFalse(u32),
    /// `bool →`; jump when true (for `||`). Cost: `arith` + `branch`.
    JumpIfTrue(u32),

    /// Static call. `args… → ret?`. Cost: `arith` + `branch` for the
    /// frame push, then `arith` per argument stored into the callee
    /// frame.
    Call {
        /// Callee.
        func: FuncId,
    },
    /// Virtual call through the receiver's class-id header.
    /// `recv args… → ret?`. Cost: `arith` + the header read (costed by
    /// the receiver's space) + `vcall`; on an accelerator additionally
    /// the Figure 3 domain search (`domain_lookup_base` +
    /// `domain_outer_entry`/`domain_inner_entry` per probe); then the
    /// [`Instr::Call`] frame-push costs.
    CallVirtual {
        /// vtable slot.
        slot: u16,
        /// Number of arguments *excluding* the receiver.
        nargs: u16,
        /// Dispatch domain (accelerator code only; `None` on the host).
        domain: Option<DomainId>,
        /// Memory-space signature of the required duplicate.
        dup: u16,
    },
    /// Return from the current function. `ret? →` (caller receives it).
    /// Cost: `arith` + `branch`.
    Ret {
        /// Whether a value is returned.
        has_value: bool,
    },

    /// Allocate a class instance in the *current* space's arena and
    /// write its class-id header. `→ ptr(local)`. Cost: 5 × `arith`
    /// (decode + allocator bookkeeping) + the header write.
    NewObject {
        /// Class id (index into the program's class list).
        class: u32,
        /// Instance size in bytes.
        size: u32,
    },

    /// Launch an offload block (host only): run `func` on the
    /// accelerator under `domain`, joining before continuing. Cost:
    /// `arith`, plus everything the accelerator run charges (spawn/join
    /// synchronisation, callee frame, DMA…).
    Offload {
        /// The compiled body.
        func: FuncId,
        /// The block's dispatch domain.
        domain: DomainId,
    },
    /// Launch an *asynchronous* offload block (host only): the host
    /// continues; `Join` with the same slot synchronises. Cost: `arith`
    /// + spawn overhead.
    OffloadAsync {
        /// The compiled body.
        func: FuncId,
        /// The block's dispatch domain.
        domain: DomainId,
        /// The handle slot.
        slot: u16,
    },
    /// Join the asynchronous offload registered under `slot`. Cost:
    /// `arith` + the wait until the accelerator finishes.
    Join {
        /// The handle slot.
        slot: u16,
    },

    /// Print the top of stack to the VM output. `i32 →`. Cost: `arith`.
    PrintI,
    /// Print the top of stack to the VM output. `f32 →`. Cost: `arith`.
    PrintF,

    // ------------------------------------------------------------------
    // Superinstructions — emitted only by the peephole fusion pass
    // (crate::peephole), never by codegen directly. Each charges
    // exactly what its unfused expansion charges.
    // ------------------------------------------------------------------
    /// Fused `LoadLocal off1 ty1; LoadLocal off2 ty2`. `→ v1 v2`.
    /// Width 2. Cost: 2 × `arith`.
    LoadLocal2 {
        /// First slot's byte offset.
        off1: u32,
        /// First slot's type.
        ty1: ValType,
        /// Second slot's byte offset.
        off2: u32,
        /// Second slot's type.
        ty2: ValType,
    },
    /// Fused `LoadLocal a I32; LoadLocal b I32; AddI/SubI/MulI`.
    /// `→ i32`. Width 3. Cost: 3 × `arith`.
    LoadLocal2OpI {
        /// Left operand's frame offset.
        a: u32,
        /// Right operand's frame offset.
        b: u32,
        /// The fused operator.
        op: ArithI,
    },
    /// Fused `LoadLocal a F32; LoadLocal b F32; AddF/SubF/MulF/DivF`.
    /// `→ f32`. Width 3. Cost: 3 × `arith`.
    LoadLocal2OpF {
        /// Left operand's frame offset.
        a: u32,
        /// Right operand's frame offset.
        b: u32,
        /// The fused operator.
        op: ArithF,
    },
    /// Fused `LoadLocal offset I32; AddI/SubI/MulI` — top of stack ⊕
    /// local. `i32 → i32`. Width 2. Cost: 2 × `arith`.
    LoadLocalOpI {
        /// Right operand's frame offset.
        offset: u32,
        /// The fused operator.
        op: ArithI,
    },
    /// Fused `LoadLocal offset F32; AddF/SubF/MulF/DivF`. `f32 → f32`.
    /// Width 2. Cost: 2 × `arith`.
    LoadLocalOpF {
        /// Right operand's frame offset.
        offset: u32,
        /// The fused operator.
        op: ArithF,
    },
    /// Fused `LoadLocal offset Ptr(tag); PtrAddConst delta` — the
    /// `obj.field` address pattern. `→ ptr`. Width 2. Cost: 2 × `arith`.
    LoadLocalPtrAdd {
        /// Pointer slot's frame offset.
        offset: u32,
        /// The pointer's space tag.
        tag: SpaceTag,
        /// Constant byte offset added to the loaded pointer.
        delta: i32,
    },
    /// Fused `LoadLocal offset I32; ConstI ±k; AddI/SubI; StoreLocal
    /// offset I32` — the `i = i + k` counter bump. No stack effect.
    /// Width 4. Cost: 4 × `arith`.
    IncLocalI {
        /// The counter slot's frame offset.
        offset: u32,
        /// Signed increment (`SubI k` folds to `delta = -k`).
        delta: i32,
    },
    /// Fused `CmpI op; JumpIfFalse target`. `i32 i32 →`. Width 2.
    /// Cost: 2 × `arith` + `branch`.
    CmpIBr {
        /// The comparison.
        op: Cmp,
        /// Jump target when the comparison is false.
        target: u32,
    },
    /// Fused `CmpF op; JumpIfFalse target`. `f32 f32 →`. Width 2.
    /// Cost: 2 × `arith` + `branch`.
    CmpFBr {
        /// The comparison.
        op: Cmp,
        /// Jump target when the comparison is false.
        target: u32,
    },
    /// Fused `LoadLocal offset I32; ConstI imm; CmpI op; JumpIfFalse
    /// target` — the `while i < N` loop header. No stack effect.
    /// Width 4. Cost: 4 × `arith` + `branch`.
    CmpLocalImmBr {
        /// The loop counter's frame offset.
        offset: u32,
        /// The constant compared against.
        imm: i32,
        /// The comparison.
        op: Cmp,
        /// Jump target when the comparison is false.
        target: u32,
    },
    /// Fused `AddrOfGlobal offset; LoadMem ty penalty` — a global
    /// scalar read. `→ value`. Width 2. Cost: 2 × `arith` + `penalty`
    /// + the memory path of the globals block (see [`Instr::LoadMem`]).
    LoadGlobalMem {
        /// Byte offset within the globals block.
        offset: u32,
        /// Scalar type loaded.
        ty: ValType,
        /// Extra cycles, as on [`Instr::LoadMem`].
        penalty: u32,
    },
    /// Fused `LoadLocal offset F32; AddF/SubF/MulF/DivF; StoreMem F32
    /// penalty` — the `*ptr = acc ⊕ local` write-back that closes a
    /// field update. `ptr f32 →`. Width 3. Cost: 3 × `arith` +
    /// `penalty` + the store's memory path (see [`Instr::StoreMem`]).
    LoadLocalOpFStoreMem {
        /// Right operand's frame offset.
        offset: u32,
        /// The fused operator.
        op: ArithF,
        /// Extra cycles, as on [`Instr::StoreMem`].
        penalty: u32,
    },
    /// Fused `LoadLocal offset Ptr(tag); PtrAddConst delta; LoadMem ty
    /// penalty` — the `obj.field` read. `→ value`. Width 3. Cost:
    /// 3 × `arith` + `penalty` + the memory path of the loaded
    /// pointer's space (see [`Instr::LoadMem`]).
    LoadLocalPtrAddMem {
        /// Pointer slot's frame offset.
        offset: u32,
        /// The pointer's space tag.
        tag: SpaceTag,
        /// Constant byte offset added to the loaded pointer.
        delta: i32,
        /// Scalar type loaded.
        ty: ValType,
        /// Extra cycles, as on [`Instr::LoadMem`].
        penalty: u32,
    },
}

impl Instr {
    /// How many *original* instructions this opcode stands for: 1 for
    /// ordinary opcodes, the fused run length for superinstructions.
    /// The interpreter advances `pc` and the retired-instruction
    /// counter by this width, so instruction counts are identical with
    /// fusion on or off.
    pub fn width(self) -> u32 {
        match self {
            Instr::LoadLocal2 { .. }
            | Instr::LoadLocalOpI { .. }
            | Instr::LoadLocalOpF { .. }
            | Instr::LoadLocalPtrAdd { .. }
            | Instr::LoadGlobalMem { .. }
            | Instr::CmpIBr { .. }
            | Instr::CmpFBr { .. } => 2,
            Instr::LoadLocal2OpI { .. }
            | Instr::LoadLocal2OpF { .. }
            | Instr::LoadLocalPtrAddMem { .. }
            | Instr::LoadLocalOpFStoreMem { .. } => 3,
            Instr::IncLocalI { .. } | Instr::CmpLocalImmBr { .. } => 4,
            _ => 1,
        }
    }

    /// Whether this is a fused superinstruction (width > 1).
    pub fn is_fused(self) -> bool {
        self.width() > 1
    }
}

/// A compiled function (or function duplicate, or offload block).
#[derive(Clone, Debug)]
pub struct FuncBody {
    /// Diagnostic name, e.g. `update@Enemy[self:outer]`.
    pub name: String,
    /// Parameter types, in call order (receiver first for methods).
    pub params: Vec<ValType>,
    /// Byte offsets of the parameter slots in the frame.
    pub param_offsets: Vec<u32>,
    /// Total frame size in bytes.
    pub frame_size: u32,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// The code.
    pub code: Vec<Instr>,
}

impl fmt::Display for FuncBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {} (frame {} bytes):", self.name, self.frame_size)?;
        let mut skip_until = 0usize;
        let mut head = 0usize;
        for (i, instr) in self.code.iter().enumerate() {
            if i < skip_until {
                // Dead padding inside a fused window: never executed,
                // kept only so jump targets stay valid.
                writeln!(f, "  {i:4}:   · (fused into {head})")?;
                continue;
            }
            writeln!(f, "  {i:4}: {instr:?}")?;
            head = i;
            skip_until = i + instr.width() as usize;
        }
        Ok(())
    }
}

/// A class as the VM sees it: name + vtable of host implementations.
#[derive(Clone, Debug)]
pub struct VmClass {
    /// Class name (diagnostics).
    pub name: String,
    /// slot → host-compiled [`FuncId`].
    pub vtable: Vec<FuncId>,
}

/// A dispatch domain as the VM sees it (paper Figure 3).
#[derive(Clone, Debug, Default)]
pub struct VmDomain {
    /// Outer domain: host function ids known to this offload.
    pub outer: Vec<FuncId>,
    /// Inner domain: per outer entry, `(duplicate id, accel FuncId)`.
    pub inner: Vec<Vec<(u16, FuncId)>>,
}

impl VmDomain {
    /// Adds a duplicate for `host_fn`.
    pub fn add(&mut self, host_fn: FuncId, dup: u16, accel_fn: FuncId) {
        if let Some(i) = self.outer.iter().position(|&f| f == host_fn) {
            if !self.inner[i].iter().any(|&(d, _)| d == dup) {
                self.inner[i].push((dup, accel_fn));
            }
        } else {
            self.outer.push(host_fn);
            self.inner.push(vec![(dup, accel_fn)]);
        }
    }

    /// Two-stage lookup; returns `(accel fn, outer probes, inner probes)`.
    pub fn lookup(&self, host_fn: FuncId, dup: u16) -> Option<(FuncId, u32, u32)> {
        for (i, &entry) in self.outer.iter().enumerate() {
            if entry == host_fn {
                for (j, &(d, accel_fn)) in self.inner[i].iter().enumerate() {
                    if d == dup {
                        return Some((accel_fn, i as u32 + 1, j as u32 + 1));
                    }
                }
                return None;
            }
        }
        None
    }

    /// Annotation count (outer-domain size).
    pub fn len(&self) -> usize {
        self.outer.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.outer.is_empty()
    }
}

/// One compiled access-mode declaration of an offload block: the range
/// a `reads(...)`/`writes(...)`/`updates(...)` clause resolved to,
/// expressed as an offset into the global segment (the VM adds its
/// `globals_base` at launch). The table for a block shares the block's
/// [`DomainId`] index.
#[derive(Clone, Copy, Debug)]
pub struct ModeRange {
    /// Byte offset of the named global within the global segment.
    pub offset: u32,
    /// Size of the global in bytes.
    pub len: u32,
    /// The declared access mode.
    pub mode: memspace::AccessMode,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_type_sizes() {
        assert_eq!(ValType::I32.size(), 4);
        assert_eq!(ValType::Char.size(), 1);
        assert_eq!(ValType::Bool.size(), 1);
        assert_eq!(ValType::Ptr(SpaceTag::Host).size(), 4);
    }

    #[test]
    fn domain_add_and_lookup() {
        let mut d = VmDomain::default();
        d.add(FuncId(10), 0, FuncId(100));
        d.add(FuncId(10), 1, FuncId(101));
        d.add(FuncId(20), 1, FuncId(200));
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup(FuncId(10), 1), Some((FuncId(101), 1, 2)));
        assert_eq!(d.lookup(FuncId(20), 1), Some((FuncId(200), 2, 1)));
        assert_eq!(d.lookup(FuncId(20), 0), None, "duplicate not compiled");
        assert_eq!(d.lookup(FuncId(30), 0), None, "not annotated");
    }

    #[test]
    fn domain_deduplicates() {
        let mut d = VmDomain::default();
        d.add(FuncId(1), 0, FuncId(2));
        d.add(FuncId(1), 0, FuncId(2));
        assert_eq!(d.len(), 1);
        assert_eq!(d.inner[0].len(), 1);
    }

    #[test]
    fn func_body_display_lists_instructions() {
        let body = FuncBody {
            name: "main".into(),
            params: vec![],
            param_offsets: vec![],
            frame_size: 8,
            returns_value: true,
            code: vec![Instr::ConstI(42), Instr::Ret { has_value: true }],
        };
        let text = body.to_string();
        assert!(text.contains("main"));
        assert!(text.contains("ConstI(42)"));
    }

    #[test]
    fn widths_cover_all_superinstructions() {
        assert_eq!(Instr::AddI.width(), 1);
        assert!(!Instr::AddI.is_fused());
        assert_eq!(
            Instr::LoadLocal2 {
                off1: 0,
                ty1: ValType::I32,
                off2: 4,
                ty2: ValType::I32
            }
            .width(),
            2
        );
        assert_eq!(
            Instr::LoadLocal2OpI {
                a: 0,
                b: 4,
                op: ArithI::Add
            }
            .width(),
            3
        );
        assert_eq!(
            Instr::IncLocalI {
                offset: 0,
                delta: 1
            }
            .width(),
            4
        );
        assert_eq!(
            Instr::CmpLocalImmBr {
                offset: 0,
                imm: 10,
                op: Cmp::Lt,
                target: 2
            }
            .width(),
            4
        );
        assert!(Instr::CmpIBr {
            op: Cmp::Eq,
            target: 0
        }
        .is_fused());
    }

    #[test]
    fn display_marks_fused_padding() {
        let body = FuncBody {
            name: "f".into(),
            params: vec![],
            param_offsets: vec![],
            frame_size: 16,
            returns_value: false,
            code: vec![
                Instr::IncLocalI {
                    offset: 0,
                    delta: 1,
                },
                Instr::LoadLocal {
                    offset: 0,
                    ty: ValType::I32,
                },
                Instr::ConstI(1),
                Instr::AddI,
                Instr::Ret { has_value: false },
            ],
        };
        let text = body.to_string();
        assert!(text.contains("IncLocalI"));
        assert!(text.contains("· (fused into 0)"), "{text}");
        assert!(text.contains("Ret"));
    }
}
