//! The bytecode virtual machine.
//!
//! Executes a compiled [`Program`] on a [`simcell::Machine`]: host code
//! runs against the host core's clock and memory path; `offload` blocks
//! run on accelerator 0 with local-store frames, and their accesses to
//! outer (host) data either pay a synchronous DMA round trip each
//! ([`OffloadCachePolicy::Naive`]) or go "through a software cache"
//! ([`OffloadCachePolicy::Cached`]) exactly as paper §3 describes.
//!
//! # Cost accounting
//!
//! Every instruction charges one `arith` cycle for decode/execute, plus:
//! jumps and calls a `branch`; pointer indexing an extra `arith`;
//! memory instructions the cost of the space they touch (accesses
//! falling inside the *current frame* model register/L1-resident locals
//! and charge nothing extra); word-addressing penalties from the
//! compiler (paper §5); virtual calls the header read plus `vcall` plus
//! — on the accelerator — the Figure 3 domain search costs.
//!
//! # Hot-path discipline
//!
//! The interpreter loop is allocation-free in steady state: function and
//! method names are interned as [`FuncId`]s at compile time, call
//! arguments move via slices of the value stack (never through temporary
//! `Vec`s), `CopyMem` reuses one scratch buffer, and asynchronous
//! offload handles live in a flat slot vector rather than a hash map.
//! `String`s only materialise on the cold error paths that terminate
//! execution (where the id is resolved back to its interned name).

use memspace::{Addr, SpaceId};
use simcell::{AccelCtx, CostModel, Machine, SimError};
use softcache::CacheConfig;

use crate::bytecode::{Cmp, DomainId, FuncId, Instr, SpaceTag, ValType};
use crate::compile::Program;

/// Bytes reserved for the host call stack.
const HOST_STACK: u32 = 256 * 1024;
/// Bytes reserved for the accelerator call stack inside an offload.
const ACCEL_STACK: u32 = 48 * 1024;

/// How offloaded code reaches outer (host) memory.
#[derive(Clone, Copy, Debug, Default)]
pub enum OffloadCachePolicy {
    /// Every outer access is a synchronous DMA round trip.
    #[default]
    Naive,
    /// Outer accesses go through a software cache of this geometry,
    /// flushed when the offload block ends.
    Cached(CacheConfig),
}

/// Errors raised during execution.
#[derive(Clone, Debug)]
pub enum VmError {
    /// Integer division or modulo by zero.
    DivideByZero {
        /// Function name.
        func: String,
    },
    /// The paper's informative dispatch-domain miss (Figure 3).
    DomainMiss {
        /// The host function that was dispatched.
        method: String,
        /// The required memory-space signature.
        dup: u16,
        /// Outer-domain entries searched.
        searched: usize,
    },
    /// Call stack exhausted.
    StackOverflow,
    /// The configured instruction budget ran out (probable infinite
    /// loop).
    OutOfFuel,
    /// `join` on a handle with no offload in flight (joined twice, or
    /// the offload statement never executed on this path).
    InvalidJoin {
        /// The handle slot.
        slot: u16,
    },
    /// A function with a non-void return type fell off its end.
    MissingReturn {
        /// Function name.
        func: String,
    },
    /// Underlying simulator failure (bounds, allocation, transfer…).
    Sim(SimError),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::DivideByZero { func } => write!(f, "division by zero in `{func}`"),
            VmError::DomainMiss {
                method,
                dup,
                searched,
            } => write!(
                f,
                "dispatch-domain miss: `{method}` (memory-space signature {dup:#b}) is not \
                 pre-compiled for local dispatch (searched {searched} domain entries); add the \
                 method to the offload's domain(...) annotation"
            ),
            VmError::StackOverflow => write!(f, "simulated call stack overflow"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted (infinite loop?)"),
            VmError::InvalidJoin { slot } => write!(
                f,
                "join on offload handle #{slot} which has no offload in flight (already joined, \
                 or the offload never ran on this path)"
            ),
            VmError::MissingReturn { func } => {
                write!(f, "`{func}` ended without returning a value")
            }
            VmError::Sim(err) => write!(f, "simulator error: {err}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<SimError> for VmError {
    fn from(err: SimError) -> VmError {
        VmError::Sim(err)
    }
}

/// A runtime scalar value.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Value {
    I(i32),
    F(f32),
    B(bool),
    P(Addr),
}

impl Value {
    fn as_i(self) -> i32 {
        match self {
            Value::I(v) => v,
            other => unreachable!("typechecked program pushed {other:?} where int expected"),
        }
    }

    fn as_f(self) -> f32 {
        match self {
            Value::F(v) => v,
            other => unreachable!("typechecked program pushed {other:?} where float expected"),
        }
    }

    fn as_b(self) -> bool {
        match self {
            Value::B(v) => v,
            other => unreachable!("typechecked program pushed {other:?} where bool expected"),
        }
    }

    fn as_p(self) -> Addr {
        match self {
            Value::P(v) => v,
            other => unreachable!("typechecked program pushed {other:?} where pointer expected"),
        }
    }
}

/// The execution environment a piece of code runs in (host core or an
/// accelerator inside an offload block).
trait Env {
    fn space(&self) -> SpaceId;
    fn cost(&self) -> CostModel;
    fn compute(&mut self, cycles: u64);
    /// Reads bytes; `in_frame` marks current-frame (register-modelled)
    /// accesses that charge nothing extra.
    fn read(&mut self, addr: Addr, out: &mut [u8], in_frame: bool) -> Result<(), VmError>;
    fn write(&mut self, addr: Addr, data: &[u8], in_frame: bool) -> Result<(), VmError>;
    /// Arena allocation in this environment's current space.
    fn alloc(&mut self, size: u32, align: u32) -> Result<Addr, VmError>;
    /// Runs an offload block (host only; the compiler rejects nesting).
    /// `args` holds the block's by-value captures.
    fn exec_offload(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        args: &[Value],
    ) -> Result<(), VmError>;
    /// Launches an asynchronous offload under a handle slot (host only).
    fn exec_offload_async(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        slot: u16,
        args: &[Value],
    ) -> Result<(), VmError>;
    /// Joins the offload registered under `slot` (host only).
    fn exec_join(&mut self, slot: u16) -> Result<(), VmError>;
}

struct HostEnv<'a> {
    machine: &'a mut Machine,
    /// In-flight asynchronous offloads, indexed directly by handle slot.
    /// Handle slots are small dense compiler-assigned integers, so a flat
    /// slot vector replaces the former `HashMap<u16, _>`: no hashing on
    /// the dispatch path, and the vector's capacity is reused across
    /// launch/join cycles.
    pending: Vec<Option<simcell::OffloadHandle<Result<(), VmError>>>>,
    /// Round-robin accelerator assignment for asynchronous offloads.
    next_accel: u16,
}

impl<'a> HostEnv<'a> {
    fn new(machine: &'a mut Machine) -> HostEnv<'a> {
        HostEnv {
            machine,
            pending: Vec::new(),
            next_accel: 0,
        }
    }

    /// Joins every still-pending offload (end of `main`).
    fn drain(&mut self) -> Result<(), VmError> {
        for slot in 0..self.pending.len() {
            if self.pending[slot].is_some() {
                self.exec_join(slot as u16)?;
            }
        }
        Ok(())
    }
}

impl Env for HostEnv<'_> {
    fn space(&self) -> SpaceId {
        SpaceId::MAIN
    }

    fn cost(&self) -> CostModel {
        *self.machine.cost()
    }

    fn compute(&mut self, cycles: u64) {
        self.machine.host_compute(cycles);
    }

    fn read(&mut self, addr: Addr, out: &mut [u8], in_frame: bool) -> Result<(), VmError> {
        if in_frame {
            self.machine
                .main()
                .read_into(addr, out)
                .map_err(SimError::from)?;
            Ok(())
        } else {
            Ok(self.machine.host_read_bytes(addr, out)?)
        }
    }

    fn write(&mut self, addr: Addr, data: &[u8], in_frame: bool) -> Result<(), VmError> {
        if in_frame {
            self.machine
                .main_mut()
                .write_bytes(addr, data)
                .map_err(SimError::from)?;
            Ok(())
        } else {
            Ok(self.machine.host_write_bytes(addr, data)?)
        }
    }

    fn alloc(&mut self, size: u32, align: u32) -> Result<Addr, VmError> {
        Ok(self.machine.alloc_main(size, align)?)
    }

    fn exec_offload(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        args: &[Value],
    ) -> Result<(), VmError> {
        let policy = vm.cache_policy;
        self.machine
            .offload(0)
            .run(|ctx| vm.run_on_accel(ctx, func, domain, policy, args))??;
        Ok(())
    }

    fn exec_offload_async(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        slot: u16,
        args: &[Value],
    ) -> Result<(), VmError> {
        let policy = vm.cache_policy;
        // Asynchronous offloads round-robin over the accelerators, so
        // several language-level handles genuinely overlap.
        let accel = self.next_accel;
        self.next_accel = (self.next_accel + 1) % self.machine.accel_count();
        let handle = self
            .machine
            .offload(accel)
            .spawn(|ctx| vm.run_on_accel(ctx, func, domain, policy, args))?;
        if usize::from(slot) >= self.pending.len() {
            self.pending.resize_with(usize::from(slot) + 1, || None);
        }
        if let Some(stale) = self.pending[usize::from(slot)].replace(handle) {
            // Rebinding a live handle implicitly joins the old offload
            // (matching scoped handle semantics).
            self.machine.join(stale)?;
        }
        Ok(())
    }

    fn exec_join(&mut self, slot: u16) -> Result<(), VmError> {
        let handle = self
            .pending
            .get_mut(usize::from(slot))
            .and_then(Option::take)
            .ok_or(VmError::InvalidJoin { slot })?;
        self.machine.join(handle)
    }
}

struct AccelEnv<'a, 'm> {
    ctx: &'a mut AccelCtx<'m>,
    cache: Option<softcache::SetAssociativeCache>,
}

impl Env for AccelEnv<'_, '_> {
    fn space(&self) -> SpaceId {
        self.ctx.local_space()
    }

    fn cost(&self) -> CostModel {
        *self.ctx.cost()
    }

    fn compute(&mut self, cycles: u64) {
        self.ctx.compute(cycles);
    }

    fn read(&mut self, addr: Addr, out: &mut [u8], in_frame: bool) -> Result<(), VmError> {
        if addr.space() == self.ctx.local_space() {
            if in_frame {
                // Register-modelled frame access: data only.
                return Ok(self.ctx.peek_local(addr, out)?);
            }
            return Ok(self.ctx.local_read_bytes(addr, out)?);
        }
        match &mut self.cache {
            Some(cache) => Ok(self.ctx.cached_read_bytes(cache, addr, out)?),
            None => Ok(self.ctx.outer_read_bytes(addr, out)?),
        }
    }

    fn write(&mut self, addr: Addr, data: &[u8], in_frame: bool) -> Result<(), VmError> {
        if addr.space() == self.ctx.local_space() {
            if in_frame {
                return Ok(self.ctx.poke_local(addr, data)?);
            }
            return Ok(self.ctx.local_write_bytes(addr, data)?);
        }
        match &mut self.cache {
            Some(cache) => Ok(self.ctx.cached_write_bytes(cache, addr, data)?),
            None => Ok(self.ctx.outer_write_bytes(addr, data)?),
        }
    }

    fn alloc(&mut self, size: u32, align: u32) -> Result<Addr, VmError> {
        Ok(self.ctx.alloc_local(size, align)?)
    }

    fn exec_offload(
        &mut self,
        _vm: &mut Vm<'_>,
        _func: FuncId,
        _domain: DomainId,
        _args: &[Value],
    ) -> Result<(), VmError> {
        unreachable!("the compiler rejects nested offload blocks")
    }

    fn exec_offload_async(
        &mut self,
        _vm: &mut Vm<'_>,
        _func: FuncId,
        _domain: DomainId,
        _slot: u16,
        _args: &[Value],
    ) -> Result<(), VmError> {
        unreachable!("the compiler rejects nested offload blocks")
    }

    fn exec_join(&mut self, _slot: u16) -> Result<(), VmError> {
        unreachable!("the compiler rejects `join` on the accelerator")
    }
}

struct Frame {
    func: FuncId,
    pc: usize,
    base: Addr,
    size: u32,
    domain: Option<DomainId>,
}

/// The virtual machine for one compiled program.
///
/// See the crate-level example.
pub struct Vm<'p> {
    program: &'p Program,
    globals_base: Addr,
    host_stack: Addr,
    output: Vec<String>,
    fuel: u64,
    cache_policy: OffloadCachePolicy,
    /// Instructions executed so far.
    executed: u64,
    /// Reusable byte buffer for `CopyMem`, so struct copies don't
    /// allocate per instruction.
    copy_scratch: Vec<u8>,
}

impl<'p> Vm<'p> {
    /// Prepares a VM: allocates the globals block (zeroed) and the host
    /// call stack in the machine's main memory.
    ///
    /// # Errors
    ///
    /// Fails if main memory cannot fit the program's static data.
    pub fn new(program: &'p Program, machine: &mut Machine) -> Result<Vm<'p>, SimError> {
        let globals_base = machine.alloc_main(program.globals_size, 16)?;
        let host_stack = machine.alloc_main(HOST_STACK, 16)?;
        Ok(Vm {
            program,
            globals_base,
            host_stack,
            output: Vec::new(),
            fuel: 500_000_000,
            cache_policy: OffloadCachePolicy::default(),
            executed: 0,
            copy_scratch: Vec::new(),
        })
    }

    /// Sets the outer-access policy for offload blocks.
    pub fn set_cache_policy(&mut self, policy: OffloadCachePolicy) {
        self.cache_policy = policy;
    }

    /// Sets the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Lines produced by `print_int`/`print_float`.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Instructions executed so far.
    pub fn instructions_executed(&self) -> u64 {
        self.executed
    }

    /// Runs `main` to completion and returns its exit value.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`].
    pub fn run(&mut self, machine: &mut Machine) -> Result<i32, VmError> {
        let main = self.program.main;
        let mut env = HostEnv::new(machine);
        let stack = self.host_stack;
        let result = self.exec(&mut env, main, &[], stack, HOST_STACK, None)?;
        env.drain()?;
        match result {
            Some(Value::I(code)) => Ok(code),
            other => unreachable!("main returns int per the compiler ({other:?})"),
        }
    }

    /// Entry point for offload bodies (called back from the host env).
    fn run_on_accel(
        &mut self,
        ctx: &mut AccelCtx<'_>,
        func: FuncId,
        domain: DomainId,
        policy: OffloadCachePolicy,
        args: &[Value],
    ) -> Result<(), VmError> {
        let stack = ctx.alloc_local(ACCEL_STACK, 16)?;
        let cache = match policy {
            OffloadCachePolicy::Naive => None,
            OffloadCachePolicy::Cached(config) => Some(ctx.new_cache(config)?),
        };
        let mut env = AccelEnv { ctx, cache };
        self.exec(&mut env, func, args, stack, ACCEL_STACK, Some(domain))?;
        if let Some(mut cache) = env.cache.take() {
            env.ctx.cache_flush(&mut cache)?;
        }
        Ok(())
    }

    fn load_value(
        &self,
        env: &mut impl Env,
        addr: Addr,
        ty: ValType,
        in_frame: bool,
    ) -> Result<Value, VmError> {
        let mut buf = [0u8; 4];
        let size = ty.size() as usize;
        env.read(addr, &mut buf[..size], in_frame)?;
        Ok(match ty {
            ValType::I32 => Value::I(i32::from_le_bytes(buf)),
            ValType::F32 => Value::F(f32::from_le_bytes(buf)),
            ValType::Bool => Value::B(buf[0] != 0),
            ValType::Char => Value::I(i32::from(buf[0])),
            ValType::Ptr(tag) => {
                let offset = u32::from_le_bytes(buf);
                let space = match tag {
                    SpaceTag::Host => SpaceId::MAIN,
                    SpaceTag::Local => env.space(),
                };
                Value::P(Addr::new(space, offset))
            }
        })
    }

    fn store_value(
        &self,
        env: &mut impl Env,
        addr: Addr,
        ty: ValType,
        value: Value,
        in_frame: bool,
    ) -> Result<(), VmError> {
        let mut buf = [0u8; 4];
        let size = ty.size() as usize;
        match ty {
            ValType::I32 => buf = value.as_i().to_le_bytes(),
            ValType::F32 => buf = value.as_f().to_le_bytes(),
            ValType::Bool => buf[0] = u8::from(value.as_b()),
            ValType::Char => buf[0] = (value.as_i() & 0xff) as u8,
            ValType::Ptr(_) => buf = value.as_p().offset().to_le_bytes(),
        }
        env.write(addr, &buf[..size], in_frame)?;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn exec(
        &mut self,
        env: &mut impl Env,
        entry: FuncId,
        args: &[Value],
        stack_base: Addr,
        stack_size: u32,
        domain: Option<DomainId>,
    ) -> Result<Option<Value>, VmError> {
        let cost = env.cost();
        let mut stack: Vec<Value> = Vec::with_capacity(64);
        let mut frames: Vec<Frame> = Vec::new();
        let mut stack_top = 0u32;

        // Pushes a frame for `func`, copying arguments from a `&[Value]`
        // slice. Call sites pass a view of the value stack's tail and
        // truncate afterwards, so calls move no values through temporary
        // heap storage.
        macro_rules! push_frame {
            ($func:expr, $args:expr, $domain:expr) => {{
                let body = self.program.func($func);
                let base = stack_base.offset_by(stack_top).map_err(SimError::from)?;
                if stack_top + body.frame_size > stack_size || frames.len() >= 512 {
                    return Err(VmError::StackOverflow);
                }
                stack_top += body.frame_size;
                env.compute(cost.branch);
                for (i, &value) in $args.iter().enumerate() {
                    let slot = base
                        .offset_by(body.param_offsets[i])
                        .map_err(SimError::from)?;
                    self.store_value(env, slot, body.params[i], value, true)?;
                    env.compute(cost.arith);
                }
                frames.push(Frame {
                    func: $func,
                    pc: 0,
                    base,
                    size: body.frame_size,
                    domain: $domain,
                });
            }};
        }

        push_frame!(entry, args, domain);

        loop {
            if self.executed >= self.fuel {
                return Err(VmError::OutOfFuel);
            }
            self.executed += 1;

            let frame = frames.last_mut().expect("at least the entry frame");
            let code = &self.program.func(frame.func).code;
            if frame.pc >= code.len() {
                unreachable!("compiler emits a trailing Ret");
            }
            let instr = code[frame.pc];
            frame.pc += 1;
            let frame_base = frame.base;
            let frame_size = frame.size;
            let frame_domain = frame.domain;
            let in_frame = |addr: Addr| {
                addr.space() == frame_base.space()
                    && addr.offset() >= frame_base.offset()
                    && addr.offset() < frame_base.offset() + frame_size
            };
            env.compute(cost.arith);

            match instr {
                Instr::ConstI(v) => stack.push(Value::I(v)),
                Instr::ConstF(v) => stack.push(Value::F(v)),
                Instr::ConstB(v) => stack.push(Value::B(v)),
                Instr::Drop => {
                    stack.pop();
                }
                Instr::LoadLocal { offset, ty } => {
                    let addr = frame_base.offset_by(offset).map_err(SimError::from)?;
                    let v = self.load_value(env, addr, ty, true)?;
                    stack.push(v);
                }
                Instr::StoreLocal { offset, ty } => {
                    let v = stack.pop().expect("value to store");
                    let addr = frame_base.offset_by(offset).map_err(SimError::from)?;
                    self.store_value(env, addr, ty, v, true)?;
                }
                Instr::AddrOfLocal { offset } => {
                    stack.push(Value::P(
                        frame_base.offset_by(offset).map_err(SimError::from)?,
                    ));
                }
                Instr::AddrOfGlobal { offset } => {
                    stack.push(Value::P(
                        self.globals_base
                            .offset_by(offset)
                            .map_err(SimError::from)?,
                    ));
                }
                Instr::LoadMem { ty, penalty } => {
                    let ptr = stack.pop().expect("pointer").as_p();
                    env.compute(u64::from(penalty));
                    let v = self.load_value(env, ptr, ty, in_frame(ptr))?;
                    stack.push(v);
                }
                Instr::StoreMem { ty, penalty } => {
                    let v = stack.pop().expect("value");
                    let ptr = stack.pop().expect("pointer").as_p();
                    env.compute(u64::from(penalty));
                    self.store_value(env, ptr, ty, v, in_frame(ptr))?;
                }
                Instr::CopyMem { size } => {
                    let src = stack.pop().expect("source").as_p();
                    let dst = stack.pop().expect("destination").as_p();
                    // Reuse one scratch buffer across CopyMem executions;
                    // take/restore keeps the buffer through error returns
                    // from the read/write pair.
                    let mut buf = std::mem::take(&mut self.copy_scratch);
                    buf.clear();
                    buf.resize(size as usize, 0);
                    let moved = env
                        .read(src, &mut buf, in_frame(src))
                        .and_then(|()| env.write(dst, &buf, in_frame(dst)));
                    self.copy_scratch = buf;
                    moved?;
                }
                Instr::PtrAddConst(delta) => {
                    let ptr = stack.pop().expect("pointer").as_p();
                    let offset = (ptr.offset() as i64 + i64::from(delta)) as u32;
                    stack.push(Value::P(Addr::new(ptr.space(), offset)));
                }
                Instr::PtrIndex { stride } => {
                    let index = stack.pop().expect("index").as_i();
                    let ptr = stack.pop().expect("pointer").as_p();
                    env.compute(cost.arith);
                    let offset =
                        (ptr.offset() as i64 + i64::from(index) * i64::from(stride)) as u32;
                    stack.push(Value::P(Addr::new(ptr.space(), offset)));
                }
                Instr::AddI | Instr::SubI | Instr::MulI | Instr::DivI | Instr::ModI => {
                    let b = stack.pop().expect("rhs").as_i();
                    let a = stack.pop().expect("lhs").as_i();
                    let v = match instr {
                        Instr::AddI => a.wrapping_add(b),
                        Instr::SubI => a.wrapping_sub(b),
                        Instr::MulI => a.wrapping_mul(b),
                        Instr::DivI | Instr::ModI => {
                            if b == 0 {
                                return Err(VmError::DivideByZero {
                                    func: self.program.func(frame.func).name.clone(),
                                });
                            }
                            if matches!(instr, Instr::DivI) {
                                a.wrapping_div(b)
                            } else {
                                a.wrapping_rem(b)
                            }
                        }
                        _ => unreachable!(),
                    };
                    stack.push(Value::I(v));
                }
                Instr::NegI => {
                    let a = stack.pop().expect("operand").as_i();
                    stack.push(Value::I(a.wrapping_neg()));
                }
                Instr::AddF | Instr::SubF | Instr::MulF | Instr::DivF => {
                    let b = stack.pop().expect("rhs").as_f();
                    let a = stack.pop().expect("lhs").as_f();
                    let v = match instr {
                        Instr::AddF => a + b,
                        Instr::SubF => a - b,
                        Instr::MulF => a * b,
                        Instr::DivF => a / b,
                        _ => unreachable!(),
                    };
                    stack.push(Value::F(v));
                }
                Instr::NegF => {
                    let a = stack.pop().expect("operand").as_f();
                    stack.push(Value::F(-a));
                }
                Instr::CmpI(op) => {
                    let b = stack.pop().expect("rhs");
                    let a = stack.pop().expect("lhs");
                    // Pointer comparisons arrive here too.
                    let (a, b) = match (a, b) {
                        (Value::P(pa), Value::P(pb)) => (pa.offset() as i32, pb.offset() as i32),
                        (a, b) => (a.as_i(), b.as_i()),
                    };
                    stack.push(Value::B(cmp_i(op, a, b)));
                }
                Instr::CmpF(op) => {
                    let b = stack.pop().expect("rhs").as_f();
                    let a = stack.pop().expect("lhs").as_f();
                    stack.push(Value::B(cmp_f(op, a, b)));
                }
                Instr::NotB => {
                    let a = stack.pop().expect("operand").as_b();
                    stack.push(Value::B(!a));
                }
                Instr::I2F => {
                    let a = stack.pop().expect("operand").as_i();
                    stack.push(Value::F(a as f32));
                }
                Instr::F2I => {
                    let a = stack.pop().expect("operand").as_f();
                    stack.push(Value::I(a as i32));
                }
                Instr::Jump(target) => {
                    env.compute(cost.branch);
                    frames.last_mut().expect("frame").pc = target as usize;
                }
                Instr::JumpIfFalse(target) => {
                    env.compute(cost.branch);
                    if !stack.pop().expect("condition").as_b() {
                        frames.last_mut().expect("frame").pc = target as usize;
                    }
                }
                Instr::JumpIfTrue(target) => {
                    env.compute(cost.branch);
                    if stack.pop().expect("condition").as_b() {
                        frames.last_mut().expect("frame").pc = target as usize;
                    }
                }
                Instr::Call { func } => {
                    let nparams = self.program.func(func).params.len();
                    let split = stack.len() - nparams;
                    push_frame!(func, stack[split..], frame_domain);
                    stack.truncate(split);
                }
                Instr::CallVirtual {
                    slot, nargs, dup, ..
                } => {
                    // The compiler pushes receiver first, then arguments,
                    // so `stack[split..]` is already the receiver-first
                    // parameter list push_frame! expects.
                    let split = stack.len() - usize::from(nargs) - 1;
                    let recv = stack[split];

                    // Read the class-id header (costed by space).
                    let recv_ptr = recv.as_p();
                    let mut header = [0u8; 4];
                    env.read(recv_ptr, &mut header, in_frame(recv_ptr))?;
                    let class = u32::from_le_bytes(header) as usize;
                    env.compute(cost.vcall);
                    let host_fn = self.program.classes[class].vtable[usize::from(slot)];

                    let target = if env.space().is_main() {
                        host_fn
                    } else {
                        let d = frame_domain.expect("accelerator code runs under a domain");
                        let vm_domain = &self.program.domains[d.0 as usize];
                        match vm_domain.lookup(host_fn, dup) {
                            Some((accel_fn, outer_probes, inner_probes)) => {
                                env.compute(
                                    cost.domain_lookup_base
                                        + cost.domain_outer_entry * u64::from(outer_probes)
                                        + cost.domain_inner_entry * u64::from(inner_probes),
                                );
                                accel_fn
                            }
                            None => {
                                env.compute(
                                    cost.domain_lookup_base
                                        + cost.domain_outer_entry * vm_domain.len() as u64,
                                );
                                return Err(VmError::DomainMiss {
                                    method: self.program.func(host_fn).name.clone(),
                                    dup,
                                    searched: vm_domain.len(),
                                });
                            }
                        }
                    };
                    push_frame!(target, stack[split..], frame_domain);
                    stack.truncate(split);
                }
                Instr::Ret { has_value } => {
                    env.compute(cost.branch);
                    let body = self.program.func(frames.last().expect("frame").func);
                    if body.returns_value && !has_value {
                        return Err(VmError::MissingReturn {
                            func: body.name.clone(),
                        });
                    }
                    let result = if has_value {
                        Some(stack.pop().expect("return value"))
                    } else {
                        None
                    };
                    let popped = frames.pop().expect("frame");
                    stack_top -= popped.size;
                    if frames.is_empty() {
                        return Ok(result);
                    }
                    if let Some(v) = result {
                        stack.push(v);
                    }
                }
                Instr::NewObject { class, size } => {
                    env.compute(cost.arith * 4);
                    let addr = env.alloc(size, 16)?;
                    self.store_value(env, addr, ValType::I32, Value::I(class as i32), false)?;
                    stack.push(Value::P(addr));
                }
                Instr::Offload { func, domain } => {
                    let nparams = self.program.func(func).params.len();
                    let split = stack.len() - nparams;
                    env.exec_offload(self, func, domain, &stack[split..])?;
                    stack.truncate(split);
                }
                Instr::OffloadAsync { func, domain, slot } => {
                    let nparams = self.program.func(func).params.len();
                    let split = stack.len() - nparams;
                    env.exec_offload_async(self, func, domain, slot, &stack[split..])?;
                    stack.truncate(split);
                }
                Instr::Join { slot } => {
                    env.exec_join(slot)?;
                }
                Instr::PrintI => {
                    let v = stack.pop().expect("value").as_i();
                    self.output.push(v.to_string());
                }
                Instr::PrintF => {
                    let v = stack.pop().expect("value").as_f();
                    self.output.push(format!("{v:.4}"));
                }
            }
        }
    }
}

fn cmp_i(op: Cmp, a: i32, b: i32) -> bool {
    match op {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }
}

fn cmp_f(op: Cmp, a: f32, b: f32) -> bool {
    match op {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }
}
