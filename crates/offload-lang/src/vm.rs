//! The bytecode virtual machine.
//!
//! Executes a compiled [`Program`] on a [`simcell::Machine`]: host code
//! runs against the host core's clock and memory path; `offload` blocks
//! run on accelerator 0 with local-store frames, and their accesses to
//! outer (host) data either pay a synchronous DMA round trip each
//! ([`OffloadCachePolicy::Naive`]) or go "through a software cache"
//! ([`OffloadCachePolicy::Cached`]) exactly as paper §3 describes.
//!
//! # Cost accounting
//!
//! Every instruction charges one `arith` cycle for decode/execute, plus:
//! jumps and calls a `branch`; pointer indexing an extra `arith`;
//! memory instructions the cost of the space they touch (accesses
//! falling inside the *current frame* model register/L1-resident locals
//! and charge nothing extra); word-addressing penalties from the
//! compiler (paper §5); virtual calls the header read plus `vcall` plus
//! — on the accelerator — the Figure 3 domain search costs. Fused
//! superinstructions charge exactly what their unfused expansion
//! charges (see [`crate::peephole`]), so simulated time is independent
//! of the fusion pass.
//!
//! # Hot-path discipline
//!
//! See `docs/VM.md` for the full architecture notes. In short, the
//! interpreter loop is allocation-free and unboxed in steady state:
//!
//! - **Tagged machine-word values.** A runtime value is one `u64` with
//!   the type tag in the top two bits and the 32-bit payload in the low
//!   word (the New Mars noun trick). Tagging a small integer is a plain
//!   zero-extend and untagging is a truncation, so integer arithmetic
//!   operates on values immediately — no enum discriminant, no match,
//!   no unboxing.
//! - **Two-stack east/west frame arena.** The operand stack grows west
//!   (up) and two-word call-frame records grow east (down) inside one
//!   preallocated word array, so calls and returns never touch the Rust
//!   allocator. (Simulated frame *slots* still live in simulated stack
//!   memory — pointers into frames must stay meaningful.)
//! - **Cached frame registers.** The dispatch loop keeps the current
//!   function, program counter and frame base in locals, spilling them
//!   to the frame record only around calls.
//! - **Superinstruction handlers.** Fused opcodes retire whole
//!   load/load/arith or compare-branch runs in one dispatch.
//!
//! Call arguments move through the arena (never through temporary
//! `Vec`s), `CopyMem` reuses one scratch buffer, and asynchronous
//! offload handles live in a flat slot vector rather than a hash map.
//! `String`s only materialise on the cold error paths that terminate
//! execution.

use memspace::{Addr, SpaceId};
use simcell::{AccelCtx, CostModel, Machine, ModeSet, SimError};
use softcache::CacheConfig;

use crate::bytecode::{ArithF, ArithI, Cmp, DomainId, FuncId, Instr, SpaceTag, ValType};
use crate::compile::Program;

/// Bytes reserved for the host call stack.
const HOST_STACK: u32 = 256 * 1024;
/// Bytes reserved for the accelerator call stack inside an offload.
const ACCEL_STACK: u32 = 48 * 1024;
/// Words in the east/west frame arena (operand stack west, frame
/// records east). 4 Ki words = 32 KiB: the simulated 512-frame
/// call-depth limit caps the east side at 1024 words, which leaves
/// 3 Ki words of operand stack — far beyond any compiler-emitted
/// expression depth (operands are scalar `Value`s; aggregates live in
/// simulated memory). Kept modest so `Vm::new` stays cheap (the arena
/// is zero-filled once per VM).
const ARENA_WORDS: usize = 1 << 12;

/// How offloaded code reaches outer (host) memory.
#[derive(Clone, Copy, Debug, Default)]
pub enum OffloadCachePolicy {
    /// Every outer access is a synchronous DMA round trip.
    #[default]
    Naive,
    /// Outer accesses go through a software cache of this geometry,
    /// flushed when the offload block ends.
    Cached(CacheConfig),
}

/// Errors raised during execution.
#[derive(Clone, Debug)]
pub enum VmError {
    /// Integer division or modulo by zero.
    DivideByZero {
        /// Function name.
        func: String,
    },
    /// The paper's informative dispatch-domain miss (Figure 3).
    DomainMiss {
        /// The host function that was dispatched.
        method: String,
        /// The required memory-space signature.
        dup: u16,
        /// Outer-domain entries searched.
        searched: usize,
    },
    /// Call stack exhausted.
    StackOverflow,
    /// The configured instruction budget ran out (probable infinite
    /// loop).
    OutOfFuel,
    /// `join` on a handle with no offload in flight (joined twice, or
    /// the offload statement never executed on this path).
    InvalidJoin {
        /// The handle slot.
        slot: u16,
    },
    /// A function with a non-void return type fell off its end.
    MissingReturn {
        /// Function name.
        func: String,
    },
    /// Underlying simulator failure (bounds, allocation, transfer…).
    Sim(SimError),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::DivideByZero { func } => write!(f, "division by zero in `{func}`"),
            VmError::DomainMiss {
                method,
                dup,
                searched,
            } => write!(
                f,
                "dispatch-domain miss: `{method}` (memory-space signature {dup:#b}) is not \
                 pre-compiled for local dispatch (searched {searched} domain entries); add the \
                 method to the offload's domain(...) annotation"
            ),
            VmError::StackOverflow => write!(f, "simulated call stack overflow"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted (infinite loop?)"),
            VmError::InvalidJoin { slot } => write!(
                f,
                "join on offload handle #{slot} which has no offload in flight (already joined, \
                 or the offload never ran on this path)"
            ),
            VmError::MissingReturn { func } => {
                write!(f, "`{func}` ended without returning a value")
            }
            VmError::Sim(err) => write!(f, "simulator error: {err}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<SimError> for VmError {
    fn from(err: SimError) -> VmError {
        VmError::Sim(err)
    }
}

/// A runtime scalar value: one tagged machine word.
///
/// Layout (the New Mars noun trick, adapted to our four scalar kinds):
///
/// ```text
///  63 62        48 47        32 31                         0
/// +-----+----------+------------+----------------------------+
/// | tag |  (zero)  | ptr space  |         payload            |
/// +-----+----------+------------+----------------------------+
///  tag 00 = int    payload = i32 bits (zero-extended)
///  tag 01 = float  payload = f32 bits
///  tag 10 = bool   payload = 0 / 1
///  tag 11 = ptr    payload = offset, bits 47..32 = SpaceId
/// ```
///
/// The int tag is **zero**, so tagging a small integer is a plain
/// zero-extend and untagging is a truncation — integer arithmetic never
/// masks or shifts. Programs are statically typed, so release-mode
/// accessors trust the tag; debug builds assert it.
#[derive(Clone, Copy)]
struct Value(u64);

impl Value {
    const TAG_SHIFT: u32 = 62;
    const TAG_INT: u64 = 0b00 << Value::TAG_SHIFT;
    const TAG_FLOAT: u64 = 0b01 << Value::TAG_SHIFT;
    const TAG_BOOL: u64 = 0b10 << Value::TAG_SHIFT;
    const TAG_PTR: u64 = 0b11 << Value::TAG_SHIFT;
    const TAG_MASK: u64 = 0b11 << Value::TAG_SHIFT;

    #[inline(always)]
    fn from_i(v: i32) -> Value {
        // TAG_INT is zero: the tag *is* the zero-extension.
        Value(u64::from(v as u32))
    }

    #[inline(always)]
    fn from_f(v: f32) -> Value {
        Value(Value::TAG_FLOAT | u64::from(v.to_bits()))
    }

    #[inline(always)]
    fn from_b(v: bool) -> Value {
        Value(Value::TAG_BOOL | u64::from(v))
    }

    #[inline(always)]
    fn from_p(addr: Addr) -> Value {
        Value(Value::TAG_PTR | (u64::from(addr.space().index()) << 32) | u64::from(addr.offset()))
    }

    #[inline(always)]
    fn tag(self) -> u64 {
        self.0 & Value::TAG_MASK
    }

    #[inline(always)]
    fn as_i(self) -> i32 {
        debug_assert_eq!(self.tag(), Value::TAG_INT, "int expected: {self:?}");
        self.0 as u32 as i32
    }

    #[inline(always)]
    fn as_f(self) -> f32 {
        debug_assert_eq!(self.tag(), Value::TAG_FLOAT, "float expected: {self:?}");
        f32::from_bits(self.0 as u32)
    }

    #[inline(always)]
    fn as_b(self) -> bool {
        debug_assert_eq!(self.tag(), Value::TAG_BOOL, "bool expected: {self:?}");
        self.0 & 1 != 0
    }

    #[inline(always)]
    fn as_p(self) -> Addr {
        debug_assert_eq!(self.tag(), Value::TAG_PTR, "pointer expected: {self:?}");
        Addr::new(SpaceId::from_index((self.0 >> 32) as u16), self.0 as u32)
    }

    /// The low 32 bits as a signed integer: the value of an int, or the
    /// offset of a pointer. `CmpI` compares either kind branchlessly.
    #[inline(always)]
    fn low_i32(self) -> i32 {
        debug_assert!(
            matches!(self.tag(), Value::TAG_INT | Value::TAG_PTR),
            "int or pointer expected: {self:?}"
        );
        self.0 as u32 as i32
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.tag() {
            Value::TAG_INT => write!(f, "I({})", self.0 as u32 as i32),
            Value::TAG_FLOAT => write!(f, "F({})", f32::from_bits(self.0 as u32)),
            Value::TAG_BOOL => write!(f, "B({})", self.0 & 1 != 0),
            _ => write!(
                f,
                "P(space {} + {:#x})",
                (self.0 >> 32) as u16,
                self.0 as u32
            ),
        }
    }
}

/// The two-stack frame arena: one preallocated word array where the
/// operand stack grows west (up from 0) and two-word frame records grow
/// east (down from the end), ares-style. Exhaustion (the stacks
/// meeting) surfaces as [`VmError::StackOverflow`]; in practice the
/// simulated 512-frame / stack-byte limits trip long before the arena
/// does.
struct FrameArena {
    words: Box<[u64]>,
    /// One past the top of the operand stack.
    west: usize,
    /// Index of the newest frame record (records sit at `east`,
    /// `east + 1`).
    east: usize,
}

impl FrameArena {
    fn new() -> FrameArena {
        FrameArena {
            words: vec![0u64; ARENA_WORDS].into_boxed_slice(),
            west: 0,
            east: ARENA_WORDS,
        }
    }

    #[inline(always)]
    fn push(&mut self, v: Value) -> Result<(), VmError> {
        if self.west == self.east {
            return Err(VmError::StackOverflow);
        }
        self.words[self.west] = v.0;
        self.west += 1;
        Ok(())
    }

    #[inline(always)]
    fn pop(&mut self) -> Value {
        self.west -= 1;
        Value(self.words[self.west])
    }

    /// Pushes a frame record for the *suspended* caller: its function,
    /// resume pc, frame-entry stack mark and frame base offset.
    #[inline(always)]
    fn push_record(
        &mut self,
        func: FuncId,
        pc: usize,
        entry_top: u32,
        base_offset: u32,
    ) -> Result<(), VmError> {
        if self.east < self.west + 2 {
            return Err(VmError::StackOverflow);
        }
        self.east -= 2;
        self.words[self.east] = u64::from(func.0) | ((pc as u64) << 32);
        self.words[self.east + 1] = u64::from(entry_top) | (u64::from(base_offset) << 32);
        Ok(())
    }

    /// Pops the newest frame record: `(func, pc, entry_top, base_offset)`.
    #[inline(always)]
    fn pop_record(&mut self) -> (FuncId, usize, u32, u32) {
        let w0 = self.words[self.east];
        let w1 = self.words[self.east + 1];
        self.east += 2;
        (
            FuncId(w0 as u32),
            (w0 >> 32) as usize,
            w1 as u32,
            (w1 >> 32) as u32,
        )
    }
}

/// The execution environment a piece of code runs in (host core or an
/// accelerator inside an offload block).
trait Env {
    fn space(&self) -> SpaceId;
    fn cost(&self) -> CostModel;
    fn compute(&mut self, cycles: u64);
    /// Reads bytes; `in_frame` marks current-frame (register-modelled)
    /// accesses that charge nothing extra.
    fn read(&mut self, addr: Addr, out: &mut [u8], in_frame: bool) -> Result<(), VmError>;
    fn write(&mut self, addr: Addr, data: &[u8], in_frame: bool) -> Result<(), VmError>;
    /// Arena allocation in this environment's current space.
    fn alloc(&mut self, size: u32, align: u32) -> Result<Addr, VmError>;
    /// Runs an offload block (host only; the compiler rejects nesting).
    /// `args` holds the block's by-value captures.
    fn exec_offload(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        args: &[Value],
    ) -> Result<(), VmError>;
    /// Launches an asynchronous offload under a handle slot (host only).
    fn exec_offload_async(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        slot: u16,
        args: &[Value],
    ) -> Result<(), VmError>;
    /// Joins the offload registered under `slot` (host only).
    fn exec_join(&mut self, slot: u16) -> Result<(), VmError>;
}

struct HostEnv<'a> {
    machine: &'a mut Machine,
    /// In-flight asynchronous offloads, indexed directly by handle slot.
    /// Handle slots are small dense compiler-assigned integers, so a flat
    /// slot vector replaces the former `HashMap<u16, _>`: no hashing on
    /// the dispatch path, and the vector's capacity is reused across
    /// launch/join cycles.
    pending: Vec<Option<simcell::OffloadHandle<Result<(), VmError>>>>,
    /// Round-robin accelerator assignment for asynchronous offloads.
    next_accel: u16,
}

impl<'a> HostEnv<'a> {
    fn new(machine: &'a mut Machine) -> HostEnv<'a> {
        HostEnv {
            machine,
            pending: Vec::new(),
            next_accel: 0,
        }
    }

    /// Joins every still-pending offload (end of `main`).
    fn drain(&mut self) -> Result<(), VmError> {
        for slot in 0..self.pending.len() {
            if self.pending[slot].is_some() {
                self.exec_join(slot as u16)?;
            }
        }
        Ok(())
    }
}

impl Env for HostEnv<'_> {
    #[inline(always)]
    fn space(&self) -> SpaceId {
        SpaceId::MAIN
    }

    fn cost(&self) -> CostModel {
        *self.machine.cost()
    }

    #[inline(always)]
    fn compute(&mut self, cycles: u64) {
        self.machine.host_compute(cycles);
    }

    #[inline(always)]
    fn read(&mut self, addr: Addr, out: &mut [u8], in_frame: bool) -> Result<(), VmError> {
        if in_frame {
            self.machine
                .main()
                .read_into(addr, out)
                .map_err(SimError::from)?;
            Ok(())
        } else {
            Ok(self.machine.host_read_bytes(addr, out)?)
        }
    }

    #[inline(always)]
    fn write(&mut self, addr: Addr, data: &[u8], in_frame: bool) -> Result<(), VmError> {
        if in_frame {
            self.machine
                .main_mut()
                .write_bytes(addr, data)
                .map_err(SimError::from)?;
            Ok(())
        } else {
            Ok(self.machine.host_write_bytes(addr, data)?)
        }
    }

    fn alloc(&mut self, size: u32, align: u32) -> Result<Addr, VmError> {
        Ok(self.machine.alloc_main(size, align)?)
    }

    fn exec_offload(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        args: &[Value],
    ) -> Result<(), VmError> {
        let policy = vm.cache_policy;
        let modes = vm.mode_set_for(domain)?;
        self.machine
            .offload(0)
            .with_modes(modes)
            .run(|ctx| vm.run_on_accel(ctx, func, domain, policy, args))??;
        Ok(())
    }

    fn exec_offload_async(
        &mut self,
        vm: &mut Vm<'_>,
        func: FuncId,
        domain: DomainId,
        slot: u16,
        args: &[Value],
    ) -> Result<(), VmError> {
        let policy = vm.cache_policy;
        let modes = vm.mode_set_for(domain)?;
        // Asynchronous offloads round-robin over the accelerators, so
        // several language-level handles genuinely overlap.
        let accel = self.next_accel;
        self.next_accel = (self.next_accel + 1) % self.machine.accel_count();
        let handle = self
            .machine
            .offload(accel)
            .with_modes(modes)
            .spawn(|ctx| vm.run_on_accel(ctx, func, domain, policy, args))?;
        if usize::from(slot) >= self.pending.len() {
            self.pending.resize_with(usize::from(slot) + 1, || None);
        }
        if let Some(stale) = self.pending[usize::from(slot)].replace(handle) {
            // Rebinding a live handle implicitly joins the old offload
            // (matching scoped handle semantics).
            self.machine.join(stale)?;
        }
        Ok(())
    }

    fn exec_join(&mut self, slot: u16) -> Result<(), VmError> {
        let handle = self
            .pending
            .get_mut(usize::from(slot))
            .and_then(Option::take)
            .ok_or(VmError::InvalidJoin { slot })?;
        self.machine.join(handle)
    }
}

struct AccelEnv<'a, 'm> {
    ctx: &'a mut AccelCtx<'m>,
    cache: Option<softcache::SetAssociativeCache>,
}

impl Env for AccelEnv<'_, '_> {
    #[inline(always)]
    fn space(&self) -> SpaceId {
        self.ctx.local_space()
    }

    fn cost(&self) -> CostModel {
        *self.ctx.cost()
    }

    #[inline(always)]
    fn compute(&mut self, cycles: u64) {
        self.ctx.compute(cycles);
    }

    #[inline(always)]
    fn read(&mut self, addr: Addr, out: &mut [u8], in_frame: bool) -> Result<(), VmError> {
        if addr.space() == self.ctx.local_space() {
            if in_frame {
                // Register-modelled frame access: data only.
                return Ok(self.ctx.peek_local(addr, out)?);
            }
            return Ok(self.ctx.local_read_bytes(addr, out)?);
        }
        match &mut self.cache {
            Some(cache) => Ok(self.ctx.cached_read_bytes(cache, addr, out)?),
            None => Ok(self.ctx.outer_read_bytes(addr, out)?),
        }
    }

    #[inline(always)]
    fn write(&mut self, addr: Addr, data: &[u8], in_frame: bool) -> Result<(), VmError> {
        if addr.space() == self.ctx.local_space() {
            if in_frame {
                return Ok(self.ctx.poke_local(addr, data)?);
            }
            return Ok(self.ctx.local_write_bytes(addr, data)?);
        }
        match &mut self.cache {
            Some(cache) => Ok(self.ctx.cached_write_bytes(cache, addr, data)?),
            None => Ok(self.ctx.outer_write_bytes(addr, data)?),
        }
    }

    fn alloc(&mut self, size: u32, align: u32) -> Result<Addr, VmError> {
        Ok(self.ctx.alloc_local(size, align)?)
    }

    fn exec_offload(
        &mut self,
        _vm: &mut Vm<'_>,
        _func: FuncId,
        _domain: DomainId,
        _args: &[Value],
    ) -> Result<(), VmError> {
        unreachable!("the compiler rejects nested offload blocks")
    }

    fn exec_offload_async(
        &mut self,
        _vm: &mut Vm<'_>,
        _func: FuncId,
        _domain: DomainId,
        _slot: u16,
        _args: &[Value],
    ) -> Result<(), VmError> {
        unreachable!("the compiler rejects nested offload blocks")
    }

    fn exec_join(&mut self, _slot: u16) -> Result<(), VmError> {
        unreachable!("the compiler rejects `join` on the accelerator")
    }
}

/// Whether `addr` falls inside the current frame (register-modelled:
/// the access is free).
#[inline(always)]
fn in_frame(base: Addr, frame_size: u32, addr: Addr) -> bool {
    addr.space() == base.space() && addr.offset().wrapping_sub(base.offset()) < frame_size
}

/// Loads one scalar from simulated memory as a tagged value. Fixed-size
/// reads per type keep the copies constant-length after inlining.
#[inline(always)]
fn load_value(
    env: &mut impl Env,
    addr: Addr,
    ty: ValType,
    in_frame: bool,
) -> Result<Value, VmError> {
    Ok(match ty {
        ValType::I32 => {
            let mut b = [0u8; 4];
            env.read(addr, &mut b, in_frame)?;
            Value::from_i(i32::from_le_bytes(b))
        }
        ValType::F32 => {
            let mut b = [0u8; 4];
            env.read(addr, &mut b, in_frame)?;
            Value::from_f(f32::from_le_bytes(b))
        }
        ValType::Bool => {
            let mut b = [0u8; 1];
            env.read(addr, &mut b, in_frame)?;
            Value::from_b(b[0] != 0)
        }
        ValType::Char => {
            let mut b = [0u8; 1];
            env.read(addr, &mut b, in_frame)?;
            Value::from_i(i32::from(b[0]))
        }
        ValType::Ptr(tag) => {
            let mut b = [0u8; 4];
            env.read(addr, &mut b, in_frame)?;
            let space = match tag {
                SpaceTag::Host => SpaceId::MAIN,
                SpaceTag::Local => env.space(),
            };
            Value::from_p(Addr::new(space, u32::from_le_bytes(b)))
        }
    })
}

/// Stores one scalar into simulated memory.
#[inline(always)]
fn store_value(
    env: &mut impl Env,
    addr: Addr,
    ty: ValType,
    value: Value,
    in_frame: bool,
) -> Result<(), VmError> {
    match ty {
        ValType::I32 => env.write(addr, &value.as_i().to_le_bytes(), in_frame),
        ValType::F32 => env.write(addr, &value.as_f().to_le_bytes(), in_frame),
        ValType::Bool => env.write(addr, &[u8::from(value.as_b())], in_frame),
        ValType::Char => env.write(addr, &[(value.as_i() & 0xff) as u8], in_frame),
        ValType::Ptr(_) => env.write(addr, &value.as_p().offset().to_le_bytes(), in_frame),
    }
}

#[inline(always)]
fn apply_i(op: ArithI, a: i32, b: i32) -> i32 {
    match op {
        ArithI::Add => a.wrapping_add(b),
        ArithI::Sub => a.wrapping_sub(b),
        ArithI::Mul => a.wrapping_mul(b),
    }
}

#[inline(always)]
fn apply_f(op: ArithF, a: f32, b: f32) -> f32 {
    match op {
        ArithF::Add => a + b,
        ArithF::Sub => a - b,
        ArithF::Mul => a * b,
        ArithF::Div => a / b,
    }
}

/// The virtual machine for one compiled program.
///
/// See the crate-level example.
pub struct Vm<'p> {
    program: &'p Program,
    globals_base: Addr,
    host_stack: Addr,
    output: Vec<String>,
    fuel: u64,
    cache_policy: OffloadCachePolicy,
    /// Instructions executed so far (fused superinstructions count as
    /// their full unfused width).
    executed: u64,
    /// The east/west operand-stack + frame-record arena, reused across
    /// `exec` activations (host and nested offload runs).
    arena: FrameArena,
    /// Reusable buffer for offload capture lists, so launching an
    /// offload doesn't allocate.
    arg_scratch: Vec<Value>,
    /// Reusable byte buffer for `CopyMem`, so struct copies don't
    /// allocate per instruction.
    copy_scratch: Vec<u8>,
}

impl<'p> Vm<'p> {
    /// Prepares a VM: allocates the globals block (zeroed) and the host
    /// call stack in the machine's main memory.
    ///
    /// # Errors
    ///
    /// Fails if main memory cannot fit the program's static data.
    pub fn new(program: &'p Program, machine: &mut Machine) -> Result<Vm<'p>, SimError> {
        let globals_base = machine.alloc_main(program.globals_size, 16)?;
        let host_stack = machine.alloc_main(HOST_STACK, 16)?;
        Ok(Vm {
            program,
            globals_base,
            host_stack,
            output: Vec::new(),
            fuel: 500_000_000,
            cache_policy: OffloadCachePolicy::default(),
            executed: 0,
            arena: FrameArena::new(),
            arg_scratch: Vec::new(),
            copy_scratch: Vec::new(),
        })
    }

    /// Sets the outer-access policy for offload blocks.
    pub fn set_cache_policy(&mut self, policy: OffloadCachePolicy) {
        self.cache_policy = policy;
    }

    /// Sets the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Lines produced by `print_int`/`print_float`.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Instructions executed so far. Fused superinstructions count as
    /// the full run of original instructions they stand for, so the
    /// count is identical with fusion on or off.
    pub fn instructions_executed(&self) -> u64 {
        self.executed
    }

    /// Runs `main` to completion and returns its exit value.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`].
    pub fn run(&mut self, machine: &mut Machine) -> Result<i32, VmError> {
        let main = self.program.main;
        let mut env = HostEnv::new(machine);
        let stack = self.host_stack;
        let result = self.exec(&mut env, main, &[], stack, HOST_STACK, None)?;
        env.drain()?;
        match result {
            Some(v) => Ok(v.as_i()),
            None => unreachable!("main returns int per the compiler"),
        }
    }

    /// The runtime [`ModeSet`] for an offload block: its compiled
    /// `reads`/`writes`/`updates` table resolved against this VM's
    /// global segment. Empty (the legacy permissive contract) when the
    /// block declared nothing.
    fn mode_set_for(&self, domain: DomainId) -> Result<ModeSet, VmError> {
        let mut modes = ModeSet::new();
        for range in &self.program.mode_tables[domain.0 as usize] {
            let addr = self
                .globals_base
                .offset_by(range.offset)
                .map_err(SimError::from)?;
            modes.declare(addr, range.len, range.mode);
        }
        Ok(modes)
    }

    /// Entry point for offload bodies (called back from the host env).
    fn run_on_accel(
        &mut self,
        ctx: &mut AccelCtx<'_>,
        func: FuncId,
        domain: DomainId,
        policy: OffloadCachePolicy,
        args: &[Value],
    ) -> Result<(), VmError> {
        let stack = ctx.alloc_local(ACCEL_STACK, 16)?;
        let cache = match policy {
            OffloadCachePolicy::Naive => None,
            OffloadCachePolicy::Cached(config) => Some(ctx.new_cache(config)?),
        };
        let mut env = AccelEnv { ctx, cache };
        self.exec(&mut env, func, args, stack, ACCEL_STACK, Some(domain))?;
        if let Some(mut cache) = env.cache.take() {
            env.ctx.cache_flush(&mut cache)?;
        }
        Ok(())
    }

    /// Runs `entry` in a fresh activation, preserving the arena marks
    /// around the nested dispatch (host `exec` stays suspended while an
    /// offload body runs its own activation on the same arena).
    fn exec(
        &mut self,
        env: &mut impl Env,
        entry: FuncId,
        args: &[Value],
        stack_base: Addr,
        stack_size: u32,
        domain: Option<DomainId>,
    ) -> Result<Option<Value>, VmError> {
        let west_mark = self.arena.west;
        let east_mark = self.arena.east;
        let mut seeded = Ok(());
        for &a in args {
            seeded = seeded.and_then(|()| self.arena.push(a));
        }
        let result = seeded
            .and_then(|()| self.dispatch(env, entry, args.len(), stack_base, stack_size, domain));
        // Unwind this activation's stacks even on error paths.
        self.arena.west = west_mark;
        self.arena.east = east_mark;
        result
    }

    /// The dispatch loop for one activation. The caller has pushed the
    /// `nargs` entry arguments onto the arena's operand stack.
    #[allow(clippy::too_many_lines)]
    fn dispatch(
        &mut self,
        env: &mut impl Env,
        entry: FuncId,
        nargs: usize,
        stack_base: Addr,
        stack_size: u32,
        domain: Option<DomainId>,
    ) -> Result<Option<Value>, VmError> {
        // `program` is a copy of the `&'p Program` field, independent of
        // the `&mut self` borrow — the loop can hold code references
        // while still lending `self` out to offload launches.
        let program: &'p Program = self.program;
        let cost = env.cost();
        let east_floor = self.arena.east;

        let mut stack_top: u32 = 0;

        // Enters a frame for `$callee`, whose arguments sit on top of
        // the operand stack. The caller's record (if any) must already
        // be on the east stack, so the record count equals the live
        // frame depth checked against the 512 limit. Evaluates to
        // `(body, base, entry_top)` for the new frame.
        macro_rules! enter {
            ($callee:expr, $nargs:expr) => {{
                let callee: FuncId = $callee;
                let argc: usize = $nargs;
                let body = program.func(callee);
                let new_base = stack_base.offset_by(stack_top).map_err(SimError::from)?;
                let depth = (east_floor - self.arena.east) / 2;
                if stack_top + body.frame_size > stack_size || depth >= 512 {
                    return Err(VmError::StackOverflow);
                }
                let frame_entry_top = stack_top;
                stack_top += body.frame_size;
                env.compute(cost.branch);
                let arg_split = self.arena.west - argc;
                for i in 0..argc {
                    let v = Value(self.arena.words[arg_split + i]);
                    let slot = new_base
                        .offset_by(body.param_offsets[i])
                        .map_err(SimError::from)?;
                    store_value(env, slot, body.params[i], v, true)?;
                    env.compute(cost.arith);
                }
                self.arena.west = arg_split;
                (body, new_base, frame_entry_top)
            }};
        }

        // Current-frame registers, spilled to a frame record only
        // around calls and restored on return.
        let mut func = entry;
        let (mut fbody, mut base, mut entry_top) = enter!(entry, nargs);
        let mut pc: usize = 0;

        loop {
            if self.executed >= self.fuel {
                return Err(VmError::OutOfFuel);
            }
            self.executed += 1;

            let instr = fbody.code[pc];
            pc += 1;
            env.compute(cost.arith);

            match instr {
                Instr::ConstI(v) => self.arena.push(Value::from_i(v))?,
                Instr::ConstF(v) => self.arena.push(Value::from_f(v))?,
                Instr::ConstB(v) => self.arena.push(Value::from_b(v))?,
                Instr::Drop => {
                    self.arena.pop();
                }
                Instr::LoadLocal { offset, ty } => {
                    let addr = base.offset_by(offset).map_err(SimError::from)?;
                    let v = load_value(env, addr, ty, true)?;
                    self.arena.push(v)?;
                }
                Instr::StoreLocal { offset, ty } => {
                    let v = self.arena.pop();
                    let addr = base.offset_by(offset).map_err(SimError::from)?;
                    store_value(env, addr, ty, v, true)?;
                }
                Instr::AddrOfLocal { offset } => {
                    self.arena.push(Value::from_p(
                        base.offset_by(offset).map_err(SimError::from)?,
                    ))?;
                }
                Instr::AddrOfGlobal { offset } => {
                    self.arena.push(Value::from_p(
                        self.globals_base
                            .offset_by(offset)
                            .map_err(SimError::from)?,
                    ))?;
                }
                Instr::LoadMem { ty, penalty } => {
                    let ptr = self.arena.pop().as_p();
                    env.compute(u64::from(penalty));
                    let v = load_value(env, ptr, ty, in_frame(base, fbody.frame_size, ptr))?;
                    self.arena.push(v)?;
                }
                Instr::StoreMem { ty, penalty } => {
                    let v = self.arena.pop();
                    let ptr = self.arena.pop().as_p();
                    env.compute(u64::from(penalty));
                    store_value(env, ptr, ty, v, in_frame(base, fbody.frame_size, ptr))?;
                }
                Instr::CopyMem { size } => {
                    let src = self.arena.pop().as_p();
                    let dst = self.arena.pop().as_p();
                    let fsize = fbody.frame_size;
                    // Reuse one scratch buffer across CopyMem executions;
                    // take/restore keeps the buffer through error returns
                    // from the read/write pair.
                    let mut buf = std::mem::take(&mut self.copy_scratch);
                    buf.clear();
                    buf.resize(size as usize, 0);
                    let moved = env
                        .read(src, &mut buf, in_frame(base, fsize, src))
                        .and_then(|()| env.write(dst, &buf, in_frame(base, fsize, dst)));
                    self.copy_scratch = buf;
                    moved?;
                }
                Instr::PtrAddConst(delta) => {
                    let ptr = self.arena.pop().as_p();
                    let offset = (ptr.offset() as i64 + i64::from(delta)) as u32;
                    self.arena
                        .push(Value::from_p(Addr::new(ptr.space(), offset)))?;
                }
                Instr::PtrIndex { stride } => {
                    let index = self.arena.pop().as_i();
                    let ptr = self.arena.pop().as_p();
                    env.compute(cost.arith);
                    let offset =
                        (ptr.offset() as i64 + i64::from(index) * i64::from(stride)) as u32;
                    self.arena
                        .push(Value::from_p(Addr::new(ptr.space(), offset)))?;
                }
                Instr::AddI => {
                    let b = self.arena.pop().as_i();
                    let a = self.arena.pop().as_i();
                    self.arena.push(Value::from_i(a.wrapping_add(b)))?;
                }
                Instr::SubI => {
                    let b = self.arena.pop().as_i();
                    let a = self.arena.pop().as_i();
                    self.arena.push(Value::from_i(a.wrapping_sub(b)))?;
                }
                Instr::MulI => {
                    let b = self.arena.pop().as_i();
                    let a = self.arena.pop().as_i();
                    self.arena.push(Value::from_i(a.wrapping_mul(b)))?;
                }
                Instr::DivI | Instr::ModI => {
                    let b = self.arena.pop().as_i();
                    let a = self.arena.pop().as_i();
                    if b == 0 {
                        return Err(VmError::DivideByZero {
                            func: fbody.name.clone(),
                        });
                    }
                    let v = if matches!(instr, Instr::DivI) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    self.arena.push(Value::from_i(v))?;
                }
                Instr::NegI => {
                    let a = self.arena.pop().as_i();
                    self.arena.push(Value::from_i(a.wrapping_neg()))?;
                }
                Instr::AddF | Instr::SubF | Instr::MulF | Instr::DivF => {
                    let b = self.arena.pop().as_f();
                    let a = self.arena.pop().as_f();
                    let v = match instr {
                        Instr::AddF => a + b,
                        Instr::SubF => a - b,
                        Instr::MulF => a * b,
                        Instr::DivF => a / b,
                        _ => unreachable!(),
                    };
                    self.arena.push(Value::from_f(v))?;
                }
                Instr::NegF => {
                    let a = self.arena.pop().as_f();
                    self.arena.push(Value::from_f(-a))?;
                }
                Instr::CmpI(op) => {
                    // Pointer comparisons arrive here too: ints and
                    // pointers both keep their comparable payload in the
                    // low 32 bits, so no tag dispatch is needed.
                    let b = self.arena.pop().low_i32();
                    let a = self.arena.pop().low_i32();
                    self.arena.push(Value::from_b(cmp_i(op, a, b)))?;
                }
                Instr::CmpF(op) => {
                    let b = self.arena.pop().as_f();
                    let a = self.arena.pop().as_f();
                    self.arena.push(Value::from_b(cmp_f(op, a, b)))?;
                }
                Instr::NotB => {
                    let a = self.arena.pop().as_b();
                    self.arena.push(Value::from_b(!a))?;
                }
                Instr::I2F => {
                    let a = self.arena.pop().as_i();
                    self.arena.push(Value::from_f(a as f32))?;
                }
                Instr::F2I => {
                    let a = self.arena.pop().as_f();
                    self.arena.push(Value::from_i(a as i32))?;
                }
                Instr::Jump(target) => {
                    env.compute(cost.branch);
                    pc = target as usize;
                }
                Instr::JumpIfFalse(target) => {
                    env.compute(cost.branch);
                    if !self.arena.pop().as_b() {
                        pc = target as usize;
                    }
                }
                Instr::JumpIfTrue(target) => {
                    env.compute(cost.branch);
                    if self.arena.pop().as_b() {
                        pc = target as usize;
                    }
                }
                Instr::Call { func: callee } => {
                    let nparams = program.func(callee).params.len();
                    self.arena.push_record(func, pc, entry_top, base.offset())?;
                    let (b, nb, et) = enter!(callee, nparams);
                    func = callee;
                    fbody = b;
                    base = nb;
                    entry_top = et;
                    pc = 0;
                }
                Instr::CallVirtual {
                    slot, nargs, dup, ..
                } => {
                    // The compiler pushes receiver first, then arguments,
                    // so the stack tail is already the receiver-first
                    // parameter list the frame-entry path expects.
                    let argc = usize::from(nargs) + 1;
                    let split = self.arena.west - argc;
                    let recv_ptr = Value(self.arena.words[split]).as_p();

                    // Read the class-id header (costed by space).
                    let mut header = [0u8; 4];
                    env.read(
                        recv_ptr,
                        &mut header,
                        in_frame(base, fbody.frame_size, recv_ptr),
                    )?;
                    let class = u32::from_le_bytes(header) as usize;
                    env.compute(cost.vcall);
                    let host_fn = program.classes[class].vtable[usize::from(slot)];

                    let target = if env.space().is_main() {
                        host_fn
                    } else {
                        let d = domain.expect("accelerator code runs under a domain");
                        let vm_domain = &program.domains[d.0 as usize];
                        match vm_domain.lookup(host_fn, dup) {
                            Some((accel_fn, outer_probes, inner_probes)) => {
                                env.compute(
                                    cost.domain_lookup_base
                                        + cost.domain_outer_entry * u64::from(outer_probes)
                                        + cost.domain_inner_entry * u64::from(inner_probes),
                                );
                                accel_fn
                            }
                            None => {
                                env.compute(
                                    cost.domain_lookup_base
                                        + cost.domain_outer_entry * vm_domain.len() as u64,
                                );
                                return Err(VmError::DomainMiss {
                                    method: program.func(host_fn).name.clone(),
                                    dup,
                                    searched: vm_domain.len(),
                                });
                            }
                        }
                    };
                    self.arena.push_record(func, pc, entry_top, base.offset())?;
                    let (b, nb, et) = enter!(target, argc);
                    func = target;
                    fbody = b;
                    base = nb;
                    entry_top = et;
                    pc = 0;
                }
                Instr::Ret { has_value } => {
                    env.compute(cost.branch);
                    if fbody.returns_value && !has_value {
                        return Err(VmError::MissingReturn {
                            func: fbody.name.clone(),
                        });
                    }
                    let result = if has_value {
                        Some(self.arena.pop())
                    } else {
                        None
                    };
                    stack_top = entry_top;
                    if self.arena.east == east_floor {
                        return Ok(result);
                    }
                    let (pfunc, ppc, pentry, pbase) = self.arena.pop_record();
                    func = pfunc;
                    fbody = program.func(func);
                    pc = ppc;
                    entry_top = pentry;
                    base = Addr::new(stack_base.space(), pbase);
                    if let Some(v) = result {
                        self.arena.push(v)?;
                    }
                }
                Instr::NewObject { class, size } => {
                    env.compute(cost.arith * 4);
                    let addr = env.alloc(size, 16)?;
                    store_value(env, addr, ValType::I32, Value::from_i(class as i32), false)?;
                    self.arena.push(Value::from_p(addr))?;
                }
                Instr::Offload {
                    func: ofunc,
                    domain: odomain,
                } => {
                    let nparams = program.func(ofunc).params.len();
                    let split = self.arena.west - nparams;
                    // Move the captures out through the reusable scratch
                    // list: `self` must be lent to the launch whole, so
                    // the arguments can't stay borrowed from the arena.
                    let mut captures = std::mem::take(&mut self.arg_scratch);
                    captures.clear();
                    captures.extend(
                        self.arena.words[split..self.arena.west]
                            .iter()
                            .map(|&w| Value(w)),
                    );
                    self.arena.west = split;
                    let launched = env.exec_offload(self, ofunc, odomain, &captures);
                    self.arg_scratch = captures;
                    launched?;
                }
                Instr::OffloadAsync {
                    func: ofunc,
                    domain: odomain,
                    slot,
                } => {
                    let nparams = program.func(ofunc).params.len();
                    let split = self.arena.west - nparams;
                    let mut captures = std::mem::take(&mut self.arg_scratch);
                    captures.clear();
                    captures.extend(
                        self.arena.words[split..self.arena.west]
                            .iter()
                            .map(|&w| Value(w)),
                    );
                    self.arena.west = split;
                    let launched = env.exec_offload_async(self, ofunc, odomain, slot, &captures);
                    self.arg_scratch = captures;
                    launched?;
                }
                Instr::Join { slot } => {
                    env.exec_join(slot)?;
                }
                Instr::PrintI => {
                    let v = self.arena.pop().as_i();
                    self.output.push(v.to_string());
                }
                Instr::PrintF => {
                    let v = self.arena.pop().as_f();
                    self.output.push(format!("{v:.4}"));
                }

                // ---- superinstructions -------------------------------
                // Each handler charges exactly what the unfused run
                // charges (the loop header already charged one `arith`
                // and bumped `executed` once) and advances `pc` past the
                // dead padding. Fused runs only touch the operand stack
                // and the current frame — except for a trailing
                // `LoadMem`, which runs after every interior cycle has
                // been charged — so batching their `compute` calls is
                // unobservable: no event, DMA or clock read can occur
                // mid-run.
                Instr::LoadLocal2 {
                    off1,
                    ty1,
                    off2,
                    ty2,
                } => {
                    self.executed += 1;
                    env.compute(cost.arith);
                    let a1 = base.offset_by(off1).map_err(SimError::from)?;
                    let v1 = load_value(env, a1, ty1, true)?;
                    self.arena.push(v1)?;
                    let a2 = base.offset_by(off2).map_err(SimError::from)?;
                    let v2 = load_value(env, a2, ty2, true)?;
                    self.arena.push(v2)?;
                    pc += 1;
                }
                Instr::LoadLocal2OpI { a, b, op } => {
                    self.executed += 2;
                    env.compute(cost.arith * 2);
                    let va = load_value(
                        env,
                        base.offset_by(a).map_err(SimError::from)?,
                        ValType::I32,
                        true,
                    )?
                    .as_i();
                    let vb = load_value(
                        env,
                        base.offset_by(b).map_err(SimError::from)?,
                        ValType::I32,
                        true,
                    )?
                    .as_i();
                    self.arena.push(Value::from_i(apply_i(op, va, vb)))?;
                    pc += 2;
                }
                Instr::LoadLocal2OpF { a, b, op } => {
                    self.executed += 2;
                    env.compute(cost.arith * 2);
                    let va = load_value(
                        env,
                        base.offset_by(a).map_err(SimError::from)?,
                        ValType::F32,
                        true,
                    )?
                    .as_f();
                    let vb = load_value(
                        env,
                        base.offset_by(b).map_err(SimError::from)?,
                        ValType::F32,
                        true,
                    )?
                    .as_f();
                    self.arena.push(Value::from_f(apply_f(op, va, vb)))?;
                    pc += 2;
                }
                Instr::LoadLocalOpI { offset, op } => {
                    self.executed += 1;
                    env.compute(cost.arith);
                    let a = self.arena.pop().as_i();
                    let b = load_value(
                        env,
                        base.offset_by(offset).map_err(SimError::from)?,
                        ValType::I32,
                        true,
                    )?
                    .as_i();
                    self.arena.push(Value::from_i(apply_i(op, a, b)))?;
                    pc += 1;
                }
                Instr::LoadLocalOpF { offset, op } => {
                    self.executed += 1;
                    env.compute(cost.arith);
                    let a = self.arena.pop().as_f();
                    let b = load_value(
                        env,
                        base.offset_by(offset).map_err(SimError::from)?,
                        ValType::F32,
                        true,
                    )?
                    .as_f();
                    self.arena.push(Value::from_f(apply_f(op, a, b)))?;
                    pc += 1;
                }
                Instr::LoadLocalPtrAdd { offset, tag, delta } => {
                    self.executed += 1;
                    env.compute(cost.arith);
                    let p = load_value(
                        env,
                        base.offset_by(offset).map_err(SimError::from)?,
                        ValType::Ptr(tag),
                        true,
                    )?
                    .as_p();
                    let off = (p.offset() as i64 + i64::from(delta)) as u32;
                    self.arena.push(Value::from_p(Addr::new(p.space(), off)))?;
                    pc += 1;
                }
                Instr::IncLocalI { offset, delta } => {
                    self.executed += 3;
                    env.compute(cost.arith * 3);
                    let addr = base.offset_by(offset).map_err(SimError::from)?;
                    let v = load_value(env, addr, ValType::I32, true)?.as_i();
                    store_value(
                        env,
                        addr,
                        ValType::I32,
                        Value::from_i(v.wrapping_add(delta)),
                        true,
                    )?;
                    pc += 3;
                }
                Instr::CmpIBr { op, target } => {
                    self.executed += 1;
                    env.compute(cost.arith + cost.branch);
                    let b = self.arena.pop().low_i32();
                    let a = self.arena.pop().low_i32();
                    if !cmp_i(op, a, b) {
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instr::CmpFBr { op, target } => {
                    self.executed += 1;
                    env.compute(cost.arith + cost.branch);
                    let b = self.arena.pop().as_f();
                    let a = self.arena.pop().as_f();
                    if !cmp_f(op, a, b) {
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instr::CmpLocalImmBr {
                    offset,
                    imm,
                    op,
                    target,
                } => {
                    self.executed += 3;
                    env.compute(cost.arith * 3 + cost.branch);
                    let v = load_value(
                        env,
                        base.offset_by(offset).map_err(SimError::from)?,
                        ValType::I32,
                        true,
                    )?
                    .as_i();
                    if !cmp_i(op, v, imm) {
                        pc = target as usize;
                    } else {
                        pc += 3;
                    }
                }
                Instr::LoadGlobalMem {
                    offset,
                    ty,
                    penalty,
                } => {
                    let ptr = self
                        .globals_base
                        .offset_by(offset)
                        .map_err(SimError::from)?;
                    self.executed += 1;
                    env.compute(cost.arith + u64::from(penalty));
                    let v = load_value(env, ptr, ty, in_frame(base, fbody.frame_size, ptr))?;
                    self.arena.push(v)?;
                    pc += 1;
                }
                Instr::LoadLocalOpFStoreMem {
                    offset,
                    op,
                    penalty,
                } => {
                    let b = load_value(
                        env,
                        base.offset_by(offset).map_err(SimError::from)?,
                        ValType::F32,
                        true,
                    )?
                    .as_f();
                    let a = self.arena.pop().as_f();
                    let v = Value::from_f(apply_f(op, a, b));
                    self.executed += 2;
                    env.compute(cost.arith * 2 + u64::from(penalty));
                    let ptr = self.arena.pop().as_p();
                    store_value(
                        env,
                        ptr,
                        ValType::F32,
                        v,
                        in_frame(base, fbody.frame_size, ptr),
                    )?;
                    pc += 2;
                }
                Instr::LoadLocalPtrAddMem {
                    offset,
                    tag,
                    delta,
                    ty,
                    penalty,
                } => {
                    let p = load_value(
                        env,
                        base.offset_by(offset).map_err(SimError::from)?,
                        ValType::Ptr(tag),
                        true,
                    )?
                    .as_p();
                    self.executed += 2;
                    env.compute(cost.arith * 2 + u64::from(penalty));
                    let off = (p.offset() as i64 + i64::from(delta)) as u32;
                    let ptr = Addr::new(p.space(), off);
                    let v = load_value(env, ptr, ty, in_frame(base, fbody.frame_size, ptr))?;
                    self.arena.push(v)?;
                    pc += 2;
                }
            }
        }
    }
}

#[inline(always)]
fn cmp_i(op: Cmp, a: i32, b: i32) -> bool {
    match op {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }
}

#[inline(always)]
fn cmp_f(op: Cmp, a: f32, b: f32) -> bool {
    match op {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_value_round_trips() {
        for v in [0i32, 1, -1, i32::MAX, i32::MIN, 123_456_789] {
            assert_eq!(Value::from_i(v).as_i(), v);
            assert_eq!(Value::from_i(v).low_i32(), v);
        }
        for v in [0.0f32, -0.0, 1.5, f32::MAX, f32::MIN_POSITIVE, -3.25] {
            assert_eq!(Value::from_f(v).as_f().to_bits(), v.to_bits());
        }
        let nan = Value::from_f(f32::NAN).as_f();
        assert!(nan.is_nan());
        assert!(Value::from_b(true).as_b());
        assert!(!Value::from_b(false).as_b());
        let p = Addr::new(SpaceId::local_store(3), 0xdead_beef);
        assert_eq!(Value::from_p(p).as_p(), p);
        assert_eq!(Value::from_p(p).low_i32(), 0xdead_beefu32 as i32);
    }

    #[test]
    fn value_tags_are_disjoint() {
        assert_eq!(Value::from_i(-1).tag(), Value::TAG_INT);
        assert_eq!(Value::from_f(-1.0).tag(), Value::TAG_FLOAT);
        assert_eq!(Value::from_b(true).tag(), Value::TAG_BOOL);
        assert_eq!(
            Value::from_p(Addr::new(SpaceId::MAIN, u32::MAX)).tag(),
            Value::TAG_PTR
        );
    }

    #[test]
    fn arena_two_stacks_meet_gracefully() {
        let mut arena = FrameArena::new();
        for i in 0..ARENA_WORDS {
            arena.push(Value::from_i(i as i32)).expect("fits");
        }
        assert!(matches!(
            arena.push(Value::from_i(0)),
            Err(VmError::StackOverflow)
        ));
        assert!(matches!(
            arena.push_record(FuncId(0), 0, 0, 0),
            Err(VmError::StackOverflow)
        ));
        for i in (0..ARENA_WORDS).rev() {
            assert_eq!(arena.pop().as_i(), i as i32);
        }
    }

    #[test]
    fn arena_records_round_trip() {
        let mut arena = FrameArena::new();
        arena.push_record(FuncId(7), 42, 160, 96).unwrap();
        arena.push_record(FuncId(9), 1, 0, 0).unwrap();
        assert_eq!(arena.pop_record(), (FuncId(9), 1, 0, 0));
        assert_eq!(arena.pop_record(), (FuncId(7), 42, 160, 96));
        assert_eq!(arena.east, ARENA_WORDS);
    }
}
