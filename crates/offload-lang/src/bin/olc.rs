//! `olc` — the Offload/Mini compiler driver.
//!
//! ```text
//! olc check  FILE [--word N] [--byte-emulate]      type-check only
//! olc run    FILE [options]                        compile and execute
//! olc dis    FILE [options]                        disassemble bytecode
//! olc stats  FILE [options]                        duplication/domain stats
//!
//! options:
//!   --word N         compile for an N-byte word-addressed target (paper §5)
//!   --byte-emulate   use byte-pointer emulation instead of the hybrid rules
//!   --cache          route offloaded outer accesses through a software cache
//!   --fuel N         instruction budget (default 500M)
//! ```
//!
//! Exit codes: 0 success (for `run`, the program's own exit value is
//! printed, not used as the process exit code), 1 compile error, 2
//! runtime error, 64 usage error.

use std::process::ExitCode;

use offload_lang::{compile, OffloadCachePolicy, Program, Target, Vm, WordStrategy};
use simcell::{Machine, MachineConfig};

struct Options {
    command: String,
    file: String,
    target: Target,
    cache: bool,
    fuel: Option<u64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: olc <check|run|dis|stats> FILE [--word N] [--byte-emulate] [--cache] [--fuel N]"
    );
    ExitCode::from(64)
}

fn parse_args() -> Result<Options, ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut target = Target::cell_like();
    let mut byte_emulate = false;
    let mut cache = false;
    let mut fuel = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--word" => {
                i += 1;
                let bytes: u8 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&b| b >= 2)
                    .ok_or_else(usage)?;
                target = Target::word_addressed(bytes);
            }
            "--byte-emulate" => byte_emulate = true,
            "--cache" => cache = true,
            "--fuel" => {
                i += 1;
                fuel = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            other if other.starts_with("--") => return Err(usage()),
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    if byte_emulate {
        target = target.with_strategy(WordStrategy::ByteEmulate);
    }
    if positional.len() != 2 {
        return Err(usage());
    }
    Ok(Options {
        command: positional[0].clone(),
        file: positional[1].clone(),
        target,
        cache,
        fuel,
    })
}

fn compile_file(options: &Options) -> Result<(String, Program), ExitCode> {
    let source = std::fs::read_to_string(&options.file).map_err(|e| {
        eprintln!("olc: cannot read {}: {e}", options.file);
        ExitCode::from(64)
    })?;
    match compile(&source, &options.target) {
        Ok(program) => Ok((source, program)),
        Err(err) => {
            eprintln!("{}: {}", options.file, err.render(&source));
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(code) => return code,
    };
    let (_, program) = match compile_file(&options) {
        Ok(compiled) => compiled,
        Err(code) => return code,
    };

    match options.command.as_str() {
        "check" => {
            println!(
                "{}: ok ({} function variants, {} offload block(s))",
                options.file, program.stats.functions_compiled, program.stats.offload_blocks
            );
            ExitCode::SUCCESS
        }
        "dis" => {
            print!("{}", program.disassemble());
            ExitCode::SUCCESS
        }
        "stats" => {
            println!("functions compiled: {}", program.stats.functions_compiled);
            println!("offload blocks:     {}", program.stats.offload_blocks);
            println!("domain sizes:       {:?}", program.stats.domain_sizes);
            let mut names: Vec<_> = program.stats.duplicates.iter().collect();
            names.sort();
            println!("memory-space duplicates:");
            for (name, count) in names {
                println!("  {name}: {count}");
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let mut machine = match Machine::new(MachineConfig::default()) {
                Ok(machine) => machine,
                Err(err) => {
                    eprintln!("olc: machine setup failed: {err}");
                    return ExitCode::from(2);
                }
            };
            let mut vm = match Vm::new(&program, &mut machine) {
                Ok(vm) => vm,
                Err(err) => {
                    eprintln!("olc: program load failed: {err}");
                    return ExitCode::from(2);
                }
            };
            if options.cache {
                vm.set_cache_policy(OffloadCachePolicy::Cached(
                    softcache::CacheConfig::direct_mapped_4k(),
                ));
            }
            if let Some(fuel) = options.fuel {
                vm.set_fuel(fuel);
            }
            match vm.run(&mut machine) {
                Ok(exit) => {
                    for line in vm.output() {
                        println!("{line}");
                    }
                    println!(
                        "[exit {exit}; {} host cycles; {} instructions]",
                        machine.host_now(),
                        vm.instructions_executed()
                    );
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("olc: runtime error: {err}");
                    ExitCode::from(2)
                }
            }
        }
        other => {
            eprintln!("olc: unknown command `{other}`");
            usage()
        }
    }
}
