//! Recursive-descent parser.

use crate::ast::*;
use crate::diag::{CompileError, ErrorKind};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a source file.
///
/// # Errors
///
/// Returns the first lexical or syntax error encountered.
pub fn parse(source: &str) -> Result<SourceProgram, CompileError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Span, CompileError> {
        if self.peek() == &kind {
            let span = self.span();
            self.bump();
            Ok(span)
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn error(&self, message: impl Into<String>) -> CompileError {
        CompileError::new(ErrorKind::Parse, self.span(), message)
    }

    fn ident(&mut self) -> Result<(String, Span), CompileError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    // ---- items ------------------------------------------------------------

    fn program(&mut self) -> Result<SourceProgram, CompileError> {
        let mut items = Vec::new();
        while self.peek() != &TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(SourceProgram { items })
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        match self.peek() {
            TokenKind::Struct => Ok(Item::Struct(self.struct_def()?)),
            TokenKind::Class => Ok(Item::Class(self.class_def()?)),
            TokenKind::Var => Ok(Item::Global(self.global_def()?)),
            TokenKind::Fn => Ok(Item::Func(self.func_def()?)),
            other => Err(self.error(format!(
                "expected `struct`, `class`, `var` or `fn` at top level, found {other}"
            ))),
        }
    }

    fn struct_def(&mut self) -> Result<StructDef, CompileError> {
        let start = self.expect(TokenKind::Struct)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            fields.push(self.field_def()?);
            self.expect(TokenKind::Semi)?;
        }
        Ok(StructDef {
            name,
            fields,
            span: start.to(self.prev_span()),
        })
    }

    fn field_def(&mut self) -> Result<FieldDef, CompileError> {
        let (name, span) = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.type_expr()?;
        Ok(FieldDef {
            name,
            span: span.to(ty.span()),
            ty,
        })
    }

    fn class_def(&mut self) -> Result<ClassDef, CompileError> {
        let start = self.expect(TokenKind::Class)?;
        let (name, _) = self.ident()?;
        let parent = if self.eat(&TokenKind::Colon) {
            Some(self.ident()?.0)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            match self.peek() {
                TokenKind::Virtual | TokenKind::Override | TokenKind::Fn => {
                    methods.push(self.method_def()?);
                }
                _ => {
                    fields.push(self.field_def()?);
                    self.expect(TokenKind::Semi)?;
                }
            }
        }
        Ok(ClassDef {
            name,
            parent,
            fields,
            methods,
            span: start.to(self.prev_span()),
        })
    }

    fn method_def(&mut self) -> Result<MethodDef, CompileError> {
        let is_virtual = self.eat(&TokenKind::Virtual);
        let is_override = !is_virtual && self.eat(&TokenKind::Override);
        let func = self.func_def()?;
        Ok(MethodDef {
            is_virtual,
            is_override,
            func,
        })
    }

    fn global_def(&mut self) -> Result<GlobalDef, CompileError> {
        let start = self.expect(TokenKind::Var)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.type_expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(GlobalDef {
            name,
            ty,
            span: start.to(self.prev_span()),
        })
    }

    fn func_def(&mut self) -> Result<FuncDef, CompileError> {
        let start = self.expect(TokenKind::Fn)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let (pname, pspan) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                params.push(Param {
                    name: pname,
                    span: pspan.to(ty.span()),
                    ty,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(&TokenKind::Arrow) {
            self.type_expr()?
        } else {
            TypeExpr::Named("void".to_string(), self.span())
        };
        let body = self.block()?;
        Ok(FuncDef {
            name,
            params,
            ret,
            span: start.to(self.prev_span()),
            body,
        })
    }

    // ---- types -------------------------------------------------------------

    fn type_expr(&mut self) -> Result<TypeExpr, CompileError> {
        let mut base = match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                TypeExpr::Named(name, span)
            }
            TokenKind::LBracket => {
                let start = self.span();
                self.bump();
                let elem = self.type_expr()?;
                self.expect(TokenKind::Semi)?;
                let len = match self.bump() {
                    TokenKind::Int(n) if n > 0 => n as u32,
                    _ => {
                        return Err(CompileError::new(
                            ErrorKind::Parse,
                            self.prev_span(),
                            "array length must be a positive integer literal",
                        ))
                    }
                };
                let end = self.expect(TokenKind::RBracket)?;
                TypeExpr::Array {
                    elem: Box::new(elem),
                    len,
                    span: start.to(end),
                }
            }
            other => return Err(self.error(format!("expected a type, found {other}"))),
        };
        loop {
            if self.peek() == &TokenKind::Byte && self.peek2() == &TokenKind::Star {
                let bspan = self.span();
                self.bump();
                let sspan = self.expect(TokenKind::Star)?;
                base = TypeExpr::Ptr {
                    span: base.span().to(bspan).to(sspan),
                    pointee: Box::new(base),
                    byte_addressed: true,
                };
            } else if self.peek() == &TokenKind::Star {
                let sspan = self.span();
                self.bump();
                base = TypeExpr::Ptr {
                    span: base.span().to(sspan),
                    pointee: Box::new(base),
                    byte_addressed: false,
                };
            } else {
                break;
            }
        }
        Ok(base)
    }

    // ---- statements ---------------------------------------------------------

    fn block(&mut self) -> Result<Block, CompileError> {
        let start = self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block {
            stmts,
            span: start.to(self.prev_span()),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            TokenKind::Let => {
                let start = self.span();
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Let {
                    name,
                    ty,
                    init,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::If => {
                let start = self.span();
                self.bump();
                let cond = self.expr()?;
                let then_blk = self.block()?;
                let else_blk = if self.eat(&TokenKind::Else) {
                    Some(self.block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::While => {
                let start = self.span();
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While {
                    cond,
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Return => {
                let start = self.span();
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return {
                    value,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Join => {
                let start = self.span();
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Join {
                    name,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Offload => {
                let start = self.span();
                self.bump();
                // `use`, `reads`, `writes` and `updates` are soft
                // keywords here: a bare ident in clause position is a
                // handle name unless it is one of them.
                let handle = match self.peek() {
                    TokenKind::Ident(name)
                        if !matches!(name.as_str(), "use" | "reads" | "writes" | "updates") =>
                    {
                        Some(self.ident()?.0)
                    }
                    _ => None,
                };
                let mut captures = Vec::new();
                if matches!(self.peek(), TokenKind::Ident(name) if name == "use") {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    loop {
                        let (name, span) = self.ident()?;
                        captures.push((name, span));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                let mut domain = Vec::new();
                if self.eat(&TokenKind::Domain) {
                    self.expect(TokenKind::LParen)?;
                    loop {
                        let (class, cspan) = self.ident()?;
                        self.expect(TokenKind::Dot)?;
                        let (method, mspan) = self.ident()?;
                        domain.push(DomainEntry {
                            class,
                            method,
                            span: cspan.to(mspan),
                        });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                let mut modes = Vec::new();
                loop {
                    let mode = match self.peek() {
                        TokenKind::Ident(name) if name == "reads" => memspace::AccessMode::Read,
                        TokenKind::Ident(name) if name == "writes" => memspace::AccessMode::Write,
                        TokenKind::Ident(name) if name == "updates" => memspace::AccessMode::Update,
                        _ => break,
                    };
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    loop {
                        let (name, span) = self.ident()?;
                        modes.push(ModeEntry { name, mode, span });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                let body = self.block()?;
                Ok(Stmt::Offload {
                    handle,
                    captures,
                    domain,
                    modes,
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            _ => {
                let start = self.span();
                let expr = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Assign {
                        target: expr,
                        value,
                        span: start.to(self.prev_span()),
                    })
                } else {
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Expr {
                        expr,
                        span: start.to(self.prev_span()),
                    })
                }
            }
        }
    }

    // ---- expressions ----------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().to(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let start = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span());
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span());
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Star => {
                self.bump();
                let ptr = self.unary_expr()?;
                let span = start.to(ptr.span());
                Ok(Expr::Deref {
                    ptr: Box::new(ptr),
                    span,
                })
            }
            TokenKind::Amp => {
                self.bump();
                let place = self.unary_expr()?;
                let span = start.to(place.span());
                Ok(Expr::AddrOf {
                    place: Box::new(place),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.primary_expr()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let (name, nspan) = self.ident()?;
                if self.peek() == &TokenKind::LParen {
                    let args = self.call_args()?;
                    let span = expr.span().to(self.prev_span());
                    expr = Expr::MethodCall {
                        recv: Box::new(expr),
                        method: name,
                        args,
                        span,
                    };
                } else {
                    let span = expr.span().to(nspan);
                    expr = Expr::Field {
                        base: Box::new(expr),
                        field: name,
                        span,
                    };
                }
            } else if self.peek() == &TokenKind::LBracket {
                self.bump();
                let index = self.expr()?;
                let end = self.expect(TokenKind::RBracket)?;
                let span = expr.span().to(end);
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                    span,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, CompileError> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v, span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, span))
            }
            TokenKind::Bool(v) => {
                self.bump();
                Ok(Expr::BoolLit(v, span))
            }
            TokenKind::New => {
                self.bump();
                let (class, cspan) = self.ident()?;
                Ok(Expr::New {
                    class,
                    span: span.to(cspan),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    let args = self.call_args()?;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        span: span.to(self.prev_span()),
                    })
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_program() {
        let src = "fn main() -> int { return 0; }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.items.len(), 1);
        match &prog.items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "main");
                assert!(f.params.is_empty());
                assert_eq!(f.body.stmts.len(), 1);
            }
            other => panic!("expected a function, got {other:?}"),
        }
    }

    #[test]
    fn parses_structs_classes_and_globals() {
        let src = r#"
            struct Vec3 { x: float; y: float; z: float; }
            var world: Vec3;
            class Entity {
                hp: float;
                virtual fn update(dt: float) { self.hp = self.hp - dt; }
            }
            class Enemy : Entity {
                override fn update(dt: float) { self.hp = self.hp - dt - dt; }
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.items.len(), 4);
        match &prog.items[2] {
            Item::Class(c) => {
                assert_eq!(c.name, "Entity");
                assert!(c.parent.is_none());
                assert_eq!(c.fields.len(), 1);
                assert!(c.methods[0].is_virtual);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &prog.items[3] {
            Item::Class(c) => {
                assert_eq!(c.parent.as_deref(), Some("Entity"));
                assert!(c.methods[0].is_override);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_pointer_and_array_types() {
        let src = "fn f(p: int*, q: int byte*, r: int**, a: [float; 8]*) { }";
        let prog = parse(src).unwrap();
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        match &f.params[0].ty {
            TypeExpr::Ptr { byte_addressed, .. } => assert!(!byte_addressed),
            other => panic!("unexpected {other:?}"),
        }
        match &f.params[1].ty {
            TypeExpr::Ptr { byte_addressed, .. } => assert!(byte_addressed),
            other => panic!("unexpected {other:?}"),
        }
        match &f.params[2].ty {
            TypeExpr::Ptr { pointee, .. } => {
                assert!(matches!(**pointee, TypeExpr::Ptr { .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
        match &f.params[3].ty {
            TypeExpr::Ptr { pointee, .. } => {
                assert!(matches!(**pointee, TypeExpr::Array { len: 8, .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_offload_with_domain() {
        let src = r#"
            fn main() {
                offload domain(Entity.update, Enemy.update) {
                    let x: int = 1;
                }
                offload { }
            }
        "#;
        let prog = parse(src).unwrap();
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        match &f.body.stmts[0] {
            Stmt::Offload { domain, body, .. } => {
                assert_eq!(domain.len(), 2);
                assert_eq!(domain[0].class, "Entity");
                assert_eq!(domain[1].method, "update");
                assert_eq!(body.stmts.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&f.body.stmts[1], Stmt::Offload { domain, .. } if domain.is_empty()));
    }

    #[test]
    fn precedence_is_conventional() {
        let src = "fn f() -> bool { return 1 + 2 * 3 < 4 && true || false; }";
        let prog = parse(src).unwrap();
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        let Stmt::Return {
            value: Some(expr), ..
        } = &f.body.stmts[0]
        else {
            panic!()
        };
        // ((1 + (2*3)) < 4 && true) || false
        let Expr::Binary {
            op: BinOp::Or, lhs, ..
        } = expr
        else {
            panic!("top is ||: {expr:?}")
        };
        let Expr::Binary {
            op: BinOp::And,
            lhs,
            ..
        } = &**lhs
        else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Lt, lhs, ..
        } = &**lhs
        else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &**lhs
        else {
            panic!()
        };
        assert!(matches!(&**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_postfix_chains() {
        let src = "fn f() { a.b[1].c(2, 3); *p = &q.r; }";
        let prog = parse(src).unwrap();
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Expr {
                expr: Expr::MethodCall { .. },
                ..
            }
        ));
        match &f.body.stmts[1] {
            Stmt::Assign { target, value, .. } => {
                assert!(matches!(target, Expr::Deref { .. }));
                assert!(matches!(value, Expr::AddrOf { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_is_a_syntax_error() {
        let err = parse("fn f() { let x: int = 1 }").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
        assert!(err.message.contains("`;`"));
    }

    #[test]
    fn stray_top_level_token_is_an_error() {
        let err = parse("return 4;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn zero_length_array_is_rejected() {
        let err = parse("fn f(a: [int; 0]) { }").unwrap_err();
        assert!(err.message.contains("positive"));
    }
}
