//! Compiler diagnostics.

use std::fmt;

use crate::span::Span;

/// Broad classification of a compile error, for tests and the E9
/// accept/reject table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorKind {
    /// Lexical error (bad character, unterminated literal…).
    Lex,
    /// Syntax error.
    Parse,
    /// Unknown name, duplicate definition, bad override…
    Resolve,
    /// Ordinary type mismatch.
    Type,
    /// Memory-space violation (outer vs local pointers) — the class of
    /// error the Offload C++ type system exists to catch.
    MemorySpace,
    /// Word-addressing violation (paper §5): pointer arithmetic that
    /// cannot be compiled efficiently for a word-addressed target.
    WordAddressing,
    /// Offload restrictions (host locals in offload blocks, nested
    /// offloads…).
    Offload,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Lex => write!(f, "lexical error"),
            ErrorKind::Parse => write!(f, "syntax error"),
            ErrorKind::Resolve => write!(f, "resolution error"),
            ErrorKind::Type => write!(f, "type error"),
            ErrorKind::MemorySpace => write!(f, "memory-space error"),
            ErrorKind::WordAddressing => write!(f, "word-addressing error"),
            ErrorKind::Offload => write!(f, "offload error"),
        }
    }
}

/// A compile-time diagnostic with location and explanation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// Classification.
    pub kind: ErrorKind,
    /// Where.
    pub span: Span,
    /// What went wrong (and often, what to do about it).
    pub message: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(kind: ErrorKind, span: Span, message: impl Into<String>) -> CompileError {
        CompileError {
            kind,
            span,
            message: message.into(),
        }
    }

    /// Renders the error with the offending source line, compiler-style.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let text = self.span.source_line(source);
        let caret = " ".repeat(col.saturating_sub(1) as usize) + "^";
        format!(
            "{} at {line}:{col}: {}\n  | {text}\n  | {caret}",
            self.kind, self.message
        )
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_column() {
        let src = "let x: int = true;";
        let err = CompileError::new(
            ErrorKind::Type,
            Span::new(13, 17),
            "expected int, found bool",
        );
        let rendered = err.render(src);
        assert!(rendered.contains("1:14"));
        assert!(rendered.contains("let x: int = true;"));
        assert!(rendered.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn display_mentions_kind() {
        let err = CompileError::new(ErrorKind::MemorySpace, Span::point(0), "boom");
        assert!(err.to_string().contains("memory-space error"));
    }
}
