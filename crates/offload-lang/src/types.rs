//! Semantic types, memory spaces, and data layout.

use std::collections::HashMap;
use std::fmt;

use crate::ast;
use crate::diag::{CompileError, ErrorKind};
use crate::span::Span;

/// The memory space a pointer refers into.
///
/// `Host` is the paper's "outer" memory; `Local` is the accelerator's
/// scratch-pad. Outside offload blocks everything is `Host`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Space {
    /// Main (host/outer) memory.
    Host,
    /// The executing accelerator's local store.
    Local,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Host => write!(f, "outer"),
            Space::Local => write!(f, "local"),
        }
    }
}

/// The addressing discipline of a pointer on word-addressed targets
/// (paper §5): `Word` pointers hold word-aligned addresses, `Byte`
/// pointers may carry constant sub-word offsets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PtrUnit {
    /// Default: word-addressed.
    Word,
    /// Explicitly byte-addressed (`T byte*`).
    Byte,
}

/// A semantic type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 32-bit float.
    Float,
    /// Boolean (1 byte).
    Bool,
    /// 8-bit character/byte (the sub-word scalar of paper §5).
    Char,
    /// No value.
    Void,
    /// A struct, by index into the [`TypeTable`].
    Struct(usize),
    /// A class instance type, by index into the [`TypeTable`].
    Class(usize),
    /// A pointer.
    Ptr {
        /// Pointee type.
        pointee: Box<Type>,
        /// Memory space.
        space: Space,
        /// Addressing discipline.
        unit: PtrUnit,
    },
    /// A fixed array.
    Array {
        /// Element type.
        elem: Box<Type>,
        /// Length.
        len: u32,
    },
}

impl Type {
    /// Shorthand for a pointer type.
    pub fn ptr(pointee: Type, space: Space) -> Type {
        Type::Ptr {
            pointee: Box::new(pointee),
            space,
            unit: PtrUnit::Word,
        }
    }

    /// Whether this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr { .. })
    }

    /// Whether this is a scalar (fits the operand stack).
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Type::Int | Type::Float | Type::Bool | Type::Char | Type::Ptr { .. }
        )
    }

    /// Whether this type is an integer-like arithmetic type.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }

    /// Structural equality *ignoring* pointer spaces and units — used to
    /// report "same type, different space" specially.
    pub fn same_shape(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Ptr { pointee: a, .. }, Type::Ptr { pointee: b, .. }) => a.same_shape(b),
            (Type::Array { elem: a, len: la }, Type::Array { elem: b, len: lb }) => {
                la == lb && a.same_shape(b)
            }
            _ => self == other,
        }
    }
}

/// A field with its resolved type and byte offset.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset within the aggregate.
    pub offset: u32,
}

/// Layout and fields of a struct.
#[derive(Clone, Debug)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// Fields with offsets (C-like natural alignment).
    pub fields: Vec<FieldInfo>,
    /// Total size in bytes (padded to alignment).
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
}

/// A method signature attached to a class.
#[derive(Clone, Debug)]
pub struct MethodInfo {
    /// Method name.
    pub name: String,
    /// Virtual-dispatch slot (shared across overrides).
    pub slot: u16,
    /// Whether the method participates in dynamic dispatch.
    pub is_virtual: bool,
    /// Parameter types (excluding `self`), with `Host` placeholder
    /// spaces (duplicates rebind them).
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Index of the defining class (for diagnostics).
    pub defined_in: usize,
    /// Index of this method's AST within the program's method list.
    pub ast_index: usize,
}

/// Layout, hierarchy, and dispatch info of a class.
#[derive(Clone, Debug)]
pub struct ClassInfo {
    /// Class name.
    pub name: String,
    /// Parent class index.
    pub parent: Option<usize>,
    /// All fields (inherited first), offsets include the 4-byte class-id
    /// header at offset 0.
    pub fields: Vec<FieldInfo>,
    /// Total size (header + fields, padded).
    pub size: u32,
    /// Alignment.
    pub align: u32,
    /// vtable: slot → index into [`TypeTable::methods`].
    pub vtable: Vec<usize>,
    /// Methods dispatched statically (non-virtual), by name.
    pub static_methods: HashMap<String, usize>,
}

/// All named types of a program, with layouts computed.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    /// Structs, in declaration order.
    pub structs: Vec<StructInfo>,
    /// Classes, in declaration order.
    pub classes: Vec<ClassInfo>,
    /// Every method of every class (AST bodies live in the compiler).
    pub methods: Vec<MethodInfo>,
    struct_names: HashMap<String, usize>,
    class_names: HashMap<String, usize>,
}

impl TypeTable {
    /// Looks up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<usize> {
        self.struct_names.get(name).copied()
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<usize> {
        self.class_names.get(name).copied()
    }

    /// Registers a struct (layout must already be computed).
    pub fn add_struct(&mut self, info: StructInfo) -> usize {
        let idx = self.structs.len();
        self.struct_names.insert(info.name.clone(), idx);
        self.structs.push(info);
        idx
    }

    /// Registers a class.
    pub fn add_class(&mut self, info: ClassInfo) -> usize {
        let idx = self.classes.len();
        self.class_names.insert(info.name.clone(), idx);
        self.classes.push(info);
        idx
    }

    /// Size of a type in bytes.
    pub fn size_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Int | Type::Float => 4,
            Type::Bool | Type::Char => 1,
            Type::Void => 0,
            Type::Ptr { .. } => 4,
            Type::Struct(i) => self.structs[*i].size,
            Type::Class(i) => self.classes[*i].size,
            Type::Array { elem, len } => self.size_of(elem) * len,
        }
    }

    /// Alignment of a type in bytes.
    pub fn align_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Int | Type::Float | Type::Ptr { .. } => 4,
            Type::Bool | Type::Char => 1,
            Type::Void => 1,
            Type::Struct(i) => self.structs[*i].align,
            Type::Class(i) => self.classes[*i].align,
            Type::Array { elem, .. } => self.align_of(elem),
        }
    }

    /// Finds a field of a struct or class type.
    pub fn field_of(&self, ty: &Type, name: &str) -> Option<FieldInfo> {
        let fields = match ty {
            Type::Struct(i) => &self.structs[*i].fields,
            Type::Class(i) => &self.classes[*i].fields,
            _ => return None,
        };
        fields.iter().find(|f| f.name == name).cloned()
    }

    /// Whether `sub` equals `sup` or is a subclass of it.
    pub fn is_subclass_of(&self, mut sub: usize, sup: usize) -> bool {
        loop {
            if sub == sup {
                return true;
            }
            match self.classes[sub].parent {
                Some(p) => sub = p,
                None => return false,
            }
        }
    }

    /// Resolves a method by name on a class (searching up the
    /// hierarchy): returns the method index.
    pub fn method_by_name(&self, class: usize, name: &str) -> Option<usize> {
        // Virtual slots first.
        for &m in &self.classes[class].vtable {
            if self.methods[m].name == name {
                return Some(m);
            }
        }
        let mut current = Some(class);
        while let Some(c) = current {
            if let Some(&m) = self.classes[c].static_methods.get(name) {
                return Some(m);
            }
            current = self.classes[c].parent;
        }
        None
    }

    /// Computes a C-like layout for the given `(name, type)` fields
    /// starting at byte `start`: natural alignment, size padded to the
    /// max alignment. Returns `(fields, size, align)`.
    pub fn layout_fields(
        &self,
        start: u32,
        decls: &[(String, Type)],
    ) -> (Vec<FieldInfo>, u32, u32) {
        let mut offset = start;
        let mut align = 1u32.max(if start > 0 { 4 } else { 1 });
        let mut fields = Vec::with_capacity(decls.len());
        for (name, ty) in decls {
            let a = self.align_of(ty);
            align = align.max(a);
            offset = memspace::align_up(offset, a);
            fields.push(FieldInfo {
                name: name.clone(),
                ty: ty.clone(),
                offset,
            });
            offset += self.size_of(ty);
        }
        let size = memspace::align_up(offset, align);
        (fields, size, align)
    }

    /// Renders a type for diagnostics.
    pub fn display(&self, ty: &Type) -> String {
        match ty {
            Type::Int => "int".into(),
            Type::Float => "float".into(),
            Type::Bool => "bool".into(),
            Type::Char => "char".into(),
            Type::Void => "void".into(),
            Type::Struct(i) => self.structs[*i].name.clone(),
            Type::Class(i) => self.classes[*i].name.clone(),
            Type::Ptr {
                pointee,
                space,
                unit,
            } => {
                let u = if *unit == PtrUnit::Byte { " byte" } else { "" };
                format!("{} {}{u}*", self.display(pointee), space)
            }
            Type::Array { elem, len } => format!("[{}; {len}]", self.display(elem)),
        }
    }

    /// Lowers a syntactic type, resolving names; pointer spaces default
    /// to `default_space`.
    ///
    /// # Errors
    ///
    /// Fails on unknown type names.
    pub fn lower(&self, texpr: &ast::TypeExpr, default_space: Space) -> Result<Type, CompileError> {
        match texpr {
            ast::TypeExpr::Named(name, span) => match name.as_str() {
                "int" => Ok(Type::Int),
                "float" => Ok(Type::Float),
                "bool" => Ok(Type::Bool),
                "char" => Ok(Type::Char),
                "void" => Ok(Type::Void),
                other => {
                    if let Some(i) = self.struct_by_name(other) {
                        Ok(Type::Struct(i))
                    } else if let Some(i) = self.class_by_name(other) {
                        Ok(Type::Class(i))
                    } else {
                        Err(CompileError::new(
                            ErrorKind::Resolve,
                            *span,
                            format!("unknown type `{other}`"),
                        ))
                    }
                }
            },
            ast::TypeExpr::Ptr {
                pointee,
                byte_addressed,
                ..
            } => Ok(Type::Ptr {
                pointee: Box::new(self.lower(pointee, default_space)?),
                space: default_space,
                unit: if *byte_addressed {
                    PtrUnit::Byte
                } else {
                    PtrUnit::Word
                },
            }),
            ast::TypeExpr::Array { elem, len, .. } => Ok(Type::Array {
                elem: Box::new(self.lower(elem, default_space)?),
                len: *len,
            }),
        }
    }
}

/// A resolved domain annotation entry: `(class index, method index)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedDomainEntry {
    /// The class named in the annotation.
    pub class: usize,
    /// The method (as implemented by that class).
    pub method: usize,
    /// The annotation's source span.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_struct() -> (TypeTable, usize) {
        let mut t = TypeTable::default();
        let decls = vec![
            ("a".to_string(), Type::Char),
            ("b".to_string(), Type::Int),
            ("c".to_string(), Type::Char),
        ];
        let (fields, size, align) = t.layout_fields(0, &decls);
        let idx = t.add_struct(StructInfo {
            name: "T".into(),
            fields,
            size,
            align,
        });
        (t, idx)
    }

    #[test]
    fn c_like_layout_with_padding() {
        let (t, idx) = table_with_struct();
        let info = &t.structs[idx];
        assert_eq!(info.fields[0].offset, 0); // a: char
        assert_eq!(info.fields[1].offset, 4); // b: int (aligned)
        assert_eq!(info.fields[2].offset, 8); // c: char
        assert_eq!(info.size, 12); // padded to 4
        assert_eq!(info.align, 4);
        assert_eq!(t.size_of(&Type::Struct(idx)), 12);
    }

    #[test]
    fn packed_char_struct() {
        let mut t = TypeTable::default();
        let decls: Vec<(String, Type)> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| (n.to_string(), Type::Char))
            .collect();
        let (fields, size, align) = t.layout_fields(0, &decls);
        assert_eq!(size, 4);
        assert_eq!(align, 1);
        assert_eq!(fields[3].offset, 3);
        let _ = t.add_struct(StructInfo {
            name: "B".into(),
            fields,
            size,
            align,
        });
    }

    #[test]
    fn scalar_sizes() {
        let t = TypeTable::default();
        assert_eq!(t.size_of(&Type::Int), 4);
        assert_eq!(t.size_of(&Type::Char), 1);
        assert_eq!(t.size_of(&Type::Bool), 1);
        assert_eq!(t.size_of(&Type::ptr(Type::Int, Space::Host)), 4);
        assert_eq!(
            t.size_of(&Type::Array {
                elem: Box::new(Type::Int),
                len: 5
            }),
            20
        );
    }

    #[test]
    fn same_shape_ignores_spaces() {
        let host = Type::ptr(Type::Int, Space::Host);
        let local = Type::ptr(Type::Int, Space::Local);
        assert!(host.same_shape(&local));
        assert_ne!(host, local);
        assert!(!host.same_shape(&Type::ptr(Type::Float, Space::Host)));
    }

    #[test]
    fn display_shows_spaces() {
        let t = TypeTable::default();
        assert_eq!(t.display(&Type::ptr(Type::Int, Space::Host)), "int outer*");
        let byte_ptr = Type::Ptr {
            pointee: Box::new(Type::Char),
            space: Space::Local,
            unit: PtrUnit::Byte,
        };
        assert_eq!(t.display(&byte_ptr), "char local byte*");
    }

    #[test]
    fn lower_resolves_names_and_spaces() {
        let (t, _) = table_with_struct();
        let texpr = ast::TypeExpr::Ptr {
            pointee: Box::new(ast::TypeExpr::Named("T".into(), Span::point(0))),
            byte_addressed: false,
            span: Span::point(0),
        };
        let ty = t.lower(&texpr, Space::Local).unwrap();
        assert_eq!(ty, Type::ptr(Type::Struct(0), Space::Local));
        let bad = ast::TypeExpr::Named("Nope".into(), Span::point(0));
        assert!(t.lower(&bad, Space::Host).is_err());
    }
}
