//! Source positions for diagnostics.

use std::fmt;

/// A byte range in the source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// A zero-width span at `at`.
    pub fn point(at: u32) -> Span {
        Span { start: at, end: at }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The `(line, column)` of the span start in `source` (1-based).
    pub fn line_col(self, source: &str) -> (u32, u32) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i as u32 >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    /// The source line containing the span start.
    pub fn source_line(self, source: &str) -> &str {
        let start = self.start.min(source.len() as u32) as usize;
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[start..]
            .find('\n')
            .map_or(source.len(), |i| start + i);
        &source[line_start..line_end]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_cover_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::point(0).line_col(src), (1, 1));
        assert_eq!(Span::point(1).line_col(src), (1, 2));
        assert_eq!(Span::point(3).line_col(src), (2, 1));
        assert_eq!(Span::point(7).line_col(src), (3, 2));
    }

    #[test]
    fn source_line_extraction() {
        let src = "first\nsecond\nthird";
        assert_eq!(Span::point(0).source_line(src), "first");
        assert_eq!(Span::point(8).source_line(src), "second");
        assert_eq!(Span::point(14).source_line(src), "third");
    }
}
