//! The abstract syntax tree.

use crate::span::Span;

/// A parsed source file.
#[derive(Clone, Debug, Default)]
pub struct SourceProgram {
    /// Top-level items in declaration order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, Debug)]
pub enum Item {
    /// A plain-old-data struct.
    Struct(StructDef),
    /// A class with methods and optional parent.
    Class(ClassDef),
    /// A global variable (`var name: type;`), allocated in main memory.
    Global(GlobalDef),
    /// A free function.
    Func(FuncDef),
}

/// A struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Definition span.
    pub span: Span,
}

/// A field of a struct or class.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Declaration span.
    pub span: Span,
}

/// A class definition (`class Name : Parent { fields; methods }`).
#[derive(Clone, Debug)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Parent class name, if any.
    pub parent: Option<String>,
    /// Own (non-inherited) fields.
    pub fields: Vec<FieldDef>,
    /// Methods defined in this class.
    pub methods: Vec<MethodDef>,
    /// Definition span.
    pub span: Span,
}

/// A method definition.
#[derive(Clone, Debug)]
pub struct MethodDef {
    /// `virtual fn …` introduces a new slot.
    pub is_virtual: bool,
    /// `override fn …` overrides a parent's virtual slot.
    pub is_override: bool,
    /// Name, parameters (excluding the implicit `self`), return type
    /// and body.
    pub func: FuncDef,
}

/// A global variable definition.
#[derive(Clone, Debug)]
pub struct GlobalDef {
    /// Global name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Declaration span.
    pub span: Span,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// Function (or method) name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type (`void` if omitted in source).
    pub ret: TypeExpr,
    /// Body.
    pub body: Block,
    /// Definition span.
    pub span: Span,
}

/// A parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Declaration span.
    pub span: Span,
}

/// A syntactic type.
#[derive(Clone, Debug)]
pub enum TypeExpr {
    /// `int`, `float`, `bool`, `void`, or a struct/class name.
    Named(String, Span),
    /// `T*` (word-addressed by default on word targets) or `T byte*`.
    Ptr {
        /// Pointee type.
        pointee: Box<TypeExpr>,
        /// `byte*`: explicitly byte-addressed (paper §5).
        byte_addressed: bool,
        /// Span.
        span: Span,
    },
    /// `[T; N]` fixed array.
    Array {
        /// Element type.
        elem: Box<TypeExpr>,
        /// Length.
        len: u32,
        /// Span.
        span: Span,
    },
}

impl TypeExpr {
    /// The span of the type expression.
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Named(_, span) => *span,
            TypeExpr::Ptr { span, .. } => *span,
            TypeExpr::Array { span, .. } => *span,
        }
    }
}

/// A block of statements.
#[derive(Clone, Debug)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
    /// Span of the braces.
    pub span: Span,
}

/// One entry of an offload `domain(...)` annotation: `Class.method`.
#[derive(Clone, Debug)]
pub struct DomainEntry {
    /// Class name.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Span.
    pub span: Span,
}

/// One entry of an offload access-mode annotation: a global named in a
/// `reads(...)`, `writes(...)`, or `updates(...)` clause.
#[derive(Clone, Debug)]
pub struct ModeEntry {
    /// Name of the global the mode covers.
    pub name: String,
    /// The declared access mode.
    pub mode: memspace::AccessMode,
    /// Span of the name.
    pub span: Span,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let name: ty = init;`
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeExpr,
        /// Initialiser (required for scalars, optional for aggregates).
        init: Option<Expr>,
        /// Span.
        span: Span,
    },
    /// `place = value;`
    Assign {
        /// Assignment target (an lvalue expression).
        target: Expr,
        /// Value.
        value: Expr,
        /// Span.
        span: Span,
    },
    /// `if cond { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch.
        else_blk: Option<Block>,
        /// Span.
        span: Span,
    },
    /// `while cond { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
        /// Span.
        span: Span,
    },
    /// `return expr;` / `return;`
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Span.
        span: Span,
    },
    /// An expression statement (usually a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Span.
        span: Span,
    },
    /// `offload [handle] domain(...) { … }` — run the block on an
    /// accelerator. With a handle name the offload is *asynchronous*
    /// (the paper's `__offload_handle_t h = __offload { … }`): the host
    /// continues and must `join` the handle later.
    Offload {
        /// Handle name for an asynchronous offload; `None` joins
        /// implicitly at the end of the block.
        handle: Option<String>,
        /// `use(x, y)`: host locals captured *by value* into the block
        /// (the paper's "additional syntax … to pass parameters to the
        /// block").
        captures: Vec<(String, Span)>,
        /// The `domain(...)` annotation (may be empty).
        domain: Vec<DomainEntry>,
        /// Access-mode annotations — `reads(...)` / `writes(...)` /
        /// `updates(...)` clauses naming globals. Empty means the
        /// legacy permissive contract; non-empty compiles down to the
        /// same [`memspace::AccessMode`] metadata the runtime builders
        /// take via `.reads()`/`.writes()`/`.updates()`.
        modes: Vec<ModeEntry>,
        /// The offloaded body.
        body: Block,
        /// Span.
        span: Span,
    },
    /// `join h;` — block until the named offload completes (the paper's
    /// `__offload_join(h)`).
    Join {
        /// The handle name.
        name: String,
        /// Span.
        span: Span,
    },
}

/// A unary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
}

/// A binary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+` (also pointer + integer).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether this operator yields `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    IntLit(i32, Span),
    /// Float literal.
    FloatLit(f32, Span),
    /// Boolean literal.
    BoolLit(bool, Span),
    /// Variable reference.
    Var(String, Span),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// Free-function call.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// Method call `recv.m(args)`; `recv` is a class pointer.
    MethodCall {
        /// Receiver (pointer to class instance).
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// Field access `base.f` (struct lvalue or pointer, auto-deref).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Span.
        span: Span,
    },
    /// Array indexing `base[i]`.
    Index {
        /// Array or pointer base.
        base: Box<Expr>,
        /// Index.
        index: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// Pointer dereference `*p`.
    Deref {
        /// Pointer operand.
        ptr: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// Address-of `&place`.
    AddrOf {
        /// The lvalue whose address is taken.
        place: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `new ClassName` — arena allocation in the current memory space.
    New {
        /// Class name.
        class: String,
        /// Span.
        span: Span,
    },
}

impl Expr {
    /// The span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s) | Expr::FloatLit(_, s) | Expr::BoolLit(_, s) | Expr::Var(_, s) => *s,
            Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Call { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Deref { span, .. }
            | Expr::AddrOf { span, .. }
            | Expr::New { span, .. } => *span,
        }
    }
}
