//! Compile-time superinstruction fusion (the peephole pass).
//!
//! Scans each compiled function for the hot opcode runs the trace layer
//! observes — counter bumps, loop headers, load/load/arith triples,
//! compare-and-branch pairs, field-address computations — and replaces
//! the *first* instruction of each run with a fused superinstruction
//! from the tail of [`Instr`]. The remaining instructions of the run
//! are left in place as dead padding: they are never executed (the
//! interpreter advances `pc` by [`Instr::width`]), but keeping them
//! keeps every instruction index stable, so jump targets need no
//! relocation and the pass is a single linear scan.
//!
//! # Selection policy
//!
//! A run is fused only when **all** of the following hold, which is
//! what makes fusion invisible to the simulated machine:
//!
//! - every *interior* instruction of the run is pure stack/frame
//!   traffic (constants, current-frame loads/stores, arithmetic,
//!   compares, and a trailing branch) — never a call, offload,
//!   allocation or print, so no event, DMA, or clock observation can
//!   happen mid-run. A pointer dereference (`LoadMem`) may appear only
//!   as the *final* instruction of the run: by then the fused handler
//!   has charged every interior cycle and retired every interior
//!   instruction, so any trap, DMA, or event the access raises lands
//!   in a machine state identical to the unfused run's;
//! - no interior instruction of the run can trap (`DivI`/`ModI` are
//!   excluded);
//! - no jump targets an *interior* instruction of the run (jumping to
//!   the head is fine — that executes the whole run, exactly as the
//!   unfused code would).
//!
//! The fused handler charges exactly the cycles the unfused run
//! charges and bumps the retired-instruction counter by the run
//! length, so cycle counts, instruction counts, traces and world
//! hashes are bit-identical with the pass on or off. `bench_throughput`
//! arbitrates that the pass actually pays wall-clock rent (the
//! `vm_superinstr` lane).

use crate::bytecode::{ArithF, ArithI, Instr, SpaceTag, ValType};

/// Fuses superinstruction runs in `code` in place and returns how many
/// superinstructions were formed.
///
/// Interior instructions of each fused run are left as unreachable
/// padding so instruction indices (and therefore jump targets) stay
/// valid.
pub fn fuse(code: &mut [Instr]) -> u32 {
    let n = code.len();
    let mut is_target = vec![false; n];
    for instr in code.iter() {
        if let Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) = *instr {
            if (t as usize) < n {
                is_target[t as usize] = true;
            }
        }
    }
    let mut fused = 0u32;
    let mut i = 0usize;
    while i < n {
        match match_run(code, i, &is_target) {
            Some(instr) => {
                let width = instr.width() as usize;
                code[i] = instr;
                fused += 1;
                i += width;
            }
            None => i += 1,
        }
    }
    fused
}

/// True when none of `code[i+1..i+width]` is a jump target (interior
/// entry would start mid-run).
fn interior_clear(is_target: &[bool], i: usize, width: usize) -> bool {
    is_target[i + 1..i + width].iter().all(|&t| !t)
}

fn int_op(instr: Instr) -> Option<ArithI> {
    match instr {
        Instr::AddI => Some(ArithI::Add),
        Instr::SubI => Some(ArithI::Sub),
        Instr::MulI => Some(ArithI::Mul),
        _ => None,
    }
}

fn float_op(instr: Instr) -> Option<ArithF> {
    match instr {
        Instr::AddF => Some(ArithF::Add),
        Instr::SubF => Some(ArithF::Sub),
        Instr::MulF => Some(ArithF::Mul),
        Instr::DivF => Some(ArithF::Div),
        _ => None,
    }
}

fn local_i32(instr: Instr) -> Option<u32> {
    match instr {
        Instr::LoadLocal {
            offset,
            ty: ValType::I32,
        } => Some(offset),
        _ => None,
    }
}

fn local_f32(instr: Instr) -> Option<u32> {
    match instr {
        Instr::LoadLocal {
            offset,
            ty: ValType::F32,
        } => Some(offset),
        _ => None,
    }
}

fn local_ptr(instr: Instr) -> Option<(u32, SpaceTag)> {
    match instr {
        Instr::LoadLocal {
            offset,
            ty: ValType::Ptr(tag),
        } => Some((offset, tag)),
        _ => None,
    }
}

/// Tries every pattern at position `i`, longest first, and returns the
/// fused replacement for `code[i]` when one applies.
#[allow(clippy::similar_names)]
fn match_run(code: &[Instr], i: usize, is_target: &[bool]) -> Option<Instr> {
    let n = code.len();

    // Width 4: `i = i + k` and `while i < k`.
    if i + 4 <= n && interior_clear(is_target, i, 4) {
        if let Some(offset) = local_i32(code[i]) {
            if let Instr::ConstI(k) = code[i + 1] {
                if let Some(op) = int_op(code[i + 2]) {
                    if code[i + 3]
                        == (Instr::StoreLocal {
                            offset,
                            ty: ValType::I32,
                        })
                    {
                        let delta = match op {
                            ArithI::Add => Some(k),
                            // a - k ≡ a + (-k), including k = i32::MIN
                            // (two's-complement wrap matches SubI).
                            ArithI::Sub => Some(k.wrapping_neg()),
                            ArithI::Mul => None,
                        };
                        if let Some(delta) = delta {
                            return Some(Instr::IncLocalI { offset, delta });
                        }
                    }
                }
                if let Instr::CmpI(op) = code[i + 2] {
                    if let Instr::JumpIfFalse(target) = code[i + 3] {
                        return Some(Instr::CmpLocalImmBr {
                            offset,
                            imm: k,
                            op,
                            target,
                        });
                    }
                }
            }
        }
    }

    // Width 3: field reads and load/load/arith triples.
    if i + 3 <= n && interior_clear(is_target, i, 3) {
        if let Some((offset, tag)) = local_ptr(code[i]) {
            if let (Instr::PtrAddConst(delta), Instr::LoadMem { ty, penalty }) =
                (code[i + 1], code[i + 2])
            {
                return Some(Instr::LoadLocalPtrAddMem {
                    offset,
                    tag,
                    delta,
                    ty,
                    penalty,
                });
            }
        }
        if let (Some(a), Some(b)) = (local_i32(code[i]), local_i32(code[i + 1])) {
            if let Some(op) = int_op(code[i + 2]) {
                return Some(Instr::LoadLocal2OpI { a, b, op });
            }
        }
        if let (Some(a), Some(b)) = (local_f32(code[i]), local_f32(code[i + 1])) {
            if let Some(op) = float_op(code[i + 2]) {
                return Some(Instr::LoadLocal2OpF { a, b, op });
            }
        }
        if let Some(offset) = local_f32(code[i]) {
            if let (
                Some(op),
                Instr::StoreMem {
                    ty: ValType::F32,
                    penalty,
                },
            ) = (float_op(code[i + 1]), code[i + 2])
            {
                return Some(Instr::LoadLocalOpFStoreMem {
                    offset,
                    op,
                    penalty,
                });
            }
        }
    }

    // Width 2 pairs.
    if i + 2 <= n && interior_clear(is_target, i, 2) {
        match (code[i], code[i + 1]) {
            (Instr::CmpI(op), Instr::JumpIfFalse(target)) => {
                return Some(Instr::CmpIBr { op, target });
            }
            (Instr::CmpF(op), Instr::JumpIfFalse(target)) => {
                return Some(Instr::CmpFBr { op, target });
            }
            _ => {}
        }
        if let Some((offset, tag)) = local_ptr(code[i]) {
            if let Instr::PtrAddConst(delta) = code[i + 1] {
                return Some(Instr::LoadLocalPtrAdd { offset, tag, delta });
            }
        }
        if let (Instr::AddrOfGlobal { offset }, Instr::LoadMem { ty, penalty }) =
            (code[i], code[i + 1])
        {
            return Some(Instr::LoadGlobalMem {
                offset,
                ty,
                penalty,
            });
        }
        if let Some(offset) = local_i32(code[i]) {
            if let Some(op) = int_op(code[i + 1]) {
                return Some(Instr::LoadLocalOpI { offset, op });
            }
        }
        if let Some(offset) = local_f32(code[i]) {
            if let Some(op) = float_op(code[i + 1]) {
                return Some(Instr::LoadLocalOpF { offset, op });
            }
        }
        if let (
            Instr::LoadLocal {
                offset: off1,
                ty: ty1,
            },
            Instr::LoadLocal {
                offset: off2,
                ty: ty2,
            },
        ) = (code[i], code[i + 1])
        {
            return Some(Instr::LoadLocal2 {
                off1,
                ty1,
                off2,
                ty2,
            });
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Cmp;

    fn ll(offset: u32, ty: ValType) -> Instr {
        Instr::LoadLocal { offset, ty }
    }

    #[test]
    fn fuses_counter_bump() {
        let mut code = vec![
            ll(0, ValType::I32),
            Instr::ConstI(1),
            Instr::AddI,
            Instr::StoreLocal {
                offset: 0,
                ty: ValType::I32,
            },
            Instr::Ret { has_value: false },
        ];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::IncLocalI {
                offset: 0,
                delta: 1
            }
        );
        // Padding is untouched.
        assert_eq!(code[1], Instr::ConstI(1));
    }

    #[test]
    fn sub_folds_to_negative_delta() {
        let mut code = vec![
            ll(8, ValType::I32),
            Instr::ConstI(3),
            Instr::SubI,
            Instr::StoreLocal {
                offset: 8,
                ty: ValType::I32,
            },
        ];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::IncLocalI {
                offset: 8,
                delta: -3
            }
        );
    }

    #[test]
    fn store_to_other_slot_is_not_a_counter_bump() {
        let mut code = vec![
            ll(0, ValType::I32),
            Instr::ConstI(1),
            Instr::AddI,
            Instr::StoreLocal {
                offset: 4,
                ty: ValType::I32,
            },
        ];
        fuse(&mut code);
        assert!(
            !matches!(code[0], Instr::IncLocalI { .. }),
            "different store slot must not fuse into IncLocalI"
        );
    }

    #[test]
    fn fuses_loop_header() {
        let mut code = vec![
            ll(0, ValType::I32),
            Instr::ConstI(10),
            Instr::CmpI(Cmp::Lt),
            Instr::JumpIfFalse(9),
            Instr::Ret { has_value: false },
        ];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::CmpLocalImmBr {
                offset: 0,
                imm: 10,
                op: Cmp::Lt,
                target: 9
            }
        );
    }

    #[test]
    fn jump_target_inside_run_blocks_fusion() {
        let mut code = vec![
            ll(0, ValType::I32),
            Instr::ConstI(1), // jump target: run must not fuse
            Instr::AddI,
            Instr::StoreLocal {
                offset: 0,
                ty: ValType::I32,
            },
            Instr::Jump(1),
        ];
        fuse(&mut code);
        assert_eq!(code[0], ll(0, ValType::I32), "head left unfused");
    }

    #[test]
    fn jump_to_head_is_allowed() {
        let mut code = vec![
            Instr::Jump(1),
            ll(0, ValType::I32),
            Instr::ConstI(1),
            Instr::AddI,
            Instr::StoreLocal {
                offset: 0,
                ty: ValType::I32,
            },
        ];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[1],
            Instr::IncLocalI {
                offset: 0,
                delta: 1
            }
        );
    }

    #[test]
    fn triples_beat_pairs() {
        let mut code = vec![ll(0, ValType::I32), ll(4, ValType::I32), Instr::AddI];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::LoadLocal2OpI {
                a: 0,
                b: 4,
                op: ArithI::Add
            }
        );
    }

    #[test]
    fn div_never_fuses() {
        let mut code = vec![ll(0, ValType::I32), ll(4, ValType::I32), Instr::DivI];
        fuse(&mut code);
        assert_eq!(
            code[0],
            Instr::LoadLocal2 {
                off1: 0,
                ty1: ValType::I32,
                off2: 4,
                ty2: ValType::I32
            },
            "the loads may pair up, but DivI stays unfused (trap path)"
        );
        assert_eq!(code[2], Instr::DivI);
    }

    #[test]
    fn compare_branch_pair() {
        let mut code = vec![Instr::CmpF(Cmp::Ge), Instr::JumpIfFalse(7)];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::CmpFBr {
                op: Cmp::Ge,
                target: 7
            }
        );
    }

    #[test]
    fn field_address_pair() {
        let mut code = vec![ll(4, ValType::Ptr(SpaceTag::Local)), Instr::PtrAddConst(8)];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::LoadLocalPtrAdd {
                offset: 4,
                tag: SpaceTag::Local,
                delta: 8
            }
        );
    }

    #[test]
    fn field_read_triple_beats_address_pair() {
        let mut code = vec![
            ll(4, ValType::Ptr(SpaceTag::Host)),
            Instr::PtrAddConst(8),
            Instr::LoadMem {
                ty: ValType::F32,
                penalty: 0,
            },
        ];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::LoadLocalPtrAddMem {
                offset: 4,
                tag: SpaceTag::Host,
                delta: 8,
                ty: ValType::F32,
                penalty: 0
            },
            "with a trailing LoadMem the 3-wide field read wins over LoadLocalPtrAdd"
        );
    }

    #[test]
    fn writeback_triple_beats_op_pair() {
        let mut code = vec![
            ll(12, ValType::F32),
            Instr::SubF,
            Instr::StoreMem {
                ty: ValType::F32,
                penalty: 1,
            },
        ];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::LoadLocalOpFStoreMem {
                offset: 12,
                op: ArithF::Sub,
                penalty: 1
            },
            "with a trailing StoreMem the 3-wide write-back wins over LoadLocalOpF"
        );
    }

    #[test]
    fn global_read_pair() {
        let mut code = vec![
            Instr::AddrOfGlobal { offset: 16 },
            Instr::LoadMem {
                ty: ValType::I32,
                penalty: 2,
            },
        ];
        assert_eq!(fuse(&mut code), 1);
        assert_eq!(
            code[0],
            Instr::LoadGlobalMem {
                offset: 16,
                ty: ValType::I32,
                penalty: 2
            }
        );
    }

    #[test]
    fn runs_do_not_overlap() {
        // [ll, ll, AddI][ll, ll, AddI] → exactly two triples.
        let mut code = vec![
            ll(0, ValType::I32),
            ll(4, ValType::I32),
            Instr::AddI,
            ll(8, ValType::I32),
            ll(12, ValType::I32),
            Instr::AddI,
        ];
        assert_eq!(fuse(&mut code), 2);
        assert!(matches!(code[0], Instr::LoadLocal2OpI { .. }));
        assert!(matches!(code[3], Instr::LoadLocal2OpI { .. }));
    }
}
