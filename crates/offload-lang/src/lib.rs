//! The Offload/Mini compiler and virtual machine.
//!
//! Offload C++ (paper §3) extends C++ with an `__offload` block: code
//! inside the block runs on an accelerator core, data declared inside it
//! lives in scratch-pad memory, and accesses to host data compile into
//! automatically generated data-movement code, with an `__outer`
//! pointer qualifier keeping the memory spaces apart in the type
//! system. Reproducing the *compiler* half of the paper means building
//! that language. **Offload/Mini** is a C-flavoured object language with
//! exactly the features the paper's mechanisms need:
//!
//! - structs, classes with single inheritance and `virtual`/`override`
//!   methods, pointers, fixed arrays, `new` (arena) allocation;
//! - `offload domain(Class.method, …) { … }` blocks executing on the
//!   simulated accelerator, with local allocation in the 256 KiB local
//!   store and **automatic outer qualification** of pointers to host
//!   data; blocks capture host locals by value with `use(x, y)`, and
//!   named handles make them asynchronous — `offload h { … } … join h;`
//!   is the paper's `__offload_handle_t h = __offload { … };
//!   __offload_join(h);`, with handles round-robined over the machine's
//!   accelerators;
//! - strong memory-space typing: assigning an outer pointer to a local
//!   pointer (or vice versa) is a compile error, as in Offload C++;
//! - **automatic call-graph duplication**: every function reachable from
//!   an offload block is recompiled per combination of pointer-parameter
//!   memory spaces (paper §3, experiment E10);
//! - **dispatch domains** (paper Figure 3): virtual calls inside offload
//!   blocks resolve through outer/inner domains built from the block's
//!   `domain(...)` annotation, with the informative miss exception;
//! - **word/byte addressing** (paper §5): compiled for a word-addressed
//!   target, the hybrid pointer discipline statically rejects
//!   inefficient pointer arithmetic, while the byte-emulation strategy
//!   accepts everything and pays per-dereference penalties (E9).
//!
//! Programs execute on the [`simcell`] machine through a bytecode VM, so
//! every language construct carries its simulated cost.
//!
//! # Example
//!
//! ```
//! use offload_lang::{compile, Target, Vm};
//! use simcell::{Machine, MachineConfig};
//!
//! let source = r#"
//!     var counter: int;
//!     fn main() -> int {
//!         counter = 20;
//!         offload {
//!             counter = counter + 22;   // outer access, via DMA
//!         }
//!         return counter;
//!     }
//! "#;
//! let program = compile(source, &Target::cell_like()).expect("compiles");
//! let mut machine = Machine::new(MachineConfig::small()).unwrap();
//! let mut vm = Vm::new(&program, &mut machine).unwrap();
//! let exit = vm.run(&mut machine).unwrap();
//! assert_eq!(exit, 42);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod codegen;
pub mod compile;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod peephole;
pub mod span;
pub mod token;
pub mod types;
pub mod vm;

pub use compile::{compile, CompileStats, Program, Target, WordStrategy};
pub use diag::{CompileError, ErrorKind};
pub use span::Span;
pub use vm::{OffloadCachePolicy, Vm, VmError};
