//! End-to-end tests of the Offload/Mini compiler and VM: language
//! semantics, memory-space typing, dispatch domains, duplication, word
//! addressing, and cost behaviour on the simulated machine.

use offload_lang::{compile, CompileError, ErrorKind, OffloadCachePolicy, Target, Vm, VmError};
use simcell::{Machine, MachineConfig};

fn run_cell(source: &str) -> (i32, Vec<String>) {
    run_with(source, &Target::cell_like(), OffloadCachePolicy::Naive)
}

fn run_with(source: &str, target: &Target, policy: OffloadCachePolicy) -> (i32, Vec<String>) {
    let program = compile(source, target)
        .map_err(|e| panic!("compile error: {}", e.render(source)))
        .unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    vm.set_cache_policy(policy);
    let exit = vm
        .run(&mut machine)
        .map_err(|e| panic!("runtime error: {e}"))
        .unwrap();
    (exit, vm.output().to_vec())
}

/// Runs and also returns the host cycle count. Uses the full default
/// machine (six accelerators) so asynchronous offloads can overlap.
fn run_timed(source: &str, policy: OffloadCachePolicy) -> (i32, u64) {
    let program = compile(source, &Target::cell_like()).unwrap();
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    vm.set_cache_policy(policy);
    let exit = vm.run(&mut machine).unwrap();
    (exit, machine.host_now())
}

fn compile_err(source: &str, target: &Target) -> CompileError {
    match compile(source, target) {
        Ok(_) => panic!("expected a compile error"),
        Err(e) => e,
    }
}

// ---------------------------------------------------------------- basics

#[test]
fn arithmetic_and_control_flow() {
    let (exit, _) = run_cell(
        r#"
        fn main() -> int {
            let acc: int = 0;
            let i: int = 1;
            while i <= 10 {
                if i % 2 == 0 {
                    acc = acc + i * i;
                } else {
                    acc = acc - i;
                }
                i = i + 1;
            }
            return acc;
        }
        "#,
    );
    // even squares 4+16+36+64+100 = 220; odds 1+3+5+7+9 = 25.
    assert_eq!(exit, 195);
}

#[test]
fn floats_and_conversions() {
    let (exit, output) = run_cell(
        r#"
        fn main() -> int {
            let x: float = 2.5;
            let y: float = x * 4.0 - 1.0;   // 9.0
            print_float(y);
            let one: float = int_to_float(3) / 3.0;
            if one == 1.0 && !(y < 0.0) {
                return float_to_int(y);
            }
            return -1;
        }
        "#,
    );
    assert_eq!(exit, 9);
    assert_eq!(output, vec!["9.0000".to_string()]);
}

#[test]
fn float_print_format() {
    let (exit, output) = run_cell(
        r#"
        fn main() -> int {
            print_float(1.5);
            print_int(42);
            return 0;
        }
        "#,
    );
    assert_eq!(exit, 0);
    assert_eq!(output, vec!["1.5000".to_string(), "42".to_string()]);
}

#[test]
fn functions_and_recursion() {
    let (exit, _) = run_cell(
        r#"
        fn fib(n: int) -> int {
            if n < 2 { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() -> int { return fib(10); }
        "#,
    );
    assert_eq!(exit, 55);
}

#[test]
fn pointers_and_out_parameters() {
    let (exit, _) = run_cell(
        r#"
        fn add_into(a: int, b: int, out: int*) { *out = a + b; }
        fn main() -> int {
            let r: int = 0;
            add_into(19, 23, &r);
            return r;
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn globals_structs_and_arrays() {
    let (exit, _) = run_cell(
        r#"
        struct Vec3 { x: float; y: float; z: float; }
        var position: Vec3;
        var table: [int; 8];
        fn main() -> int {
            position.x = 1.5;
            position.y = position.x + 0.5;
            let i: int = 0;
            while i < 8 { table[i] = i * 3; i = i + 1; }
            return table[7] + float_to_int(position.y);
        }
        "#,
    );
    assert_eq!(exit, 23);
}

#[test]
fn struct_copy_assignment() {
    let (exit, _) = run_cell(
        r#"
        struct Pair { a: int; b: int; }
        var x: Pair;
        var y: Pair;
        fn main() -> int {
            x.a = 7; x.b = 35;
            y = x;
            return y.a + y.b;
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn chars_are_subword_scalars() {
    let (exit, _) = run_cell(
        r#"
        struct Packed { a: char; b: char; c: char; d: char; }
        var p: Packed;
        fn main() -> int {
            p.a = 65;
            p.b = p.a;
            p.c = 200;
            return p.b + p.c;   // 65 + 200 (char widens to int)
        }
        "#,
    );
    assert_eq!(exit, 265);
}

#[test]
fn classes_and_host_virtual_dispatch() {
    let (exit, _) = run_cell(
        r#"
        class Shape {
            side: int;
            virtual fn area(unused: int) -> int { return 0; }
        }
        class Square : Shape {
            override fn area(unused: int) -> int { return self.side * self.side; }
        }
        class Cube : Square {
            override fn area(unused: int) -> int { return self.side * self.side * 6; }
        }
        var s: Shape*;
        fn main() -> int {
            s = new Square;
            s.side = 4;
            let a: int = s.area(0);    // 16
            s = new Cube;
            s.side = 2;
            return a + s.area(0);      // 16 + 24
        }
        "#,
    );
    assert_eq!(exit, 40);
}

#[test]
fn static_methods_dispatch_directly() {
    let (exit, _) = run_cell(
        r#"
        class Counter {
            n: int;
            fn bump(by: int) -> int { self.n = self.n + by; return self.n; }
        }
        var c: Counter*;
        fn main() -> int {
            c = new Counter;
            c.bump(10);
            return c.bump(32);
        }
        "#,
    );
    assert_eq!(exit, 42);
}

// ---------------------------------------------------------------- offload

#[test]
fn offload_reads_and_writes_globals() {
    let (exit, _) = run_cell(
        r#"
        var counter: int;
        fn main() -> int {
            counter = 20;
            offload { counter = counter + 22; }
            return counter;
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn mode_annotated_offload_matches_unannotated_result() {
    let plain = r#"
        var table: [int; 8];
        var result: int;
        fn main() -> int {
            let i: int = 0;
            while i < 8 { table[i] = i * 3; i = i + 1; }
            offload {
                let acc: int = 0;
                let j: int = 0;
                while j < 8 { acc = acc + table[j]; j = j + 1; }
                result = acc;
            }
            return result;
        }
        "#;
    let annotated = plain.replace("offload {", "offload reads(table) writes(result) {");
    assert_eq!(run_cell(plain), run_cell(&annotated));
}

#[test]
fn updates_clause_allows_read_modify_write() {
    let (exit, _) = run_cell(
        r#"
        var counter: int;
        fn main() -> int {
            counter = 20;
            offload updates(counter) { counter = counter + 22; }
            return counter;
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn mode_clauses_compose_with_handle_use_and_domain() {
    let (exit, _) = run_cell(
        r#"
        class Op {
            bias: int;
            virtual fn apply(x: int) -> int { return x; }
        }
        class AddBias : Op {
            override fn apply(x: int) -> int { return x + self.bias; }
        }
        var op: Op*;
        var result: int;
        fn main() -> int {
            op = new AddBias;
            op.bias = 40;
            let seed: int = 2;
            offload h use(seed) domain(Op.apply, AddBias.apply) writes(result) {
                result = op.apply(seed);
            }
            join h;
            return result;
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn write_into_reads_declared_global_is_rejected() {
    let source = r#"
        var counter: int;
        fn main() -> int {
            counter = 20;
            offload reads(counter) { counter = counter + 22; }
            return counter;
        }
        "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    match vm.run(&mut machine) {
        Err(VmError::Sim(simcell::SimError::UndeclaredWrite { declared, .. })) => {
            assert_eq!(declared, Some(simcell::AccessMode::Read));
        }
        other => panic!("expected an undeclared-write rejection, got {other:?}"),
    }
}

#[test]
fn write_outside_all_declared_ranges_is_rejected() {
    // Declaring *any* mode makes the contract strict: a store to an
    // undeclared global must be rejected, not silently journaled.
    let source = r#"
        var a: int;
        var b: int;
        fn main() -> int {
            offload reads(a) { b = a + 1; }
            return b;
        }
        "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    match vm.run(&mut machine) {
        Err(VmError::Sim(simcell::SimError::UndeclaredWrite { declared, .. })) => {
            assert_eq!(declared, None);
        }
        other => panic!("expected an undeclared-write rejection, got {other:?}"),
    }
}

#[test]
fn mode_clause_must_name_a_global() {
    let err = compile_err(
        r#"
        fn main() -> int {
            let local: int = 1;
            offload reads(local) { }
            return 0;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Resolve);
    assert!(err.message.contains("global"), "{}", err.message);
}

#[test]
fn offload_local_data_is_scratchpad_allocated() {
    let (exit, _) = run_cell(
        r#"
        var result: int;
        fn main() -> int {
            offload {
                let scratch: [int; 32] = ;
                let i: int = 0;
                while i < 32 { scratch[i] = i; i = i + 1; }
                let acc: int = 0;
                i = 0;
                while i < 32 { acc = acc + scratch[i]; i = i + 1; }
                result = acc;
            }
            return result;
        }
        "#
        .replace("= ;", ";")
        .as_str(),
    );
    assert_eq!(exit, 496);
}

#[test]
fn offloaded_virtual_dispatch_through_domain() {
    let (exit, _) = run_cell(
        r#"
        class Entity {
            hp: float;
            virtual fn tick(d: float) { self.hp = self.hp - d; }
        }
        class Enemy : Entity {
            override fn tick(d: float) { self.hp = self.hp - d - d; }
        }
        var e: Entity*;
        var f: Entity*;
        fn main() -> int {
            e = new Enemy;
            f = new Entity;
            e.hp = 10.0;
            f.hp = 10.0;
            offload domain(Entity.tick, Enemy.tick) {
                e.tick(1.0);
                f.tick(1.0);
            }
            return float_to_int(e.hp * 10.0 + f.hp);  // 8.0*10 + 9.0
        }
        "#,
    );
    assert_eq!(exit, 89);
}

#[test]
fn domain_miss_raises_the_informative_exception() {
    let source = r#"
        class Entity {
            hp: float;
            virtual fn tick(d: float) { self.hp = self.hp - d; }
        }
        var e: Entity*;
        fn main() -> int {
            e = new Entity;
            offload { e.tick(1.0); }   // BUG: no domain annotation
            return 0;
        }
    "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    let err = vm.run(&mut machine).unwrap_err();
    match &err {
        VmError::DomainMiss { method, .. } => {
            assert!(method.contains("tick"), "names the method: {method}");
        }
        other => panic!("expected DomainMiss, got {other}"),
    }
    let text = err.to_string();
    assert!(text.contains("domain(...) annotation"), "{text}");
}

#[test]
fn function_duplication_per_memory_space_signature() {
    let source = r#"
        fn bump(p: int*) -> int { *p = *p + 1; return *p; }
        var g: int;
        fn main() -> int {
            let x: int = 0;
            let r: int = bump(&x);      // host variant
            offload {
                let y: int = 5;
                let a: int = bump(&y);  // accelerator, local pointer
                let b: int = bump(&g);  // accelerator, outer pointer
                g = a + b;
            }
            return g + r;
        }
    "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    assert_eq!(
        program.stats.duplicates.get("bump"),
        Some(&3),
        "host + local + outer duplicates: {:?}",
        program.stats.duplicates
    );

    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert_eq!(vm.run(&mut machine).unwrap(), 8);
}

#[test]
fn offload_stats_are_recorded() {
    let source = r#"
        class A { x: int; virtual fn go(k: int) { self.x = k; } }
        var a: A*;
        fn main() -> int {
            a = new A;
            offload domain(A.go) { a.go(1); }
            offload { }
            return a.x;
        }
    "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    assert_eq!(program.stats.offload_blocks, 2);
    assert_eq!(program.stats.domain_sizes, vec![1, 0]);
}

// -------------------------------------------------- memory-space typing

#[test]
fn cross_space_pointer_assignment_is_rejected() {
    let err = compile_err(
        r#"
        var g: int;
        fn main() -> int {
            offload {
                let x: int = 1;
                let p: int* = &x;   // local pointer
                p = &g;             // outer pointer: different space
            }
            return 0;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::MemorySpace);
    assert!(err.message.contains("memory space"), "{}", err.message);
}

#[test]
fn cross_space_pointer_comparison_is_rejected() {
    let err = compile_err(
        r#"
        var g: int;
        fn main() -> int {
            offload {
                let x: int = 1;
                let same: bool = &x == &g;
            }
            return 0;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::MemorySpace);
}

#[test]
fn uninitialised_pointers_are_rejected() {
    let err = compile_err(
        r#"
        fn main() -> int {
            let p: int*;
            return 0;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::MemorySpace);
    assert!(err.message.contains("initialised"));
}

#[test]
fn host_locals_are_not_visible_in_offload_blocks() {
    let err = compile_err(
        r#"
        fn main() -> int {
            let x: int = 1;
            offload { x = 2; }
            return x;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Offload);
    assert!(err.message.contains("global"), "{}", err.message);
    assert!(err.message.contains("use(x)"), "{}", err.message);
}

#[test]
fn nested_offload_is_rejected() {
    let err = compile_err(
        r#"
        fn main() -> int {
            offload { offload { } }
            return 0;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Offload);
}

#[test]
fn type_errors_are_reported() {
    let err = compile_err(
        "fn main() -> int { let x: int = true; return x; }",
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Type);

    let err = compile_err("fn main() -> int { return 1 + 2.0; }", &Target::cell_like());
    assert_eq!(err.kind, ErrorKind::Type);
    assert!(err.message.contains("int_to_float"));
}

#[test]
fn resolution_errors_are_reported() {
    let err = compile_err("fn main() -> int { return foo(); }", &Target::cell_like());
    assert_eq!(err.kind, ErrorKind::Resolve);

    let err = compile_err(
        "fn f() { } fn f() { } fn main() -> int { return 0; }",
        &Target::cell_like(),
    );
    assert!(err.message.contains("twice"));

    let err = compile_err("fn nomain() { }", &Target::cell_like());
    assert!(err.message.contains("main"));
}

#[test]
fn override_signature_mismatch_is_rejected() {
    let err = compile_err(
        r#"
        class A { virtual fn f(x: int) { } }
        class B : A { override fn f(x: float) { } }
        fn main() -> int { return 0; }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Type);
    assert!(err.message.contains("signature"));
}

#[test]
fn returning_pointers_is_rejected_with_guidance() {
    let err = compile_err(
        "fn f() -> int* { }\nfn main() -> int { return 0; }",
        &Target::cell_like(),
    );
    assert!(err.message.contains("out-parameter"));
}

// ------------------------------------------------------- word addressing

#[test]
fn word_target_accepts_constant_subword_field_access() {
    // The paper's `p->a = p->b` example for a struct of chars.
    let (exit, _) = run_with(
        r#"
        struct T { a: char; b: char; c: char; d: char; }
        var t: T;
        fn main() -> int {
            t.b = 42;
            let p: T* = &t;
            p.a = p.b;
            return t.a;
        }
        "#,
        &Target::word_addressed(4),
        OffloadCachePolicy::Naive,
    );
    assert_eq!(exit, 42);
}

#[test]
fn word_target_rejects_variable_byte_indexing() {
    // The paper's `*string++ = (char)i` loop.
    let err = compile_err(
        r#"
        var s: [char; 16];
        fn main() -> int {
            let i: int = 0;
            while i < 16 {
                s[i] = 65;
                i = i + 1;
            }
            return 0;
        }
        "#,
        &Target::word_addressed(4),
    );
    assert_eq!(err.kind, ErrorKind::WordAddressing);
    assert!(err.message.contains("restructure"), "{}", err.message);
}

#[test]
fn word_target_accepts_word_stride_indexing() {
    let (exit, _) = run_with(
        r#"
        var a: [int; 16];
        fn main() -> int {
            let i: int = 0;
            while i < 16 {
                a[i] = i;          // stride 4 == word size: fine
                i = i + 1;
            }
            return a[15];
        }
        "#,
        &Target::word_addressed(4),
        OffloadCachePolicy::Naive,
    );
    assert_eq!(exit, 15);
}

#[test]
fn word_target_pointer_arithmetic_rules() {
    // `char* q = p + 4` legal (whole word), `p + 1` illegal for a
    // word-addressed destination, legal for a byte-addressed one.
    let legal_word = r#"
        var s: [char; 16];
        fn main() -> int {
            let p: char* = &s[0];
            let q: char* = p + 4;
            *q = 7;
            return s[4];
        }
    "#;
    let (exit, _) = run_with(
        legal_word,
        &Target::word_addressed(4),
        OffloadCachePolicy::Naive,
    );
    assert_eq!(exit, 7);

    let illegal = r#"
        var s: [char; 16];
        fn main() -> int {
            let p: char* = &s[0];
            let q: char* = p + 1;
            return 0;
        }
    "#;
    let err = compile_err(illegal, &Target::word_addressed(4));
    assert_eq!(err.kind, ErrorKind::WordAddressing);
    assert!(err.message.contains("byte*"), "{}", err.message);

    let legal_byte = r#"
        var s: [char; 16];
        fn main() -> int {
            let p: char* = &s[0];
            let q: char byte* = p + 1;
            *q = 9;
            return s[1];
        }
    "#;
    let (exit, _) = run_with(
        legal_byte,
        &Target::word_addressed(4),
        OffloadCachePolicy::Naive,
    );
    assert_eq!(exit, 9);
}

#[test]
fn variable_byte_arithmetic_on_word_target_is_rejected_even_via_byte_ptr() {
    // The paper: adding an integer *variable* to a pointer produces a
    // variable byte-pointer — always a compile error under the hybrid.
    let err = compile_err(
        r#"
        var s: [char; 16];
        fn main() -> int {
            let x: int = 3;
            let p: char* = &s[0];
            let q: char byte* = p + x;
            return 0;
        }
        "#,
        &Target::word_addressed(4),
    );
    assert_eq!(err.kind, ErrorKind::WordAddressing);
}

#[test]
fn byte_emulation_accepts_everything_but_costs_more() {
    let source = r#"
        var s: [char; 64];
        var sum: int;
        fn main() -> int {
            let i: int = 0;
            while i < 64 {
                s[i] = i;
                i = i + 1;
            }
            i = 0;
            while i < 64 {
                sum = sum + s[i];
                i = i + 1;
            }
            return sum;
        }
    "#;
    // Hybrid rejects it…
    let err = compile_err(source, &Target::word_addressed(4));
    assert_eq!(err.kind, ErrorKind::WordAddressing);

    // …byte emulation runs it, but slower than a plain byte-addressed
    // target.
    let emulated = Target::word_addressed(4).with_strategy(offload_lang::WordStrategy::ByteEmulate);
    let program = compile(source, &emulated).unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert_eq!(vm.run(&mut machine).unwrap(), 2016);
    let emulated_cycles = machine.host_now();

    let program = compile(source, &Target::cell_like()).unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert_eq!(vm.run(&mut machine).unwrap(), 2016);
    let native_cycles = machine.host_now();

    assert!(
        emulated_cycles > native_cycles,
        "byte emulation must pay: {emulated_cycles} vs {native_cycles}"
    );
}

// ------------------------------------------------------------ cost shapes

#[test]
fn software_cache_beats_naive_outer_access() {
    let source = r#"
        var data: [int; 256];
        var sum: int;
        fn main() -> int {
            let i: int = 0;
            while i < 256 { data[i] = i; i = i + 1; }
            offload {
                let j: int = 0;
                let acc: int = 0;
                while j < 256 { acc = acc + data[j]; j = j + 1; }
                sum = acc;
            }
            return sum;
        }
    "#;
    let (exit_naive, naive) = run_timed(source, OffloadCachePolicy::Naive);
    let (exit_cached, cached) = run_timed(
        source,
        OffloadCachePolicy::Cached(softcache::CacheConfig::direct_mapped_4k()),
    );
    assert_eq!(exit_naive, 32640);
    assert_eq!(exit_cached, 32640);
    assert!(
        cached * 3 < naive,
        "the software cache should win >3x on a sequential scan: {cached} vs {naive}"
    );
}

#[test]
fn local_scratch_is_much_cheaper_than_outer_access() {
    // The same loop over local-store data vs outer data.
    let local = r#"
        var out: int;
        fn main() -> int {
            offload {
                let a: [int; 64] = ;
                let i: int = 0;
                while i < 64 { a[i] = i; i = i + 1; }
                let acc: int = 0;
                i = 0;
                while i < 64 { acc = acc + a[i]; i = i + 1; }
                out = acc;
            }
            return out;
        }
    "#
    .replace("= ;", ";");
    let outer = r#"
        var a: [int; 64];
        var out: int;
        fn main() -> int {
            offload {
                let i: int = 0;
                while i < 64 { a[i] = i; i = i + 1; }
                let acc: int = 0;
                i = 0;
                while i < 64 { acc = acc + a[i]; i = i + 1; }
                out = acc;
            }
            return out;
        }
    "#;
    let (e1, t_local) = run_timed(&local, OffloadCachePolicy::Naive);
    let (e2, t_outer) = run_timed(outer, OffloadCachePolicy::Naive);
    assert_eq!(e1, 2016);
    assert_eq!(e2, 2016);
    assert!(
        t_local * 10 < t_outer,
        "scratch-pad locality should dominate: {t_local} vs {t_outer}"
    );
}

// ------------------------------------------------------------- VM guards

#[test]
fn division_by_zero_is_trapped() {
    let program = compile(
        "fn main() -> int { let z: int = 0; return 1 / z; }",
        &Target::cell_like(),
    )
    .unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert!(matches!(
        vm.run(&mut machine),
        Err(VmError::DivideByZero { .. })
    ));
}

#[test]
fn runaway_recursion_overflows_the_stack() {
    let program = compile(
        "fn f(n: int) -> int { return f(n + 1); } fn main() -> int { return f(0); }",
        &Target::cell_like(),
    )
    .unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert!(matches!(vm.run(&mut machine), Err(VmError::StackOverflow)));
}

#[test]
fn infinite_loops_run_out_of_fuel() {
    let program = compile(
        "fn main() -> int { while true { } return 0; }",
        &Target::cell_like(),
    )
    .unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    vm.set_fuel(10_000);
    assert!(matches!(vm.run(&mut machine), Err(VmError::OutOfFuel)));
}

#[test]
fn missing_return_is_trapped() {
    let program = compile(
        "fn f(c: bool) -> int { if c { return 1; } } fn main() -> int { return f(false); }",
        &Target::cell_like(),
    )
    .unwrap();
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert!(matches!(
        vm.run(&mut machine),
        Err(VmError::MissingReturn { .. })
    ));
}

#[test]
fn compile_error_rendering_points_at_source() {
    let source = "fn main() -> int { let x: int = true; return x; }";
    let err = compile(source, &Target::cell_like()).unwrap_err();
    let rendered = err.render(source);
    assert!(rendered.contains("1:"));
    assert!(rendered.contains('^'));
}

// ------------------------------------------------- async offload handles

#[test]
fn named_offloads_run_and_join() {
    // The paper's Figure 2 shape, in the language.
    let (exit, _) = run_cell(
        r#"
        var a: int;
        var b: int;
        fn main() -> int {
            offload h1 { a = 30; }
            offload h2 { b = 12; }
            join h1;
            join h2;
            return a + b;
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn async_offloads_overlap_on_different_accelerators() {
    let spin = |name: &str, global: &str| {
        format!(
            r#"offload {name} {{
                let i: int = 0;
                let acc: int = 0;
                while i < 2000 {{ acc = acc + i; i = i + 1; }}
                {global} = acc;
            }}"#
        )
    };
    let sequential = "var a: int; var b: int;\nfn main() -> int {\n  offload { let i: int = 0; let acc: int = 0; while i < 2000 { acc = acc + i; i = i + 1; } a = acc; }\n  offload { let i: int = 0; let acc: int = 0; while i < 2000 { acc = acc + i; i = i + 1; } b = acc; }\n  return a - b;\n}".to_string();
    let parallel = format!(
        "var a: int; var b: int;\nfn main() -> int {{\n  {}\n  {}\n  join h1;\n  join h2;\n  return a - b;\n}}",
        spin("h1", "a"),
        spin("h2", "b"),
    );
    let (exit_seq, t_seq) = run_timed(&sequential, OffloadCachePolicy::Naive);
    let (exit_par, t_par) = run_timed(&parallel, OffloadCachePolicy::Naive);
    assert_eq!(exit_seq, 0);
    assert_eq!(exit_par, 0);
    assert!(
        (t_par as f64) < 0.7 * t_seq as f64,
        "named offloads overlap on different accelerators: {t_par} vs {t_seq}"
    );
}

#[test]
fn host_work_overlaps_an_async_offload() {
    // Host computes between fork and join: total ≈ max, not sum.
    let source = r#"
        var accel_sum: int;
        var host_sum: int;
        fn main() -> int {
            offload h {
                let i: int = 0;
                let acc: int = 0;
                while i < 1000 { acc = acc + i; i = i + 1; }
                accel_sum = acc;
            }
            let j: int = 0;
            let acc: int = 0;
            while j < 1000 { acc = acc + j; j = j + 1; }
            host_sum = acc;
            join h;
            return accel_sum - host_sum;
        }
    "#;
    let blocking = r#"
        var accel_sum: int;
        var host_sum: int;
        fn main() -> int {
            offload {
                let i: int = 0;
                let acc: int = 0;
                while i < 1000 { acc = acc + i; i = i + 1; }
                accel_sum = acc;
            }
            let j: int = 0;
            let acc: int = 0;
            while j < 1000 { acc = acc + j; j = j + 1; }
            host_sum = acc;
            return accel_sum - host_sum;
        }
    "#;
    let (exit_a, t_async) = run_timed(source, OffloadCachePolicy::Naive);
    let (exit_b, t_block) = run_timed(blocking, OffloadCachePolicy::Naive);
    assert_eq!(exit_a, 0);
    assert_eq!(exit_b, 0);
    assert!(
        t_async < t_block,
        "host work hides behind the async offload: {t_async} vs {t_block}"
    );
}

#[test]
fn joining_twice_is_a_runtime_error() {
    let program = compile(
        r#"
        var a: int;
        fn main() -> int {
            offload h { a = 1; }
            join h;
            join h;
            return a;
        }
        "#,
        &Target::cell_like(),
    )
    .unwrap();
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    let err = vm.run(&mut machine).unwrap_err();
    assert!(matches!(err, VmError::InvalidJoin { .. }), "{err}");
}

#[test]
fn joining_an_unknown_handle_is_a_compile_error() {
    let err = compile_err(
        "fn main() -> int { join nope; return 0; }",
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Resolve);
    assert!(err.message.contains("nope"));
}

#[test]
fn join_inside_an_offload_is_rejected() {
    let err = compile_err(
        r#"
        var a: int;
        fn main() -> int {
            offload h { a = 1; }
            offload { join h; }
            join h;
            return a;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Offload);
}

#[test]
fn unjoined_handles_are_drained_at_exit() {
    // The offload's effects are still observed: main's return reads the
    // global only after the implicit drain… which happens after main
    // returns, so the *exit value* sees the pre-offload value, but the
    // run completes without error (fire-and-forget).
    let (exit, _) = run_cell(
        r#"
        var a: int;
        fn main() -> int {
            a = 7;
            offload h { a = 99; }
            join h;
            return a;
        }
        "#,
    );
    assert_eq!(exit, 99);

    let (exit, _) = run_cell(
        r#"
        var a: int;
        fn main() -> int {
            a = 7;
            offload h { a = 99; }
            return 1;   // never joined explicitly; drained at exit
        }
        "#,
    );
    assert_eq!(exit, 1);
}

#[test]
fn vector_addressed_target_rejects_even_int_strides() {
    // On a PS2-VU-like 16-byte-unit target, even `int` (4-byte) strides
    // are sub-word: the same loop that is fine at W=4 is rejected at
    // W=16, and stride-16 structs pass.
    let int_loop = r#"
        var a: [int; 16];
        fn main() -> int {
            let i: int = 0;
            while i < 16 { a[i] = i; i = i + 1; }
            return a[15];
        }
    "#;
    assert!(compile(int_loop, &Target::word_addressed(4)).is_ok());
    let err = compile_err(int_loop, &Target::word_addressed(16));
    assert_eq!(err.kind, ErrorKind::WordAddressing);

    let vec4_loop = r#"
        struct Vec4 { x: float; y: float; z: float; w: float; }
        var a: [Vec4; 16];
        fn main() -> int {
            let i: int = 0;
            while i < 16 { a[i].x = 1.0; i = i + 1; }
            return 0;
        }
    "#;
    assert!(
        compile(vec4_loop, &Target::word_addressed(16)).is_ok(),
        "16-byte-stride element access is whole-unit"
    );
}

#[test]
fn methods_calling_methods_duplicate_transitively() {
    // Call-graph duplication follows method-to-function edges.
    let source = r#"
        fn helper(p: float*) -> float { return *p * 2.0; }
        class Body {
            mass: float;
            virtual fn weigh(g: float) -> float {
                return helper(&self.mass) * g;
            }
        }
        var b: Body*;
        var result: float;
        fn main() -> int {
            b = new Body;
            b.mass = 3.0;
            offload domain(Body.weigh) {
                result = b.weigh(10.0);
            }
            return float_to_int(result);
        }
    "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    // helper: host variant + the accelerator variant reached through the
    // offloaded method (whose self is outer, so &self.mass is outer).
    assert_eq!(program.stats.duplicates.get("helper"), Some(&2));
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert_eq!(vm.run(&mut machine).unwrap(), 60);
}

#[test]
fn deep_call_chains_work_across_the_offload_boundary() {
    let (exit, _) = run_cell(
        r#"
        fn f3(x: int) -> int { return x + 1; }
        fn f2(x: int) -> int { return f3(x) * 2; }
        fn f1(x: int) -> int { return f2(x) + f3(x); }
        var out: int;
        fn main() -> int {
            offload { out = f1(5); }
            return out + f1(5);
        }
        "#,
    );
    // f1(5) = f2(5)+f3(5) = 12+6 = 18; 18+18 = 36.
    assert_eq!(exit, 36);
}

// ------------------------------------------------------ offload captures

#[test]
fn offload_blocks_capture_host_locals_by_value() {
    // The paper: "some additional syntax is used to pass parameters to
    // the block" — Offload/Mini spells it `use(...)`.
    let (exit, _) = run_cell(
        r#"
        var out: int;
        fn main() -> int {
            let base: int = 30;
            let scale: int = 4;
            offload use(base, scale) {
                out = base * scale / 10 * 2 + base / 2 + scale - 1;
            }
            return out;   // 30*4/10*2 + 15 + 3 = 24+15+3
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn captured_pointers_become_outer_pointers() {
    // A host pointer captured by value points into outer memory: the
    // block dereferences it through DMA, and assigning it to a local
    // pointer is a memory-space error.
    let (exit, _) = run_cell(
        r#"
        var g: int;
        fn main() -> int {
            g = 40;
            let p: int* = &g;
            offload use(p) {
                *p = *p + 2;
            }
            return g;
        }
        "#,
    );
    assert_eq!(exit, 42);

    let err = compile_err(
        r#"
        var g: int;
        fn main() -> int {
            let p: int* = &g;
            offload use(p) {
                let x: int = 0;
                let q: int* = &x;
                q = p;          // outer into local: rejected
            }
            return 0;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::MemorySpace);
}

#[test]
fn captures_work_with_async_handles_and_domains() {
    let (exit, _) = run_cell(
        r#"
        class Acc {
            total: int;
            virtual fn add(k: int) { self.total = self.total + k; }
        }
        var acc: Acc*;
        fn main() -> int {
            acc = new Acc;
            let step: int = 21;
            offload h use(step) domain(Acc.add) {
                acc.add(step);
                acc.add(step);
            }
            join h;
            return acc.total;
        }
        "#,
    );
    assert_eq!(exit, 42);
}

#[test]
fn capturing_unknown_or_aggregate_locals_is_rejected() {
    let err = compile_err(
        "fn main() -> int { offload use(nope) { } return 0; }",
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Resolve);

    let err = compile_err(
        r#"
        struct Big { a: int; b: int; }
        fn main() -> int {
            let v: Big;
            offload use(v) { }
            return 0;
        }
        "#,
        &Target::cell_like(),
    );
    assert_eq!(err.kind, ErrorKind::Offload);
    assert!(err.message.contains("pointer"), "{}", err.message);
}

#[test]
fn captures_are_copies_not_references() {
    let (exit, _) = run_cell(
        r#"
        var out: int;
        fn main() -> int {
            let x: int = 10;
            offload use(x) {
                x = 99;        // mutates the block's copy only
                out = x;
            }
            return x + out;    // 10 + 99
        }
        "#,
    );
    assert_eq!(exit, 109);
}

#[test]
fn nested_pointers_track_spaces_through_double_deref() {
    let (exit, _) = run_cell(
        r#"
        var g: int;
        var gp: int*;
        fn main() -> int {
            g = 5;
            gp = &g;
            offload {
                let pp: int** = &gp;    // outer pointer to an outer pointer
                let v: int = **pp;      // two dependent outer loads
                g = v + 1;
            }
            return g;
        }
        "#,
    );
    assert_eq!(exit, 6);
}

#[test]
fn rebinding_a_live_handle_implicitly_joins_the_old_offload() {
    let (exit, _) = run_cell(
        r#"
        var a: int;
        var b: int;
        fn main() -> int {
            offload h { a = 11; }
            offload h { b = 31; }   // rebinds: the first offload is joined
            join h;
            return a + b;
        }
        "#,
    );
    assert_eq!(exit, 42);
}
