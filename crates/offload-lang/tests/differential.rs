//! Differential test: superinstruction fusion must be invisible.
//!
//! For a corpus of seeded random (well-typed by construction)
//! Offload/Mini programs, each source is compiled twice — peephole
//! fusion on and off — and both binaries run on fresh machines. Every
//! observable of the simulated execution must be bit-identical:
//!
//! - exit value and printed output,
//! - simulated host cycles ([`Machine::host_now`]),
//! - retired instruction count (fused handlers bump the counter by
//!   their full run width),
//! - the Chrome-trace JSON of the event timeline, on a second pair of
//!   runs with the [`simcell::EventLog`] enabled. Enabling events also
//!   disables the DMA synchronous fast path, so the corpus exercises
//!   both the fast and the fully-journalled outer-access paths.
//!
//! The test also asserts that fusion actually fires across the corpus
//! — a peephole pass that silently stopped matching would otherwise
//! pass every identity check.

use offload_lang::{compile, Program, Target, Vm};
use simcell::{chrome_trace_json, Machine, MachineConfig};
use xrng::Rng;

/// One full run; returns every scalar observable plus the trace JSON
/// when `events` is on.
fn run(program: &Program, events: bool) -> (i32, Vec<String>, u64, u64, String) {
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    machine.events_mut().set_enabled(events);
    let mut vm = Vm::new(program, &mut machine).unwrap();
    let exit = vm.run(&mut machine).unwrap();
    let trace = if events {
        chrome_trace_json(machine.events())
    } else {
        String::new()
    };
    (
        exit,
        vm.output().to_vec(),
        machine.host_now(),
        vm.instructions_executed(),
        trace,
    )
}

fn int_op(rng: &mut Rng) -> &'static str {
    ["+", "-", "*"][rng.below_u32(3) as usize]
}

fn float_op(rng: &mut Rng) -> &'static str {
    ["+", "-", "*", "/"][rng.below_u32(4) as usize]
}

/// A short straight-line block over in-scope locals `a`/`b` (int) and
/// `x` (float): counter bumps, load/op pairs, safe constant divides,
/// calls — the exact shapes the peephole pass hunts for.
fn gen_block(rng: &mut Rng, with_call: bool) -> String {
    let mut out = String::new();
    for _ in 0..rng.range_u32(3, 8) {
        match rng.below_u32(if with_call { 5 } else { 4 }) {
            0 => out.push_str(&format!(
                "            a = a {} {};\n",
                int_op(rng),
                rng.range_u32(1, 9)
            )),
            1 => out.push_str(&format!("            b = b {} a;\n", int_op(rng))),
            2 => out.push_str(&format!(
                "            x = x {} {}.5;\n",
                float_op(rng),
                rng.range_u32(1, 7)
            )),
            3 => out.push_str(&format!(
                "            a = (a + b) / {};\n",
                rng.range_u32(2, 5)
            )),
            _ => out.push_str("            b = helper(b, a);\n"),
        }
    }
    out
}

/// Builds one random program: virtual dispatch through a domain, an
/// offload block with outer-pointer field traffic, a helper with its
/// own loop, and randomized straight-line arithmetic around it all.
fn gen_program(rng: &mut Rng) -> String {
    let outer_n = rng.range_u32(2, 5);
    let inner_m = rng.range_u32(2, 6);
    let hp0 = rng.range_u32(100, 900);
    let dmg = rng.range_u32(1, 4);
    let helper_body = gen_block(rng, false);
    let main_tail = gen_block(rng, true);
    let enemy_scale = rng.range_u32(2, 4);
    format!(
        r#"
        class Entity {{
            hp: float;
            virtual fn tick(d: float) {{ self.hp = self.hp - d; }}
        }}
        class Enemy : Entity {{
            override fn tick(d: float) {{ self.hp = self.hp - d * {enemy_scale}.0; }}
        }}
        var e: Entity*;
        var f: Entity*;
        var total: int;

        fn helper(a: int, b: int) -> int {{
            let x: float = 1.5;
            let i: int = 0;
            while i < 3 {{
{helper_body}                i = i + 1;
            }}
            return a + b + float_to_int(x);
        }}

        fn main() -> int {{
            e = new Enemy;
            f = new Entity;
            e.hp = {hp0}.0;
            f.hp = {hp0}.0;
            let a: int = {dmg};
            let b: int = 1;
            let x: float = 0.5;
            let i: int = 0;
            while i < {outer_n} {{
                offload domain(Entity.tick, Enemy.tick) {{
                    let j: int = 0;
                    while j < {inner_m} {{
                        e.tick({dmg}.0);
                        f.tick({dmg}.0);
                        j = j + 1;
                    }}
                }}
                total = helper(total, i);
                i = i + 1;
            }}
{main_tail}            print_int(a);
            print_int(b);
            print_float(x);
            print_float(e.hp);
            print_float(f.hp);
            return total + a + b;
        }}
        "#
    )
}

#[test]
fn fusion_is_invisible_across_random_corpus() {
    let mut rng = Rng::new(0x0ff1_0ad2_2026);
    let mut fused_total = 0usize;
    for case in 0..24u64 {
        let source = gen_program(&mut rng);
        let fused = compile(&source, &Target::cell_like())
            .map_err(|e| panic!("case {case}: compile (fused): {}", e.render(&source)))
            .unwrap();
        let plain = compile(&source, &Target::cell_like().with_superinstructions(false))
            .map_err(|e| panic!("case {case}: compile (plain): {}", e.render(&source)))
            .unwrap();
        assert_eq!(
            plain.stats.superinstructions, 0,
            "case {case}: fusion disabled means zero superinstructions"
        );
        fused_total += fused.stats.superinstructions;

        // Fast path (events off): exit, output, cycles, instructions.
        let (exit_f, out_f, now_f, instrs_f, _) = run(&fused, false);
        let (exit_p, out_p, now_p, instrs_p, _) = run(&plain, false);
        assert_eq!(exit_f, exit_p, "case {case}: exit value diverged");
        assert_eq!(out_f, out_p, "case {case}: printed output diverged");
        assert_eq!(now_f, now_p, "case {case}: simulated cycles diverged");
        assert_eq!(
            instrs_f, instrs_p,
            "case {case}: instruction count diverged"
        );

        // Journalled path (events on): all of the above plus the
        // Chrome-trace JSON of the full event timeline.
        let (exit_f, out_f, now_f, instrs_f, trace_f) = run(&fused, true);
        let (exit_p, out_p, now_p, instrs_p, trace_p) = run(&plain, true);
        assert_eq!(exit_f, exit_p, "case {case}: exit value diverged (events)");
        assert_eq!(out_f, out_p, "case {case}: output diverged (events)");
        assert_eq!(now_f, now_p, "case {case}: cycles diverged (events)");
        assert_eq!(
            instrs_f, instrs_p,
            "case {case}: instructions diverged (events)"
        );
        assert_eq!(trace_f, trace_p, "case {case}: chrome trace diverged");
    }
    assert!(
        fused_total > 100,
        "fusion barely fired across the corpus ({fused_total} superinstructions) — \
         the peephole pass or the generator regressed"
    );
}
