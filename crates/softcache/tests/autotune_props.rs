//! Property tests for the cache-policy autotuner: the analytic cost
//! model vs exact simulated replay, over seeded random access patterns.
//!
//! Two contracts (both stated in `softcache::autotune`):
//!
//! - on 16-byte-aligned traces the model is **bit-exact** — local
//!   buffers are always DMA-aligned, so with aligned remote
//!   offsets/sizes no transfer pays the misalignment penalty the model
//!   is blind to;
//! - on arbitrary traces the model **never overestimates** and stays
//!   within `MODEL_ALIGNMENT_TOLERANCE` of the exact replay.

use softcache::autotune::{
    autotune, model_cycles, replay_exact, AccessRecord, TraceOp, TuneOptions,
    MODEL_ALIGNMENT_TOLERANCE,
};
use softcache::{CacheChoice, CacheConfig, WritePolicy};
use xrng::Rng;

/// The cache families the properties are checked against.
fn choices() -> Vec<CacheChoice> {
    vec![
        CacheChoice::Naive,
        CacheChoice::SetAssoc(CacheConfig::direct_mapped_4k()),
        CacheChoice::SetAssoc(CacheConfig::new(64, 64, 2)),
        CacheChoice::SetAssoc(CacheConfig::four_way_16k()),
        CacheChoice::SetAssoc(CacheConfig::new(128, 32, 4).write_policy(WritePolicy::WriteThrough)),
        CacheChoice::Stream(CacheConfig::new(512, 1, 1)),
    ]
}

/// A random trace over a 64 KiB extent: reads, writes and compute in
/// random order. `align` forces every offset/length to a 16-byte
/// multiple.
fn random_trace(rng: &mut Rng, records: usize, align: bool) -> Vec<AccessRecord> {
    let extent = 64 * 1024u32;
    let mut out = Vec::with_capacity(records);
    for _ in 0..records {
        let op = match rng.below_u32(10) {
            0 => TraceOp::Compute {
                cycles: u64::from(rng.below_u32(500)) + 1,
            },
            1..=3 => {
                let (offset, len) = random_span(rng, extent, align);
                TraceOp::Write { offset, len }
            }
            _ => {
                let (offset, len) = random_span(rng, extent, align);
                TraceOp::Read { offset, len }
            }
        };
        out.push(AccessRecord { span: 0, op });
    }
    out
}

fn random_span(rng: &mut Rng, extent: u32, align: bool) -> (u32, u32) {
    let mut len = rng.range_u32(1, 512);
    let mut offset = rng.below_u32(extent - len);
    if align {
        len = (len & !0xf).max(16);
        offset &= !0xf;
    }
    (offset, len)
}

#[test]
fn model_is_bit_exact_on_random_aligned_traces() {
    let mut rng = Rng::new(0xA117);
    let opts = TuneOptions::default();
    for round in 0..24 {
        let trace = random_trace(&mut rng, 200, true);
        for choice in choices() {
            let modeled = model_cycles(&choice, &trace, &opts);
            let exact = replay_exact(&choice, &trace, &opts).expect("replay succeeds");
            assert_eq!(
                modeled, exact,
                "round {round}: model drifted from exact replay for {choice}"
            );
        }
    }
}

#[test]
fn model_never_overestimates_and_stays_in_tolerance_on_unaligned_traces() {
    let mut rng = Rng::new(0xBAD_A119);
    let opts = TuneOptions::default();
    for round in 0..24 {
        let trace = random_trace(&mut rng, 200, false);
        for choice in choices() {
            let modeled = model_cycles(&choice, &trace, &opts);
            let exact = replay_exact(&choice, &trace, &opts).expect("replay succeeds");
            assert!(
                modeled <= exact,
                "round {round}: the alignment-blind model must never overestimate \
                 ({modeled} > {exact} for {choice})"
            );
            let drift = (exact - modeled) as f64 / exact as f64;
            assert!(
                drift <= MODEL_ALIGNMENT_TOLERANCE,
                "round {round}: model drift {drift:.3} exceeds the stated tolerance \
                 {MODEL_ALIGNMENT_TOLERANCE} for {choice} ({modeled} vs {exact})"
            );
        }
    }
}

#[test]
fn autotune_winner_is_exact_optimal_among_validated_candidates() {
    // The tuner's winner must be the exact-cycle minimum of whatever it
    // validated — on any random trace.
    let mut rng = Rng::new(0x0971_3a1e);
    let opts = TuneOptions::default();
    for _ in 0..8 {
        let trace = random_trace(&mut rng, 150, true);
        let report = autotune(&trace, &opts).expect("search space is valid");
        let winner = report.winner();
        let best_exact = report
            .candidates()
            .iter()
            .filter_map(|c| c.exact_cycles)
            .min()
            .expect("top-k candidates were validated");
        assert_eq!(winner.exact_cycles, Some(best_exact));
    }
}

#[test]
fn replay_is_deterministic_across_runs() {
    let mut rng = Rng::new(7);
    let trace = random_trace(&mut rng, 300, false);
    let opts = TuneOptions::default();
    for choice in choices() {
        let a = replay_exact(&choice, &trace, &opts).expect("replay succeeds");
        let b = replay_exact(&choice, &trace, &opts).expect("replay succeeds");
        assert_eq!(a, b, "replay must be deterministic for {choice}");
    }
}
