//! Cache geometry and policy configuration.

use std::fmt;

/// What happens on a cache write.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WritePolicy {
    /// Dirty lines are written back on eviction or flush (the default;
    /// best when writes exhibit locality).
    #[default]
    WriteBack,
    /// Every write is immediately sent to remote memory with a
    /// non-blocking `put` (the asynchronous write-through of Balart et
    /// al., LCPC 2008 — cited as reference 1 by the paper); `flush` waits for
    /// the outstanding puts.
    WriteThrough,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::WriteBack => write!(f, "write-back"),
            WritePolicy::WriteThrough => write!(f, "write-through"),
        }
    }
}

/// Geometry and cost parameters of a software cache.
///
/// Constructed with [`CacheConfig::new`] and refined with the builder
/// methods.
///
/// # Example
///
/// ```
/// use softcache::{CacheConfig, WritePolicy};
///
/// let config = CacheConfig::new(64, 32, 4)
///     .write_policy(WritePolicy::WriteThrough)
///     .probe_cost(3);
/// assert_eq!(config.capacity_bytes(), 64 * 32 * 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Line size in bytes (a power of two).
    pub line_size: u32,
    /// Number of sets (a power of two).
    pub num_sets: u32,
    /// Associativity; 1 is direct-mapped.
    pub ways: u32,
    /// Write handling.
    pub write: WritePolicy,
    /// Fixed software-lookup overhead per access, in cycles. This is the
    /// cost the paper says is "typically outweighed" by avoided
    /// transfers.
    pub lookup_cost: u64,
    /// Additional cycles per way probed during lookup.
    pub probe_cost: u64,
    /// Cycles to copy a hit value between the line buffer and the
    /// consumer (per 16-byte chunk, minimum 1).
    pub copy_cost: u64,
}

impl CacheConfig {
    /// Creates a configuration with the given geometry and default
    /// costs/policy.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` or `num_sets` is not a power of two, if
    /// `line_size < 16` (a DMA-friendly minimum), or if `ways == 0`.
    pub fn new(line_size: u32, num_sets: u32, ways: u32) -> CacheConfig {
        assert!(
            line_size.is_power_of_two() && line_size >= 16,
            "line size must be a power of two >= 16"
        );
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(ways > 0, "associativity must be at least 1");
        CacheConfig {
            line_size,
            num_sets,
            ways,
            write: WritePolicy::WriteBack,
            lookup_cost: 16,
            probe_cost: 2,
            copy_cost: 1,
        }
    }

    /// A small direct-mapped configuration (64 B lines × 64 sets = 4 KiB).
    pub fn direct_mapped_4k() -> CacheConfig {
        CacheConfig::new(64, 64, 1)
    }

    /// A 4-way 16 KiB configuration (128 B lines × 32 sets × 4 ways).
    pub fn four_way_16k() -> CacheConfig {
        CacheConfig::new(128, 32, 4)
    }

    /// Sets the write policy.
    #[must_use]
    pub fn write_policy(mut self, write: WritePolicy) -> CacheConfig {
        self.write = write;
        self
    }

    /// Sets the fixed per-access lookup cost.
    #[must_use]
    pub fn lookup_cost(mut self, cycles: u64) -> CacheConfig {
        self.lookup_cost = cycles;
        self
    }

    /// Sets the per-way probe cost.
    #[must_use]
    pub fn probe_cost(mut self, cycles: u64) -> CacheConfig {
        self.probe_cost = cycles;
        self
    }

    /// Sets the per-16-byte copy cost.
    #[must_use]
    pub fn copy_cost(mut self, cycles: u64) -> CacheConfig {
        self.copy_cost = cycles;
        self
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.line_size * self.num_sets * self.ways
    }

    /// Splits a remote byte offset into `(line_number, offset_in_line)`.
    pub fn split_offset(&self, offset: u32) -> (u32, u32) {
        (offset / self.line_size, offset % self.line_size)
    }

    /// The set a line number maps to.
    pub fn set_of(&self, line_number: u32) -> u32 {
        line_number % self.num_sets
    }

    /// Cycles charged for a lookup probing `ways_probed` ways.
    pub fn lookup_cycles(&self, ways_probed: u32) -> u64 {
        self.lookup_cost + self.probe_cost * u64::from(ways_probed)
    }

    /// Cycles charged to copy `len` bytes to/from a line buffer.
    pub fn copy_cycles(&self, len: u32) -> u64 {
        self.copy_cost * u64::from(len.div_ceil(16).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_helpers() {
        let c = CacheConfig::new(64, 32, 2);
        assert_eq!(c.capacity_bytes(), 64 * 32 * 2);
        assert_eq!(c.split_offset(0), (0, 0));
        assert_eq!(c.split_offset(63), (0, 63));
        assert_eq!(c.split_offset(64), (1, 0));
        assert_eq!(c.split_offset(200), (3, 8));
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(33), 1);
    }

    #[test]
    fn cost_helpers() {
        let c = CacheConfig::new(64, 32, 2)
            .lookup_cost(10)
            .probe_cost(3)
            .copy_cost(2);
        assert_eq!(c.lookup_cycles(2), 16);
        assert_eq!(c.copy_cycles(4), 2);
        assert_eq!(c.copy_cycles(64), 8);
        assert_eq!(c.copy_cycles(0), 2);
    }

    #[test]
    fn builder_chains() {
        let c = CacheConfig::direct_mapped_4k().write_policy(WritePolicy::WriteThrough);
        assert_eq!(c.ways, 1);
        assert_eq!(c.write, WritePolicy::WriteThrough);
        assert_eq!(CacheConfig::four_way_16k().capacity_bytes(), 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig::new(48, 32, 1);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_ways_panics() {
        let _ = CacheConfig::new(64, 32, 0);
    }

    #[test]
    fn write_policy_display() {
        assert_eq!(WritePolicy::WriteBack.to_string(), "write-back");
        assert_eq!(WritePolicy::WriteThrough.to_string(), "write-through");
    }
}
