//! Cache statistics.

use std::fmt;

/// Counters describing a cache's behaviour, for profiling-driven cache
/// selection (the paper: "the programmer must decide, based on
/// profiling, which cache is most suitable for a given offload").
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CacheStats {
    /// Total read accesses.
    pub reads: u64,
    /// Total write accesses.
    pub writes: u64,
    /// Line-grain hits.
    pub hits: u64,
    /// Line-grain misses (each triggers a line fetch).
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty lines written back (write-back) or puts issued
    /// (write-through).
    pub writebacks: u64,
    /// Lines whose fetch was satisfied by an earlier asynchronous
    /// prefetch.
    pub prefetch_hits: u64,
    /// Prefetched lines that were evicted before use.
    pub prefetch_wasted: u64,
    /// Bytes fetched from remote memory.
    pub bytes_fetched: u64,
    /// Bytes written back to remote memory.
    pub bytes_written_back: u64,
    /// Total cycles the cache added on top of a free access (lookup,
    /// copies, transfer stalls).
    pub cycles: u64,
}

impl CacheStats {
    /// Line-grain hit rate in `[0, 1]`; zero when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean cycles added per access; zero when there were no accesses.
    pub fn cycles_per_access(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.cycles as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.1}% hit rate, {} evictions, {} writebacks, {:.1} cycles/access",
            self.accesses(),
            self.hit_rate() * 100.0,
            self.evictions,
            self.writebacks,
            self.cycles_per_access(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.cycles_per_access(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn rates_compute() {
        let s = CacheStats {
            reads: 8,
            writes: 2,
            hits: 6,
            misses: 4,
            cycles: 100,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.cycles_per_access() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = CacheStats::default();
        assert!(s.to_string().contains("accesses"));
    }
}
