//! Software caches over explicit DMA.
//!
//! Paper §4.2: "Cache systems have been implemented in software for
//! diverse memory architectures to mitigate transfer overhead. Software
//! cache lookup introduces some overhead, but this is typically
//! outweighed by the performance increase from avoiding repeated
//! accesses to data via inter-memory transfers." Offload C++ routes
//! `__outer` pointer dereferences inside offload blocks through such a
//! cache, and ships *several* cache implementations "favouring different
//! types of application behaviour"; the programmer picks one by
//! profiling.
//!
//! This crate provides that cache family for the simulated machine:
//!
//! - [`SetAssociativeCache`]: N-way, LRU, write-back or write-through
//!   (1-way is the classic direct-mapped cache with the cheapest probe),
//! - [`StreamCache`]: a sequential-streaming cache that prefetches the
//!   next line asynchronously while the core works on the current one.
//!
//! All caches implement the object-safe [`SoftwareCache`] trait and
//! account their own cost in cycles; `bench` experiments E7 and E12
//! reproduce the paper's "no single winner" and "lookup overhead vs
//! repeated transfers" claims on top of them.
//!
//! # Example
//!
//! ```
//! use softcache::{CacheConfig, CacheStats};
//!
//! let config = CacheConfig::direct_mapped_4k();
//! assert_eq!(config.ways, 1, "direct-mapped means one way");
//! assert_eq!(config.capacity_bytes(), 4096);
//! let stats = CacheStats {
//!     hits: 3,
//!     misses: 1,
//!     ..CacheStats::default()
//! };
//! assert_eq!(stats.hit_rate(), 0.75);
//! ```

#![warn(missing_docs)]

pub mod autotune;
pub mod cache;
pub mod config;
pub mod stats;
pub mod stream;
pub mod tuned;

pub use autotune::{
    autotune, dominant_stride, AccessRecord, AccessTrace, CacheChoice, Candidate, ReuseHistogram,
    TraceOp, TuneOptions, TuneReport,
};
pub use cache::SetAssociativeCache;
pub use config::{CacheConfig, WritePolicy};
pub use stats::CacheStats;
pub use stream::StreamCache;
pub use tuned::TunedCache;

use dma::{DmaEngine, DmaError};
use memspace::{Addr, MemError, MemoryRegion, Pod};

/// The memories and DMA engine a cache operates against.
///
/// Borrowed fresh for every call so the cache itself stays independent
/// of the machine's ownership structure.
#[derive(Debug)]
pub struct CacheBacking<'a> {
    /// The remote (main) memory being cached.
    pub main: &'a mut MemoryRegion,
    /// The local store holding cache lines.
    pub ls: &'a mut MemoryRegion,
    /// The accelerator's DMA engine.
    pub dma: &'a mut DmaEngine,
}

/// Errors raised by software-cache operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheError {
    /// The address is not in the cached (remote) space.
    NotCacheable {
        /// The space the address named.
        space: memspace::SpaceId,
    },
    /// An underlying DMA failure.
    Dma(DmaError),
    /// An underlying memory failure.
    Memory(MemError),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::NotCacheable { space } => {
                write!(f, "address in space {space} is not cacheable by this cache")
            }
            CacheError::Dma(err) => write!(f, "DMA failure in software cache: {err}"),
            CacheError::Memory(err) => write!(f, "memory failure in software cache: {err}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::NotCacheable { .. } => None,
            CacheError::Dma(err) => Some(err),
            CacheError::Memory(err) => Some(err),
        }
    }
}

impl From<DmaError> for CacheError {
    fn from(err: DmaError) -> CacheError {
        CacheError::Dma(err)
    }
}

impl From<MemError> for CacheError {
    fn from(err: MemError) -> CacheError {
        CacheError::Memory(err)
    }
}

/// A software cache interposed between an accelerator core and remote
/// memory.
///
/// Every method takes the current cycle `now` and returns the cycle at
/// which the operation's result is available, charging lookup overhead,
/// line transfers and write-backs per its configuration.
pub trait SoftwareCache {
    /// Reads `out.len()` bytes from remote address `addr` through the
    /// cache.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is not in the cached space or an underlying
    /// transfer fails.
    fn read(
        &mut self,
        now: u64,
        addr: Addr,
        out: &mut [u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError>;

    /// Writes `data` to remote address `addr` through the cache.
    ///
    /// # Errors
    ///
    /// As for [`SoftwareCache::read`].
    fn write(
        &mut self,
        now: u64,
        addr: Addr,
        data: &[u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError>;

    /// Writes every dirty line back to remote memory and waits for the
    /// transfers to complete.
    ///
    /// # Errors
    ///
    /// As for [`SoftwareCache::read`].
    fn flush(&mut self, now: u64, backing: &mut CacheBacking<'_>) -> Result<u64, CacheError>;

    /// Drops all cached contents *without* writing anything back.
    /// Intended for cache-coherence points where remote memory is known
    /// to have changed under the cache.
    fn invalidate(&mut self);

    /// Access statistics so far.
    fn stats(&self) -> CacheStats;

    /// A short human-readable name ("direct-mapped 4KiB/64B", …) used in
    /// experiment tables.
    fn describe(&self) -> String;
}

/// Stack-buffer size for typed cache accesses; Pods up to this size
/// avoid heap allocation entirely.
const POD_STACK_BUF: usize = 64;

/// Typed convenience layer over any [`SoftwareCache`].
pub trait CacheExt: SoftwareCache {
    /// Reads one `T` through the cache.
    ///
    /// # Errors
    ///
    /// As for [`SoftwareCache::read`].
    fn read_pod<T: Pod>(
        &mut self,
        now: u64,
        addr: Addr,
        backing: &mut CacheBacking<'_>,
    ) -> Result<(T, u64), CacheError>
    where
        Self: Sized,
    {
        // Small Pods (the overwhelmingly common case) marshal through a
        // stack buffer; only oversized types fall back to the heap.
        let mut small = [0u8; POD_STACK_BUF];
        let mut large;
        let buf = if T::SIZE <= POD_STACK_BUF {
            &mut small[..T::SIZE]
        } else {
            large = vec![0u8; T::SIZE];
            &mut large[..]
        };
        let t = self.read(now, addr, buf, backing)?;
        Ok((T::read_from(buf), t))
    }

    /// Writes one `T` through the cache.
    ///
    /// # Errors
    ///
    /// As for [`SoftwareCache::write`].
    fn write_pod<T: Pod>(
        &mut self,
        now: u64,
        addr: Addr,
        value: &T,
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError>
    where
        Self: Sized,
    {
        let mut small = [0u8; POD_STACK_BUF];
        let mut large;
        let buf = if T::SIZE <= POD_STACK_BUF {
            &mut small[..T::SIZE]
        } else {
            large = vec![0u8; T::SIZE];
            &mut large[..]
        };
        value.write_to(buf);
        self.write(now, addr, buf, backing)
    }
}

impl<C: SoftwareCache> CacheExt for C {}
