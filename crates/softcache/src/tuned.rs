//! One runtime cache type for "whatever the tuner picked".
//!
//! The autotune search returns a [`CacheChoice`] — naive,
//! set-associative, or streaming. [`TunedCache`] holds either concrete
//! cache family behind one enum so offload code can carry the choice
//! without generics, and [`CacheChoice::build`] turns the value back
//! into a running cache over a given local store. A naive choice builds
//! no cache at all (`build` returns `None`): the tuner decided plain
//! outer accesses win, so there is nothing to interpose.

use memspace::{Addr, MemoryRegion, SpaceId};

use crate::autotune::CacheChoice;
use crate::{
    CacheBacking, CacheError, CacheStats, SetAssociativeCache, SoftwareCache, StreamCache,
};

/// A runtime cache built from an autotuned [`CacheChoice`].
///
/// Both concrete cache families behind one type, so offload code can
/// hold "whatever the tuner picked" without generics; a naive choice
/// builds no cache at all ([`CacheChoice::build`] returns `None`).
#[derive(Debug)]
pub enum TunedCache {
    /// The tuner picked a set-associative configuration.
    SetAssoc(SetAssociativeCache),
    /// The tuner picked a streaming (prefetch) configuration.
    Stream(StreamCache),
}

impl SoftwareCache for TunedCache {
    fn read(
        &mut self,
        now: u64,
        addr: Addr,
        out: &mut [u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        match self {
            TunedCache::SetAssoc(c) => c.read(now, addr, out, backing),
            TunedCache::Stream(c) => c.read(now, addr, out, backing),
        }
    }

    fn write(
        &mut self,
        now: u64,
        addr: Addr,
        data: &[u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        match self {
            TunedCache::SetAssoc(c) => c.write(now, addr, data, backing),
            TunedCache::Stream(c) => c.write(now, addr, data, backing),
        }
    }

    fn flush(&mut self, now: u64, backing: &mut CacheBacking<'_>) -> Result<u64, CacheError> {
        match self {
            TunedCache::SetAssoc(c) => c.flush(now, backing),
            TunedCache::Stream(c) => c.flush(now, backing),
        }
    }

    fn invalidate(&mut self) {
        match self {
            TunedCache::SetAssoc(c) => c.invalidate(),
            TunedCache::Stream(c) => c.invalidate(),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            TunedCache::SetAssoc(c) => c.stats(),
            TunedCache::Stream(c) => c.stats(),
        }
    }

    fn describe(&self) -> String {
        match self {
            TunedCache::SetAssoc(c) => c.describe(),
            TunedCache::Stream(c) => c.describe(),
        }
    }
}

impl CacheChoice {
    /// Builds the cache this choice describes, allocating its line
    /// buffers from `ls` and caching addresses in `remote_space`.
    /// Returns `None` for [`CacheChoice::Naive`].
    ///
    /// # Errors
    ///
    /// Fails if `ls` cannot fit the chosen configuration.
    pub fn build(
        &self,
        remote_space: SpaceId,
        ls: &mut MemoryRegion,
    ) -> Result<Option<TunedCache>, CacheError> {
        Ok(match self {
            CacheChoice::Naive => None,
            CacheChoice::SetAssoc(config) => Some(TunedCache::SetAssoc(SetAssociativeCache::new(
                *config,
                remote_space,
                ls,
            )?)),
            CacheChoice::Stream(config) => Some(TunedCache::Stream(StreamCache::new(
                *config,
                remote_space,
                ls,
            )?)),
        })
    }

    /// For a streaming choice, the double-buffered chunk depth the §4.1
    /// streaming helpers should adopt: the tuned line size in elements
    /// of size `elem_size` bytes (at least 1). Returns `None` unless the
    /// choice is [`CacheChoice::Stream`] — the other families do not
    /// describe a sequential prefetch depth.
    pub fn stream_chunk_elems(&self, elem_size: u32) -> Option<u32> {
        match self {
            CacheChoice::Stream(config) => Some((config.line_size / elem_size.max(1)).max(1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;
    use memspace::SpaceKind;

    fn test_ls() -> MemoryRegion {
        MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            64 * 1024,
        )
    }

    #[test]
    fn naive_builds_nothing_and_has_no_chunk_depth() {
        let mut ls = test_ls();
        assert!(CacheChoice::Naive
            .build(SpaceId::MAIN, &mut ls)
            .unwrap()
            .is_none());
        assert!(CacheChoice::Naive.stream_chunk_elems(4).is_none());
    }

    #[test]
    fn both_cache_families_build() {
        let mut ls = test_ls();
        let assoc = CacheChoice::SetAssoc(CacheConfig::four_way_16k())
            .build(SpaceId::MAIN, &mut ls)
            .unwrap()
            .unwrap();
        assert!(matches!(assoc, TunedCache::SetAssoc(_)));
        let stream = CacheChoice::Stream(CacheConfig::new(1024, 1, 1))
            .build(SpaceId::MAIN, &mut ls)
            .unwrap()
            .unwrap();
        assert!(matches!(stream, TunedCache::Stream(_)));
    }

    #[test]
    fn stream_chunk_depth_is_line_size_in_elements() {
        let stream = CacheChoice::Stream(CacheConfig::new(1024, 1, 1));
        assert_eq!(stream.stream_chunk_elems(4), Some(256));
        assert_eq!(stream.stream_chunk_elems(2048), Some(1), "never zero");
        let assoc = CacheChoice::SetAssoc(CacheConfig::four_way_16k());
        assert!(assoc.stream_chunk_elems(4).is_none());
    }
}
