//! The set-associative software cache (1-way = direct-mapped).

use dma::{Tag, TagMask};
use memspace::{Addr, AddrRange, SpaceId};

use crate::config::{CacheConfig, WritePolicy};
use crate::stats::CacheStats;
use crate::{CacheBacking, CacheError, SoftwareCache};

/// DMA tag used for line fetches.
const FETCH_TAG: u8 = 31;
/// DMA tag used for write-backs and write-through puts.
const WRITE_TAG: u8 = 30;

#[derive(Clone, Copy, Debug)]
struct LineMeta {
    valid: bool,
    dirty: bool,
    line_number: u32,
    /// Bytes actually resident (lines at the very end of remote memory
    /// may be short).
    len: u32,
    last_use: u64,
}

impl LineMeta {
    fn empty() -> LineMeta {
        LineMeta {
            valid: false,
            dirty: false,
            line_number: 0,
            len: 0,
            last_use: 0,
        }
    }
}

/// An N-way set-associative software cache with LRU replacement.
///
/// With `ways == 1` this is the classic direct-mapped software cache:
/// the cheapest lookup, but prone to conflict misses — one of the
/// behaviour trade-offs that forces the profiling-driven cache choice
/// the paper describes. Line data lives in the accelerator's local
/// store (allocated at construction); metadata lives host-side in this
/// struct, mirroring how real SPU software caches reserve a local-store
/// arena.
///
/// # Example
///
/// ```
/// use dma::DmaEngine;
/// use memspace::{Addr, MemoryRegion, SpaceId, SpaceKind};
/// use softcache::{CacheBacking, CacheConfig, SetAssociativeCache, SoftwareCache};
///
/// # fn main() -> Result<(), softcache::CacheError> {
/// let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
/// let mut ls = MemoryRegion::new(
///     SpaceId::local_store(0),
///     SpaceKind::LocalStore { accel: 0 },
///     64 * 1024,
/// );
/// let mut dma = DmaEngine::new(SpaceId::local_store(0));
/// let mut cache = SetAssociativeCache::new(
///     CacheConfig::direct_mapped_4k(),
///     SpaceId::MAIN,
///     &mut ls,
/// )?;
///
/// main.write_bytes(Addr::new(SpaceId::MAIN, 128), &[42; 4])?;
/// let mut backing = CacheBacking { main: &mut main, ls: &mut ls, dma: &mut dma };
/// let mut out = [0u8; 4];
/// let t1 = cache.read(0, Addr::new(SpaceId::MAIN, 128), &mut out, &mut backing)?;
/// let t2 = cache.read(t1, Addr::new(SpaceId::MAIN, 132), &mut out, &mut backing)?;
/// assert!(t2 - t1 < t1, "second access hits and is much cheaper");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    remote_space: SpaceId,
    base: Addr,
    lines: Vec<LineMeta>,
    lru_clock: u64,
    stats: CacheStats,
    /// Remote ranges with write-through puts still in flight.
    wt_pending: Vec<AddrRange>,
}

impl SetAssociativeCache {
    /// Creates a cache over `remote_space`, allocating its line arena
    /// from `ls`.
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot fit the configured capacity.
    pub fn new(
        config: CacheConfig,
        remote_space: SpaceId,
        ls: &mut memspace::MemoryRegion,
    ) -> Result<SetAssociativeCache, CacheError> {
        let base = ls.alloc(config.capacity_bytes(), memspace::DMA_ALIGN)?;
        Ok(SetAssociativeCache {
            config,
            remote_space,
            base,
            lines: vec![LineMeta::empty(); (config.num_sets * config.ways) as usize],
            lru_clock: 0,
            stats: CacheStats::default(),
            wt_pending: Vec::new(),
        })
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn fetch_tag(&self) -> Tag {
        Tag::new(FETCH_TAG).expect("constant tag is valid")
    }

    fn write_tag(&self) -> Tag {
        Tag::new(WRITE_TAG).expect("constant tag is valid")
    }

    fn slot_index(&self, set: u32, way: u32) -> usize {
        (set * self.config.ways + way) as usize
    }

    fn line_buffer(&self, set: u32, way: u32) -> Addr {
        self.base
            .offset_by((set * self.config.ways + way) * self.config.line_size)
            .expect("line arena fits the local store")
    }

    /// Ensures `line_number` is resident; returns `(set, way, time)`.
    fn ensure_line(
        &mut self,
        now: u64,
        line_number: u32,
        backing: &mut CacheBacking<'_>,
    ) -> Result<(u32, u32, u64), CacheError> {
        let set = self.config.set_of(line_number);
        self.lru_clock += 1;
        let clock = self.lru_clock;

        // Probe the set.
        for way in 0..self.config.ways {
            let slot = self.slot_index(set, way);
            if self.lines[slot].valid && self.lines[slot].line_number == line_number {
                self.lines[slot].last_use = clock;
                self.stats.hits += 1;
                let t = now + self.config.lookup_cycles(way + 1);
                return Ok((set, way, t));
            }
        }

        // Miss: full probe, then pick a victim (invalid first, else LRU).
        self.stats.misses += 1;
        let mut t = now + self.config.lookup_cycles(self.config.ways);
        let victim = (0..self.config.ways)
            .min_by_key(|&way| {
                let meta = self.lines[self.slot_index(set, way)];
                (meta.valid, meta.last_use)
            })
            .expect("ways >= 1");
        let slot = self.slot_index(set, victim);
        let buffer = self.line_buffer(set, victim);

        // A write-through put may still be streaming out of the victim's
        // buffer; refilling it now would race the put. Drain first.
        if !self.wt_pending.is_empty() {
            self.wt_pending.clear();
            t = backing.dma.wait(TagMask::from(self.write_tag()), t);
        }

        // Write the victim back if needed.
        let evicted = self.lines[slot];
        if evicted.valid {
            self.stats.evictions += 1;
            if evicted.dirty {
                let remote = Addr::new(
                    self.remote_space,
                    evicted.line_number * self.config.line_size,
                );
                let resume = backing.dma.put(
                    t,
                    buffer,
                    remote,
                    evicted.len,
                    self.write_tag(),
                    backing.main,
                    backing.ls,
                )?;
                t = backing.dma.wait(self.write_tag().mask(), resume);
                self.stats.writebacks += 1;
                self.stats.bytes_written_back += u64::from(evicted.len);
            }
        }

        // Fetch the new line (clipped at the end of remote memory).
        let line_start = line_number * self.config.line_size;
        let len = self
            .config
            .line_size
            .min(backing.main.capacity().saturating_sub(line_start));
        debug_assert!(len > 0, "caller validated the access is in bounds");
        let remote = Addr::new(self.remote_space, line_start);
        let resume = backing.dma.get(
            t,
            buffer,
            remote,
            len,
            self.fetch_tag(),
            backing.main,
            backing.ls,
        )?;
        t = backing.dma.wait(self.fetch_tag().mask(), resume);
        self.stats.bytes_fetched += u64::from(len);

        self.lines[slot] = LineMeta {
            valid: true,
            dirty: false,
            line_number,
            len,
            last_use: clock,
        };
        Ok((set, victim, t))
    }

    fn check_space(&self, addr: Addr) -> Result<(), CacheError> {
        if addr.space() != self.remote_space {
            return Err(CacheError::NotCacheable {
                space: addr.space(),
            });
        }
        Ok(())
    }

    /// Waits for write-through puts whose remote range overlaps `range`.
    fn drain_conflicting_puts(
        &mut self,
        now: u64,
        range: AddrRange,
        backing: &mut CacheBacking<'_>,
    ) -> u64 {
        if self.wt_pending.iter().any(|r| r.overlaps(range)) {
            self.wt_pending.clear();
            backing.dma.wait(TagMask::from(self.write_tag()), now)
        } else {
            now
        }
    }
}

impl SoftwareCache for SetAssociativeCache {
    fn read(
        &mut self,
        now: u64,
        addr: Addr,
        out: &mut [u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        self.check_space(addr)?;
        self.stats.reads += 1;
        let mut t = now;
        let mut done = 0u32;
        let total = out.len() as u32;
        while done < total {
            let offset = addr.offset() + done;
            let (line_number, in_line) = self.config.split_offset(offset);
            let chunk = (self.config.line_size - in_line).min(total - done);
            let (set, way, after) = self.ensure_line(t, line_number, backing)?;
            t = after + self.config.copy_cycles(chunk);
            let buffer = self.line_buffer(set, way).offset_by(in_line)?;
            backing
                .ls
                .read_into(buffer, &mut out[done as usize..(done + chunk) as usize])?;
            done += chunk;
        }
        self.stats.cycles += t - now;
        Ok(t)
    }

    fn write(
        &mut self,
        now: u64,
        addr: Addr,
        data: &[u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        self.check_space(addr)?;
        self.stats.writes += 1;
        let mut t = now;
        let mut done = 0u32;
        let total = data.len() as u32;
        while done < total {
            let offset = addr.offset() + done;
            let (line_number, in_line) = self.config.split_offset(offset);
            let chunk = (self.config.line_size - in_line).min(total - done);
            let (set, way, after) = self.ensure_line(t, line_number, backing)?;
            t = after + self.config.copy_cycles(chunk);
            let buffer = self.line_buffer(set, way).offset_by(in_line)?;
            let slot = self.slot_index(set, way);
            match self.config.write {
                WritePolicy::WriteBack => {
                    backing
                        .ls
                        .write_bytes(buffer, &data[done as usize..(done + chunk) as usize])?;
                    self.lines[slot].dirty = true;
                }
                WritePolicy::WriteThrough => {
                    // An earlier asynchronous put of the same bytes must
                    // complete first, or the two unordered puts race.
                    let remote = Addr::new(self.remote_space, offset);
                    let range = AddrRange::new(remote, chunk)?;
                    t = self.drain_conflicting_puts(t, range, backing);
                    backing
                        .ls
                        .write_bytes(buffer, &data[done as usize..(done + chunk) as usize])?;
                    let resume = backing.dma.put(
                        t,
                        buffer,
                        remote,
                        chunk,
                        self.write_tag(),
                        backing.main,
                        backing.ls,
                    )?;
                    t = resume;
                    self.wt_pending.push(range);
                    self.stats.writebacks += 1;
                    self.stats.bytes_written_back += u64::from(chunk);
                }
            }
            done += chunk;
        }
        self.stats.cycles += t - now;
        Ok(t)
    }

    fn flush(&mut self, now: u64, backing: &mut CacheBacking<'_>) -> Result<u64, CacheError> {
        let mut t = now;
        for set in 0..self.config.num_sets {
            for way in 0..self.config.ways {
                let slot = self.slot_index(set, way);
                let meta = self.lines[slot];
                if meta.valid && meta.dirty {
                    let buffer = self.line_buffer(set, way);
                    let remote =
                        Addr::new(self.remote_space, meta.line_number * self.config.line_size);
                    t = backing.dma.put(
                        t,
                        buffer,
                        remote,
                        meta.len,
                        self.write_tag(),
                        backing.main,
                        backing.ls,
                    )?;
                    self.lines[slot].dirty = false;
                    self.stats.writebacks += 1;
                    self.stats.bytes_written_back += u64::from(meta.len);
                }
            }
        }
        let t = backing.dma.wait(TagMask::from(self.write_tag()), t);
        self.wt_pending.clear();
        self.stats.cycles += t - now;
        Ok(t)
    }

    fn invalidate(&mut self) {
        for meta in &mut self.lines {
            *meta = LineMeta::empty();
        }
        self.wt_pending.clear();
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn describe(&self) -> String {
        format!(
            "{}-way {} KiB / {} B lines ({})",
            self.config.ways,
            self.config.capacity_bytes() / 1024,
            self.config.line_size,
            self.config.write,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheExt;
    use dma::DmaEngine;
    use memspace::{MemoryRegion, SpaceKind};

    struct Rig {
        main: MemoryRegion,
        ls: MemoryRegion,
        dma: DmaEngine,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                main: MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 256 * 1024),
                ls: MemoryRegion::new(
                    SpaceId::local_store(0),
                    SpaceKind::LocalStore { accel: 0 },
                    memspace::LOCAL_STORE_SIZE,
                ),
                dma: DmaEngine::new(SpaceId::local_store(0)),
            }
        }

        fn backing(&mut self) -> CacheBacking<'_> {
            CacheBacking {
                main: &mut self.main,
                ls: &mut self.ls,
                dma: &mut self.dma,
            }
        }
    }

    fn addr(offset: u32) -> Addr {
        Addr::new(SpaceId::MAIN, offset)
    }

    #[test]
    fn miss_then_hit() {
        let mut rig = Rig::new();
        let mut cache =
            SetAssociativeCache::new(CacheConfig::direct_mapped_4k(), SpaceId::MAIN, &mut rig.ls)
                .unwrap();
        rig.main.write_pod(addr(256), &7u32).unwrap();

        let mut backing = rig.backing();
        let (v, t1) = cache.read_pod::<u32>(0, addr(256), &mut backing).unwrap();
        assert_eq!(v, 7);
        let (v, t2) = cache.read_pod::<u32>(t1, addr(260), &mut backing).unwrap();
        assert_eq!(v, 0);
        let miss_cost = t1;
        let hit_cost = t2 - t1;
        assert!(
            hit_cost < miss_cost / 5,
            "hit {hit_cost} vs miss {miss_cost}"
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn write_back_reaches_main_memory_on_flush() {
        let mut rig = Rig::new();
        let mut cache =
            SetAssociativeCache::new(CacheConfig::direct_mapped_4k(), SpaceId::MAIN, &mut rig.ls)
                .unwrap();
        let mut backing = rig.backing();
        let t = cache
            .write_pod(0, addr(512), &0xabcd_u16, &mut backing)
            .unwrap();
        // Not yet visible in main memory (write-back).
        assert_eq!(backing.main.read_pod::<u16>(addr(512)).unwrap(), 0);
        cache.flush(t, &mut backing).unwrap();
        assert_eq!(backing.main.read_pod::<u16>(addr(512)).unwrap(), 0xabcd);
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn write_through_reaches_main_memory_immediately() {
        let mut rig = Rig::new();
        let config = CacheConfig::direct_mapped_4k().write_policy(WritePolicy::WriteThrough);
        let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        cache
            .write_pod(0, addr(512), &0x1234_u16, &mut backing)
            .unwrap();
        assert_eq!(backing.main.read_pod::<u16>(addr(512)).unwrap(), 0x1234);
    }

    #[test]
    fn repeated_write_through_to_same_bytes_is_race_free() {
        let mut rig = Rig::new();
        let config = CacheConfig::direct_mapped_4k().write_policy(WritePolicy::WriteThrough);
        let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let mut t = 0;
        for i in 0..4u32 {
            t = cache.write_pod(t, addr(512), &i, &mut backing).unwrap();
        }
        cache.flush(t, &mut backing).unwrap();
        assert_eq!(backing.main.read_pod::<u32>(addr(512)).unwrap(), 3);
        assert_eq!(backing.dma.race_checker().detected(), 0);
    }

    #[test]
    fn eviction_writes_back_dirty_victim() {
        let mut rig = Rig::new();
        // Tiny direct-mapped cache: 16 B lines x 2 sets.
        let config = CacheConfig::new(16, 2, 1);
        let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        // Line 0 (set 0), dirty.
        let t = cache.write_pod(0, addr(0x20), &1u32, &mut backing).unwrap();
        // Line 2 also maps to set 0 -> evicts and writes back.
        let t = cache
            .read_pod::<u32>(t, addr(0x40), &mut backing)
            .unwrap()
            .1;
        assert_eq!(backing.main.read_pod::<u32>(addr(0x20)).unwrap(), 1);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().writebacks, 1);
        let _ = t;
    }

    #[test]
    fn two_way_avoids_the_direct_mapped_conflict() {
        // Alternate between two lines mapping to the same set: direct-
        // mapped thrashes, 2-way holds both. This is the "different
        // caches favour different behaviours" claim in miniature.
        let run = |ways: u32| {
            let mut rig = Rig::new();
            let config = CacheConfig::new(64, 8, ways);
            let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut rig.ls).unwrap();
            let mut backing = rig.backing();
            let mut t = 0;
            let stride = 64 * 8; // same set every time
            for _ in 0..8 {
                for line in 0..2u32 {
                    t = cache
                        .read_pod::<u32>(t, addr(line * stride), &mut backing)
                        .unwrap()
                        .1;
                }
            }
            (cache.stats().hit_rate(), t)
        };
        let (dm_rate, dm_time) = run(1);
        let (two_rate, two_time) = run(2);
        assert!(dm_rate < 0.01, "direct-mapped thrashes: {dm_rate}");
        assert!(two_rate > 0.85, "2-way holds both lines: {two_rate}");
        assert!(two_time < dm_time / 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        let mut rig = Rig::new();
        let config = CacheConfig::new(64, 1, 2); // one set, two ways
        let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let mut t = 0;
        // Touch lines 0, 1, then 0 again; loading line 2 must evict 1.
        for line in [0u32, 1, 0, 2] {
            t = cache
                .read_pod::<u32>(t, addr(line * 64), &mut backing)
                .unwrap()
                .1;
        }
        let misses_before = cache.stats().misses;
        t = cache.read_pod::<u32>(t, addr(0), &mut backing).unwrap().1;
        assert_eq!(cache.stats().misses, misses_before, "line 0 survived");
        cache.read_pod::<u32>(t, addr(64), &mut backing).unwrap();
        assert_eq!(
            cache.stats().misses,
            misses_before + 1,
            "line 1 was evicted"
        );
    }

    #[test]
    fn read_spanning_lines() {
        let mut rig = Rig::new();
        let config = CacheConfig::new(16, 8, 1);
        let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut rig.ls).unwrap();
        let data: Vec<u8> = (0..48).collect();
        rig.main.write_bytes(addr(8), &data).unwrap();
        let mut backing = rig.backing();
        let mut out = vec![0u8; 48];
        cache.read(0, addr(8), &mut out, &mut backing).unwrap();
        assert_eq!(out, data);
        assert_eq!(cache.stats().misses, 4, "touches lines 0..=3");
    }

    #[test]
    fn invalidate_drops_contents_without_writeback() {
        let mut rig = Rig::new();
        let mut cache =
            SetAssociativeCache::new(CacheConfig::direct_mapped_4k(), SpaceId::MAIN, &mut rig.ls)
                .unwrap();
        let mut backing = rig.backing();
        let t = cache.write_pod(0, addr(512), &9u32, &mut backing).unwrap();
        cache.invalidate();
        // The dirty data is lost (that is what invalidate means)...
        assert_eq!(backing.main.read_pod::<u32>(addr(512)).unwrap(), 0);
        // ...and the next read re-fetches from main memory.
        let (v, _) = cache.read_pod::<u32>(t, addr(512), &mut backing).unwrap();
        assert_eq!(v, 0);
    }

    #[test]
    fn local_store_addresses_are_rejected() {
        let mut rig = Rig::new();
        let mut cache =
            SetAssociativeCache::new(CacheConfig::direct_mapped_4k(), SpaceId::MAIN, &mut rig.ls)
                .unwrap();
        let mut backing = rig.backing();
        let mut out = [0u8; 4];
        let err = cache
            .read(
                0,
                Addr::new(SpaceId::local_store(0), 0),
                &mut out,
                &mut backing,
            )
            .unwrap_err();
        assert!(matches!(err, CacheError::NotCacheable { .. }));
    }

    #[test]
    fn stats_accumulate_cycles() {
        let mut rig = Rig::new();
        let mut cache =
            SetAssociativeCache::new(CacheConfig::direct_mapped_4k(), SpaceId::MAIN, &mut rig.ls)
                .unwrap();
        let mut backing = rig.backing();
        let t = cache.read_pod::<u32>(0, addr(0), &mut backing).unwrap().1;
        assert_eq!(cache.stats().cycles, t);
        assert!(cache.stats().bytes_fetched >= 64);
    }

    #[test]
    fn describe_mentions_geometry() {
        let mut rig = Rig::new();
        let cache =
            SetAssociativeCache::new(CacheConfig::four_way_16k(), SpaceId::MAIN, &mut rig.ls)
                .unwrap();
        let text = cache.describe();
        assert!(text.contains("4-way"));
        assert!(text.contains("16 KiB"));
    }
}
