//! Trace-driven cache-policy autotuning.
//!
//! Paper §4.2 says the right software cache is found by *profiling and
//! choosing*: "several cache implementations favouring different types
//! of application behaviour" ship with the runtime and the programmer
//! picks one per offload. This module closes that loop mechanically:
//!
//! 1. capture an [`AccessTrace`] of an offload's outer accesses
//!    (`simcell` records one when its access-trace mode is enabled),
//! 2. replay the trace through a lightweight analytic cost model for
//!    every candidate [`CacheChoice`] in a [`TuneOptions`] search grid
//!    ([`model_cycles`]),
//! 3. validate the top-k model picks with an *exact* simulated replay
//!    against the real cache implementations and DMA engine
//!    ([`replay_exact`]), and return the minimum-cycle configuration
//!    ([`autotune`]).
//!
//! The model replicates the caches' metadata machinery (LRU sets,
//! write-through pipelining, stream prefetch) and the DMA engine's
//! serial-channel timing exactly, with one deliberate simplification:
//! it is **alignment-blind** — it never charges the engine's
//! misalignment penalty. On DMA-aligned traces the model is therefore
//! bit-identical to the exact replay; on arbitrary traces it
//! underestimates by at most [`MODEL_ALIGNMENT_TOLERANCE`] (property
//! tests pin both bounds). The exact replay of the top-k candidates is
//! what the final ranking trusts.
//!
//! Traces with no [`dominant_stride`] — graph frontiers, hash probes —
//! get an extra treatment when [`TuneOptions::reuse_prune`] is on: an
//! LRU [`ReuseHistogram`] predicts each candidate capacity's misses
//! analytically (within [`REUSE_MISS_TOLERANCE`] of the real cache,
//! property-tested), and the search drops streaming candidates plus
//! any capacity that buys no predicted misses over a smaller one.

use std::fmt;

use dma::{DmaEngine, DmaTiming, Tag};
use memspace::{Addr, MemoryRegion, SpaceId, SpaceKind, DMA_ALIGN, LOCAL_STORE_SIZE};

use crate::cache::SetAssociativeCache;
use crate::config::{CacheConfig, WritePolicy};
use crate::stream::StreamCache;
use crate::{CacheBacking, CacheError, SoftwareCache};

/// Relative tolerance of the cost model on arbitrary (possibly
/// misaligned) traces: the model is alignment-blind, and the engine's
/// misalignment penalty (96 cycles under [`DmaTiming::cell_like`]) is at
/// most ~21% of the cheapest possible round trip it can attach to, so
/// the model never under-estimates the exact replay by more than this
/// fraction. On 16-byte-aligned traces the model is bit-exact.
pub const MODEL_ALIGNMENT_TOLERANCE: f64 = 0.25;

// ---- the captured trace --------------------------------------------------

/// One operation in a captured access trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// A read of `len` bytes from remote offset `offset`.
    Read {
        /// Byte offset in the remote (main) space.
        offset: u32,
        /// Length in bytes.
        len: u32,
    },
    /// A write of `len` bytes to remote offset `offset`.
    Write {
        /// Byte offset in the remote (main) space.
        offset: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Pure computation between accesses (needed so replayed totals
    /// match measured offload durations bit-for-bit).
    Compute {
        /// Cycles of computation.
        cycles: u64,
    },
}

impl TraceOp {
    /// Transfer length of the operation (0 for compute).
    pub fn len(&self) -> u32 {
        match *self {
            TraceOp::Read { len, .. } | TraceOp::Write { len, .. } => len,
            TraceOp::Compute { .. } => 0,
        }
    }

    /// Whether this operation transfers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One recorded access, tagged with the offload span it belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessRecord {
    /// Ordinal of the offload that issued the access (the machine's
    /// offload counter at the time, starting from 0).
    pub span: u32,
    /// The operation.
    pub op: TraceOp,
}

/// A captured access trace: the address/size/direction stream of an
/// offload's outer accesses, in issue order.
///
/// Disabled by default and allocation-free while disabled, mirroring the
/// event log's zero-cost-when-off contract. Enable with
/// [`AccessTrace::set_enabled`], run the workload, then hand
/// [`AccessTrace::records`] to [`autotune`].
#[derive(Debug, Default)]
pub struct AccessTrace {
    enabled: bool,
    records: Vec<AccessRecord>,
}

impl AccessTrace {
    /// Creates a disabled, empty trace.
    pub fn new() -> AccessTrace {
        AccessTrace::default()
    }

    /// Creates an enabled trace pre-filled with `records` (for building
    /// traces by hand in tests and tools).
    pub fn from_records(records: Vec<AccessRecord>) -> AccessTrace {
        AccessTrace {
            enabled: true,
            records,
        }
    }

    /// Enables or disables capture. Disabling keeps existing records.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether capture is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drops all records (capacity is released too, so a disabled trace
    /// goes back to owning no heap memory).
    pub fn clear(&mut self) {
        self.records = Vec::new();
    }

    /// The recorded accesses, in issue order.
    pub fn records(&self) -> &[AccessRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Heap capacity currently held (0 while disabled and never used —
    /// pinned by the zero-cost observability tests).
    pub fn capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Records a read; no-op (and allocation-free) while disabled.
    #[inline]
    pub fn record_read(&mut self, span: u32, offset: u32, len: u32) {
        if self.enabled && len > 0 {
            self.records.push(AccessRecord {
                span,
                op: TraceOp::Read { offset, len },
            });
        }
    }

    /// Records a write; no-op (and allocation-free) while disabled.
    #[inline]
    pub fn record_write(&mut self, span: u32, offset: u32, len: u32) {
        if self.enabled && len > 0 {
            self.records.push(AccessRecord {
                span,
                op: TraceOp::Write { offset, len },
            });
        }
    }

    /// Records pure compute cycles between accesses; consecutive compute
    /// records in the same span coalesce. No-op while disabled.
    #[inline]
    pub fn record_compute(&mut self, span: u32, cycles: u64) {
        if !self.enabled || cycles == 0 {
            return;
        }
        if let Some(last) = self.records.last_mut() {
            if last.span == span {
                if let TraceOp::Compute { cycles: ref mut c } = last.op {
                    *c += cycles;
                    return;
                }
            }
        }
        self.records.push(AccessRecord {
            span,
            op: TraceOp::Compute { cycles },
        });
    }

    /// The records belonging to one offload span.
    pub fn span_records(&self, span: u32) -> Vec<AccessRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| r.span == span)
            .collect()
    }

    /// One past the highest remote byte touched (0 if no transfers).
    pub fn max_extent(&self) -> u32 {
        max_extent(&self.records)
    }

    /// Whether the trace contains any write.
    pub fn has_writes(&self) -> bool {
        has_writes(&self.records)
    }
}

fn max_extent(records: &[AccessRecord]) -> u32 {
    records
        .iter()
        .map(|r| match r.op {
            TraceOp::Read { offset, len } | TraceOp::Write { offset, len } => {
                u64::from(offset) + u64::from(len)
            }
            TraceOp::Compute { .. } => 0,
        })
        .max()
        .unwrap_or(0)
        .min(u64::from(u32::MAX)) as u32
}

fn has_writes(records: &[AccessRecord]) -> bool {
    records
        .iter()
        .any(|r| matches!(r.op, TraceOp::Write { .. }))
}

// ---- irregular traces: reuse-distance analysis ---------------------------

/// Relative tolerance of the reuse-distance miss model on irregular
/// traces: the histogram predicts misses for a *fully associative* LRU
/// cache of the candidate's capacity, so a set-associative cache's
/// conflict misses are invisible to it. Property tests pin that the
/// prediction never undercounts the real cache's misses by more than
/// this fraction (mirroring [`MODEL_ALIGNMENT_TOLERANCE`] for cycles).
pub const REUSE_MISS_TOLERANCE: f64 = 0.25;

/// An LRU stack-distance histogram of a trace at one line granularity.
///
/// For every line-granule touch, the *reuse distance* is the number of
/// distinct lines touched since the previous touch of the same line
/// (cold touches have no distance). The classic stack property then
/// gives an analytic miss count for any capacity in one pass: a fully
/// associative LRU cache of `c` lines misses exactly the touches whose
/// distance is `>= c`, plus the cold touches
/// ([`ReuseHistogram::predicted_misses`]).
///
/// This is the autotuner's handle on *irregular* traces — graph
/// frontiers, hash probes — where stride detection
/// ([`dominant_stride`]) finds nothing and streaming prefetch is
/// useless, but capacity still matters in a way the histogram exposes
/// directly.
#[derive(Clone, Debug)]
pub struct ReuseHistogram {
    line_size: u32,
    /// `bins[d]` = touches whose reuse distance is exactly `d`.
    bins: Vec<u64>,
    cold: u64,
    touches: u64,
}

impl ReuseHistogram {
    /// Builds the histogram of `records` at `line_size` granularity
    /// (reads and writes both count as touches; compute records are
    /// ignored).
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two.
    pub fn from_records(records: &[AccessRecord], line_size: u32) -> ReuseHistogram {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let mut stack: Vec<u32> = Vec::new();
        let mut bins: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        let mut touches = 0u64;
        for rec in records {
            let (offset, len) = match rec.op {
                TraceOp::Read { offset, len } | TraceOp::Write { offset, len } => (offset, len),
                TraceOp::Compute { .. } => continue,
            };
            let first = offset / line_size;
            let last = (offset + len - 1) / line_size;
            for line in first..=last {
                touches += 1;
                match stack.iter().position(|&l| l == line) {
                    Some(depth) => {
                        if bins.len() <= depth {
                            bins.resize(depth + 1, 0);
                        }
                        bins[depth] += 1;
                        stack.remove(depth);
                    }
                    None => cold += 1,
                }
                stack.insert(0, line);
            }
        }
        ReuseHistogram {
            line_size,
            bins,
            cold,
            touches,
        }
    }

    /// The line granularity the histogram was built at.
    pub fn line_size(&self) -> u32 {
        self.line_size
    }

    /// Total line-granule touches observed.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Touches of never-before-seen lines (compulsory misses at any
    /// capacity).
    pub fn cold_touches(&self) -> u64 {
        self.cold
    }

    /// Analytic miss count for a fully associative LRU cache holding
    /// `capacity_lines` lines: cold touches plus every reuse at
    /// distance `>= capacity_lines`. Monotone non-increasing in
    /// capacity; equals [`ReuseHistogram::cold_touches`] once the
    /// capacity covers the whole reuse stack.
    pub fn predicted_misses(&self, capacity_lines: u32) -> u64 {
        let far: u64 = self
            .bins
            .iter()
            .skip(capacity_lines as usize)
            .copied()
            .sum();
        self.cold + far
    }
}

/// The dominant successive-access stride of a trace, if one exists: the
/// byte delta between consecutive transfer offsets that accounts for at
/// least half of all deltas. Streaming workloads report their stride;
/// irregular workloads (graph frontiers, hash probes) report `None`,
/// which is what flips [`autotune`] from stride thinking to the
/// reuse-distance histogram when [`TuneOptions::reuse_prune`] is set.
pub fn dominant_stride(records: &[AccessRecord]) -> Option<u32> {
    let offsets: Vec<i64> = records
        .iter()
        .filter_map(|r| match r.op {
            TraceOp::Read { offset, .. } | TraceOp::Write { offset, .. } => Some(i64::from(offset)),
            TraceOp::Compute { .. } => None,
        })
        .collect();
    if offsets.len() < 2 {
        return None;
    }
    let mut counts: std::collections::BTreeMap<i64, usize> = std::collections::BTreeMap::new();
    for pair in offsets.windows(2) {
        *counts.entry(pair[1] - pair[0]).or_insert(0) += 1;
    }
    let (delta, count) = counts
        .into_iter()
        .max_by_key(|&(delta, count)| (count, std::cmp::Reverse(delta.unsigned_abs())))
        .expect("at least one delta");
    if delta != 0 && count * 2 >= offsets.len() - 1 {
        u32::try_from(delta.unsigned_abs()).ok()
    } else {
        None
    }
}

/// Prunes the candidate list for an irregular trace using reuse
/// distances: streaming caches are dropped (next-line prefetch is pure
/// waste without a stride), and within each set-associative geometry
/// family (same line size, ways and write policy) only capacities that
/// strictly reduce the histogram's predicted misses survive — capacity
/// past the trace's reuse working set buys nothing, so the tuner stops
/// modelling it.
fn prune_irregular(choices: Vec<CacheChoice>, records: &[AccessRecord]) -> Vec<CacheChoice> {
    let mut histograms: Vec<(u32, ReuseHistogram)> = Vec::new();
    let mut predicted = |config: &CacheConfig| -> u64 {
        let line = config.line_size;
        if let Some((_, h)) = histograms.iter().find(|(l, _)| *l == line) {
            return h.predicted_misses(config.capacity_bytes() / line);
        }
        let h = ReuseHistogram::from_records(records, line);
        let misses = h.predicted_misses(config.capacity_bytes() / line);
        histograms.push((line, h));
        misses
    };
    // Group keys in first-seen order; within a group, candidates arrive
    // capacity-ascending (TuneOptions::candidates iterates capacities
    // outermost, so re-sort per group to be safe).
    let mut groups: Vec<((u32, u32, WritePolicy), Vec<CacheConfig>)> = Vec::new();
    let mut kept: Vec<CacheChoice> = Vec::new();
    for choice in choices {
        match choice {
            CacheChoice::Naive => kept.push(choice),
            CacheChoice::Stream(_) => {}
            CacheChoice::SetAssoc(config) => {
                let key = (config.line_size, config.ways, config.write);
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(config),
                    None => groups.push((key, vec![config])),
                }
            }
        }
    }
    for (_, mut members) in groups {
        members.sort_by_key(|c| c.capacity_bytes());
        let mut best = u64::MAX;
        for config in members {
            let misses = predicted(&config);
            if misses < best {
                best = misses;
                kept.push(CacheChoice::SetAssoc(config));
            }
        }
    }
    if kept.is_empty() {
        kept.push(CacheChoice::Naive);
    }
    kept
}

// ---- the candidate space -------------------------------------------------

/// A cache policy candidate: which cache family to interpose (if any)
/// and its geometry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheChoice {
    /// No cache: every access is a synchronous outer DMA round trip.
    Naive,
    /// An N-way set-associative cache ([`SetAssociativeCache`]).
    SetAssoc(CacheConfig),
    /// A two-buffer streaming cache ([`StreamCache`]; only `line_size`
    /// and the cost fields of the config apply).
    Stream(CacheConfig),
}

impl CacheChoice {
    /// The family name used when comparing against hand-picked winners:
    /// `"naive"`, `"set-associative"` or `"stream"`.
    pub fn family(&self) -> &'static str {
        match self {
            CacheChoice::Naive => "naive",
            CacheChoice::SetAssoc(_) => "set-associative",
            CacheChoice::Stream(_) => "stream",
        }
    }

    /// The cache configuration, if this choice uses a cache.
    pub fn config(&self) -> Option<CacheConfig> {
        match self {
            CacheChoice::Naive => None,
            CacheChoice::SetAssoc(c) | CacheChoice::Stream(c) => Some(*c),
        }
    }

    /// The write-policy-adjusted variant of this choice for an offload
    /// whose access-mode declarations are all `read`: the same
    /// geometry with [`WritePolicy::WriteThrough`], so no dirty line
    /// can ever form and the end-of-block flush has nothing to write
    /// back. For a genuinely read-only working set this costs the same
    /// cycles (stores are what the policies disagree on, and a store
    /// would be rejected as an undeclared write anyway) — the value is
    /// making "no deferred write-back exists" a property of the cache,
    /// not an accident of the access pattern.
    pub fn for_read_only(&self) -> CacheChoice {
        match self {
            CacheChoice::Naive => CacheChoice::Naive,
            CacheChoice::SetAssoc(c) => {
                CacheChoice::SetAssoc(c.write_policy(WritePolicy::WriteThrough))
            }
            CacheChoice::Stream(c) => {
                CacheChoice::Stream(c.write_policy(WritePolicy::WriteThrough))
            }
        }
    }
}

impl fmt::Display for CacheChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheChoice::Naive => write!(f, "no cache"),
            CacheChoice::SetAssoc(c) => {
                let cap = c.capacity_bytes();
                if cap.is_multiple_of(1024) {
                    write!(f, "{}-way {}K/{}B", c.ways, cap / 1024, c.line_size)?;
                } else {
                    write!(f, "{}-way {}B/{}B", c.ways, cap, c.line_size)?;
                }
                if c.write == WritePolicy::WriteThrough {
                    write!(f, " wt")?;
                }
                Ok(())
            }
            CacheChoice::Stream(c) => write!(f, "stream 2x{}B", c.line_size),
        }
    }
}

/// The search space and machine parameters for [`autotune`].
///
/// The machine-parameter defaults mirror `simcell`'s cell-like cost
/// model: [`DmaTiming::cell_like`], 6 cycles per 16-byte local-store
/// access, a 4 KiB staging buffer for naive outer accesses and a 1 MiB
/// main memory. Callers tuning for a differently configured machine
/// should overwrite them from its actual cost model.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// DMA timing of the target accelerator.
    pub dma: DmaTiming,
    /// Cycles per 16-byte local-store access (`CostModel::ls_access`).
    pub ls_access_cost: u64,
    /// Staging-buffer size used by naive outer accesses.
    pub staging_size: u32,
    /// Main-memory capacity (line fetches clip against it).
    pub main_capacity: u32,
    /// Local-store budget a candidate cache may occupy.
    pub ls_budget: u32,
    /// How many model-ranked candidates to validate with exact replay.
    pub top_k: usize,
    /// Whether "no cache" competes in the search.
    pub include_naive: bool,
    /// Candidate line sizes (powers of two ≥ 16).
    pub line_sizes: Vec<u32>,
    /// Candidate total capacities in bytes for set-associative caches.
    pub capacities: Vec<u32>,
    /// Candidate associativities.
    pub ways: Vec<u32>,
    /// Candidate line sizes for the streaming cache.
    pub stream_lines: Vec<u32>,
    /// Whether to also try write-through variants (only meaningful when
    /// the trace contains writes; read-only traces skip them).
    pub try_write_through: bool,
    /// Whether [`autotune`] should apply reuse-distance pruning to
    /// traces with no [`dominant_stride`]: streaming candidates are
    /// dropped and capacities past the reuse working set are skipped
    /// (see [`ReuseHistogram`]). Off by default so strided workloads
    /// and existing tuning gates are untouched; irregular workloads
    /// (E18's graph frontier) switch it on.
    pub reuse_prune: bool,
}

impl Default for TuneOptions {
    fn default() -> TuneOptions {
        TuneOptions {
            dma: DmaTiming::cell_like(),
            ls_access_cost: 6,
            staging_size: 4096,
            main_capacity: 1024 * 1024,
            ls_budget: 64 * 1024,
            top_k: 4,
            include_naive: true,
            line_sizes: vec![64, 128, 256],
            capacities: vec![4 * 1024, 8 * 1024, 16 * 1024],
            ways: vec![1, 2, 4],
            stream_lines: vec![256, 512, 1024],
            try_write_through: true,
            reuse_prune: false,
        }
    }
}

impl TuneOptions {
    /// Every candidate the options describe, given what the trace needs
    /// (write-through variants only appear for traces with writes).
    /// Always returns at least one choice.
    pub fn candidates(&self, records: &[AccessRecord]) -> Vec<CacheChoice> {
        let mut out = Vec::new();
        if self.include_naive {
            out.push(CacheChoice::Naive);
        }
        let writes = has_writes(records);
        for &cap in &self.capacities {
            if cap > self.ls_budget {
                continue;
            }
            for &line in &self.line_sizes {
                if !line.is_power_of_two() || line < DMA_ALIGN {
                    continue;
                }
                for &ways in &self.ways {
                    if ways == 0 || !cap.is_multiple_of(line * ways) {
                        continue;
                    }
                    let sets = cap / (line * ways);
                    if sets == 0 || !sets.is_power_of_two() {
                        continue;
                    }
                    let config = CacheConfig::new(line, sets, ways);
                    out.push(CacheChoice::SetAssoc(config));
                    if writes && self.try_write_through {
                        out.push(CacheChoice::SetAssoc(
                            config.write_policy(WritePolicy::WriteThrough),
                        ));
                    }
                }
            }
        }
        for &line in &self.stream_lines {
            if !line.is_power_of_two() || line < DMA_ALIGN {
                continue;
            }
            if 2 * line + DMA_ALIGN > self.ls_budget {
                continue;
            }
            out.push(CacheChoice::Stream(CacheConfig::new(line, 1, 1)));
        }
        if out.is_empty() {
            out.push(CacheChoice::Naive);
        }
        out
    }

    fn ls_cycles(&self, bytes: u32) -> u64 {
        self.ls_access_cost * u64::from(bytes.div_ceil(16).max(1))
    }

    fn effective_capacity(&self, records: &[AccessRecord]) -> u32 {
        self.main_capacity.max(max_extent(records))
    }
}

// ---- the analytic cost model ---------------------------------------------

/// The serial DMA channel, reduced to timing: one `free_at` horizon and
/// the engine's issue/setup/bandwidth/latency parameters. Deliberately
/// alignment-blind (see [`MODEL_ALIGNMENT_TOLERANCE`]).
struct ModelDma {
    timing: DmaTiming,
    free_at: u64,
}

impl ModelDma {
    fn new(timing: DmaTiming) -> ModelDma {
        ModelDma { timing, free_at: 0 }
    }

    /// Issues a non-blocking transfer; returns `(resume, complete_at)`.
    fn issue(&mut self, now: u64, bytes: u32) -> (u64, u64) {
        let bw = self.timing.bytes_per_cycle.max(1);
        let stream = self.timing.setup + u64::from(bytes).div_ceil(bw);
        let start = now.max(self.free_at);
        self.free_at = start + stream;
        (
            now + self.timing.issue_cost,
            self.free_at + self.timing.latency,
        )
    }

    /// A blocking issue-then-wait round trip.
    fn round_trip(&mut self, now: u64, bytes: u32) -> u64 {
        let (resume, complete) = self.issue(now, bytes);
        resume.max(complete)
    }
}

/// Metadata replica of [`SetAssociativeCache`]: same LRU, same victim
/// choice, same write-through pipelining — minus the data movement.
struct SetAssocModel {
    config: CacheConfig,
    lines: Vec<(bool, bool, u32, u32, u64)>, // (valid, dirty, line, len, last_use)
    lru_clock: u64,
    wt_pending: Vec<(u32, u32)>, // (remote start, len)
    wt_done_at: u64,
}

impl SetAssocModel {
    fn new(config: CacheConfig) -> SetAssocModel {
        SetAssocModel {
            config,
            lines: vec![(false, false, 0, 0, 0); (config.num_sets * config.ways) as usize],
            lru_clock: 0,
            wt_pending: Vec::new(),
            wt_done_at: 0,
        }
    }

    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.config.ways + way) as usize
    }

    fn ensure_line(&mut self, now: u64, line: u32, capacity: u32, dma: &mut ModelDma) -> u64 {
        let set = self.config.set_of(line);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        for way in 0..self.config.ways {
            let slot = self.slot(set, way);
            if self.lines[slot].0 && self.lines[slot].2 == line {
                self.lines[slot].4 = clock;
                return now + self.config.lookup_cycles(way + 1);
            }
        }
        let mut t = now + self.config.lookup_cycles(self.config.ways);
        let victim = (0..self.config.ways)
            .min_by_key(|&way| {
                let meta = self.lines[self.slot(set, way)];
                (meta.0, meta.4)
            })
            .expect("ways >= 1");
        let slot = self.slot(set, victim);
        if !self.wt_pending.is_empty() {
            self.wt_pending.clear();
            t = t.max(self.wt_done_at);
        }
        let (valid, dirty, _, evicted_len, _) = self.lines[slot];
        if valid && dirty {
            t = dma.round_trip(t, evicted_len);
        }
        let line_start = line * self.config.line_size;
        let len = self
            .config
            .line_size
            .min(capacity.saturating_sub(line_start));
        t = dma.round_trip(t, len);
        self.lines[slot] = (true, false, line, len, clock);
        t
    }

    fn read(
        &mut self,
        now: u64,
        offset: u32,
        total: u32,
        capacity: u32,
        dma: &mut ModelDma,
    ) -> u64 {
        let mut t = now;
        let mut done = 0u32;
        while done < total {
            let (line, in_line) = self.config.split_offset(offset + done);
            let chunk = (self.config.line_size - in_line).min(total - done);
            t = self.ensure_line(t, line, capacity, dma);
            t += self.config.copy_cycles(chunk);
            done += chunk;
        }
        t
    }

    fn write(
        &mut self,
        now: u64,
        offset: u32,
        total: u32,
        capacity: u32,
        dma: &mut ModelDma,
    ) -> u64 {
        let mut t = now;
        let mut done = 0u32;
        while done < total {
            let abs = offset + done;
            let (line, in_line) = self.config.split_offset(abs);
            let chunk = (self.config.line_size - in_line).min(total - done);
            t = self.ensure_line(t, line, capacity, dma);
            t += self.config.copy_cycles(chunk);
            match self.config.write {
                WritePolicy::WriteBack => {
                    // ensure_line re-ran the probe; mark the resident slot.
                    let set = self.config.set_of(line);
                    for w in 0..self.config.ways {
                        let slot = self.slot(set, w);
                        if self.lines[slot].0 && self.lines[slot].2 == line {
                            self.lines[slot].1 = true;
                        }
                    }
                }
                WritePolicy::WriteThrough => {
                    if self
                        .wt_pending
                        .iter()
                        .any(|&(s, l)| abs < s + l && s < abs + chunk)
                    {
                        self.wt_pending.clear();
                        t = t.max(self.wt_done_at);
                    }
                    let (resume, complete) = dma.issue(t, chunk);
                    t = resume;
                    self.wt_done_at = complete;
                    self.wt_pending.push((abs, chunk));
                }
            }
            done += chunk;
        }
        t
    }
}

/// Metadata replica of [`StreamCache`]: current/prefetched line tracking
/// plus the prefetch completion horizon.
struct StreamModel {
    config: CacheConfig,
    current: Option<(u32, u32)>,     // (line, len)
    prefetching: Option<(u32, u32)>, // (line, len)
    prefetch_done_at: u64,
}

impl StreamModel {
    fn new(config: CacheConfig) -> StreamModel {
        StreamModel {
            config,
            current: None,
            prefetching: None,
            prefetch_done_at: 0,
        }
    }

    fn line_len(&self, line: u32, capacity: u32) -> u32 {
        let start = line * self.config.line_size;
        self.config.line_size.min(capacity.saturating_sub(start))
    }

    fn issue_prefetch(&mut self, now: u64, line: u32, capacity: u32, dma: &mut ModelDma) -> u64 {
        let len = self.line_len(line, capacity);
        if len == 0 {
            return now;
        }
        let (resume, complete) = dma.issue(now, len);
        self.prefetching = Some((line, len));
        self.prefetch_done_at = complete;
        resume
    }

    fn cancel_prefetch(&mut self, now: u64) -> u64 {
        if self.prefetching.take().is_some() {
            now.max(self.prefetch_done_at)
        } else {
            now
        }
    }

    fn ensure_line(&mut self, now: u64, line: u32, capacity: u32, dma: &mut ModelDma) -> u64 {
        if let Some((current, _)) = self.current {
            if current == line {
                return now + self.config.lookup_cycles(1);
            }
        }
        if let Some(pending) = self.prefetching {
            if pending.0 == line {
                let mut t = now + self.config.lookup_cycles(2);
                t = t.max(self.prefetch_done_at);
                self.prefetching = None;
                self.current = Some(pending);
                return self.issue_prefetch(t, line + 1, capacity, dma);
            }
        }
        let mut t = now + self.config.lookup_cycles(2);
        t = self.cancel_prefetch(t);
        let len = self.line_len(line, capacity);
        t = dma.round_trip(t, len);
        self.current = Some((line, len));
        self.issue_prefetch(t, line + 1, capacity, dma)
    }

    fn read(
        &mut self,
        now: u64,
        offset: u32,
        total: u32,
        capacity: u32,
        dma: &mut ModelDma,
    ) -> u64 {
        let mut t = now;
        let mut done = 0u32;
        while done < total {
            let (line, in_line) = self.config.split_offset(offset + done);
            let chunk = (self.config.line_size - in_line).min(total - done);
            t = self.ensure_line(t, line, capacity, dma);
            t += self.config.copy_cycles(chunk);
            done += chunk;
        }
        t
    }

    fn write(&mut self, now: u64, offset: u32, total: u32, dma: &mut ModelDma) -> u64 {
        let mut t = now;
        let mut done = 0u32;
        while done < total {
            let chunk = (total - done).min(DMA_ALIGN);
            let abs = offset + done;
            if let Some((pl, plen)) = self.prefetching {
                let p_start = pl * self.config.line_size;
                let p_end = p_start + plen;
                if abs < p_end && p_start < abs + chunk {
                    t = self.cancel_prefetch(t);
                }
            }
            t = dma.round_trip(t, chunk);
            done += chunk;
        }
        t
    }
}

/// Predicts the total cycles of replaying `records` under `choice`
/// using the analytic model (no memory regions, no data movement).
///
/// Bit-identical to [`replay_exact`] on DMA-aligned traces; within
/// [`MODEL_ALIGNMENT_TOLERANCE`] (and never above the exact cost)
/// otherwise.
pub fn model_cycles(choice: &CacheChoice, records: &[AccessRecord], opts: &TuneOptions) -> u64 {
    let capacity = opts.effective_capacity(records);
    let mut dma = ModelDma::new(opts.dma);
    let mut t = 0u64;
    match choice {
        CacheChoice::Naive => {
            for rec in records {
                match rec.op {
                    TraceOp::Read { offset, len } => {
                        let _ = offset;
                        let mut done = 0u32;
                        while done < len {
                            let chunk = (len - done).min(opts.staging_size);
                            t = dma.round_trip(t, chunk);
                            t += opts.ls_cycles(chunk);
                            done += chunk;
                        }
                    }
                    TraceOp::Write { offset, len } => {
                        let _ = offset;
                        let mut done = 0u32;
                        while done < len {
                            let chunk = (len - done).min(opts.staging_size);
                            t += opts.ls_cycles(chunk);
                            t = dma.round_trip(t, chunk);
                            done += chunk;
                        }
                    }
                    TraceOp::Compute { cycles } => t += cycles,
                }
            }
        }
        CacheChoice::SetAssoc(config) => {
            let mut model = SetAssocModel::new(*config);
            for rec in records {
                match rec.op {
                    TraceOp::Read { offset, len } => {
                        t = model.read(t, offset, len, capacity, &mut dma);
                    }
                    TraceOp::Write { offset, len } => {
                        t = model.write(t, offset, len, capacity, &mut dma);
                    }
                    TraceOp::Compute { cycles } => t += cycles,
                }
            }
        }
        CacheChoice::Stream(config) => {
            let mut model = StreamModel::new(*config);
            for rec in records {
                match rec.op {
                    TraceOp::Read { offset, len } => {
                        t = model.read(t, offset, len, capacity, &mut dma);
                    }
                    TraceOp::Write { offset, len } => {
                        t = model.write(t, offset, len, &mut dma);
                    }
                    TraceOp::Compute { cycles } => t += cycles,
                }
            }
        }
    }
    t
}

// ---- exact replay --------------------------------------------------------

/// DMA tag for replayed naive outer accesses (mirrors the runtime's
/// reserved outer-access tag).
const REPLAY_OUTER_TAG: u8 = 27;

/// Replays `records` against the *real* cache implementation and DMA
/// engine, from cycle 0 on a fresh rig, and returns the total cycles.
///
/// Cache cycle accounting is fully self-contained (config costs plus the
/// DMA engine) and the engine's timing is translation-invariant from an
/// idle start, so this reproduces the in-offload cycle delta of the
/// traced run bit-for-bit when `opts` mirror the traced machine.
///
/// # Errors
///
/// Fails if a candidate cache cannot be built (local store budget) or a
/// replayed transfer is invalid.
pub fn replay_exact(
    choice: &CacheChoice,
    records: &[AccessRecord],
    opts: &TuneOptions,
) -> Result<u64, CacheError> {
    let capacity = opts.effective_capacity(records);
    let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, capacity);
    let mut ls = MemoryRegion::new(
        SpaceId::local_store(0),
        SpaceKind::LocalStore { accel: 0 },
        LOCAL_STORE_SIZE,
    );
    let mut dma = DmaEngine::with_timing(SpaceId::local_store(0), opts.dma);
    let max_len = records.iter().map(|r| r.op.len()).max().unwrap_or(0);
    let mut buf = vec![0u8; max_len as usize];

    match choice {
        CacheChoice::Naive => replay_naive(records, opts, &mut main, &mut ls, &mut dma),
        CacheChoice::SetAssoc(config) => {
            let mut cache = SetAssociativeCache::new(*config, SpaceId::MAIN, &mut ls)?;
            replay_cached(&mut cache, records, &mut main, &mut ls, &mut dma, &mut buf)
        }
        CacheChoice::Stream(config) => {
            let mut cache = StreamCache::new(*config, SpaceId::MAIN, &mut ls)?;
            replay_cached(&mut cache, records, &mut main, &mut ls, &mut dma, &mut buf)
        }
    }
}

fn replay_cached<C: SoftwareCache>(
    cache: &mut C,
    records: &[AccessRecord],
    main: &mut MemoryRegion,
    ls: &mut MemoryRegion,
    dma: &mut DmaEngine,
    buf: &mut [u8],
) -> Result<u64, CacheError> {
    let mut t = 0u64;
    for rec in records {
        match rec.op {
            TraceOp::Read { offset, len } => {
                let mut backing = CacheBacking { main, ls, dma };
                t = cache.read(
                    t,
                    Addr::new(SpaceId::MAIN, offset),
                    &mut buf[..len as usize],
                    &mut backing,
                )?;
            }
            TraceOp::Write { offset, len } => {
                let mut backing = CacheBacking { main, ls, dma };
                t = cache.write(
                    t,
                    Addr::new(SpaceId::MAIN, offset),
                    &buf[..len as usize],
                    &mut backing,
                )?;
            }
            TraceOp::Compute { cycles } => t += cycles,
        }
    }
    Ok(t)
}

/// Replays the naive outer-access path: each record is chunked through a
/// staging buffer with one blocking DMA round trip plus the local-store
/// copy charge per chunk — exactly what `AccelCtx`'s outer accessors do.
fn replay_naive(
    records: &[AccessRecord],
    opts: &TuneOptions,
    main: &mut MemoryRegion,
    ls: &mut MemoryRegion,
    dma: &mut DmaEngine,
) -> Result<u64, CacheError> {
    let staging = ls.alloc(opts.staging_size, DMA_ALIGN)?;
    let tag = Tag::new(REPLAY_OUTER_TAG).expect("constant tag is valid");
    let mut t = 0u64;
    for rec in records {
        match rec.op {
            TraceOp::Read { offset, len } => {
                let mut done = 0u32;
                while done < len {
                    let chunk = (len - done).min(opts.staging_size);
                    let remote = Addr::new(SpaceId::MAIN, offset + done);
                    let resume = dma.get(t, staging, remote, chunk, tag, main, ls)?;
                    t = dma.wait(tag.mask(), resume);
                    t += opts.ls_cycles(chunk);
                    done += chunk;
                }
            }
            TraceOp::Write { offset, len } => {
                let mut done = 0u32;
                while done < len {
                    let chunk = (len - done).min(opts.staging_size);
                    let remote = Addr::new(SpaceId::MAIN, offset + done);
                    t += opts.ls_cycles(chunk);
                    let resume = dma.put(t, staging, remote, chunk, tag, main, ls)?;
                    t = dma.wait(tag.mask(), resume);
                    done += chunk;
                }
            }
            TraceOp::Compute { cycles } => t += cycles,
        }
    }
    Ok(t)
}

// ---- the search ----------------------------------------------------------

/// One evaluated candidate.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The cache policy evaluated.
    pub choice: CacheChoice,
    /// Cycles predicted by the analytic model.
    pub model_cycles: u64,
    /// Cycles measured by exact replay (`None` if the candidate ranked
    /// outside the validated top-k).
    pub exact_cycles: Option<u64>,
}

/// The result of an [`autotune`] search: every candidate ranked by the
/// model, with the top-k validated by exact replay.
#[derive(Clone, Debug)]
pub struct TuneReport {
    candidates: Vec<Candidate>,
    winner: usize,
}

impl TuneReport {
    /// All candidates, best model rank first.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The winning candidate: minimum *exact* replay cycles among the
    /// validated top-k (model rank breaks ties).
    pub fn winner(&self) -> &Candidate {
        &self.candidates[self.winner]
    }

    /// Index of the winner within [`TuneReport::candidates`].
    pub fn winner_index(&self) -> usize {
        self.winner
    }
}

/// Searches the [`TuneOptions`] candidate space for the minimum-cycle
/// cache policy for `records`: ranks every candidate with the analytic
/// model, validates the top-k by exact simulated replay, and picks the
/// exact-cycle minimum.
///
/// # Errors
///
/// Fails if an exact replay fails (local-store budget, bad transfer).
pub fn autotune(records: &[AccessRecord], opts: &TuneOptions) -> Result<TuneReport, CacheError> {
    let mut choices = opts.candidates(records);
    if opts.reuse_prune && dominant_stride(records).is_none() {
        choices = prune_irregular(choices, records);
    }
    let mut candidates: Vec<Candidate> = choices
        .into_iter()
        .map(|choice| Candidate {
            choice,
            model_cycles: model_cycles(&choice, records, opts),
            exact_cycles: None,
        })
        .collect();
    candidates.sort_by_key(|c| c.model_cycles);
    let k = opts.top_k.clamp(1, candidates.len());
    for candidate in &mut candidates[..k] {
        candidate.exact_cycles = Some(replay_exact(&candidate.choice, records, opts)?);
    }
    let winner = candidates[..k]
        .iter()
        .enumerate()
        .min_by_key(|(index, c)| (c.exact_cycles.expect("top-k was validated"), *index))
        .map(|(index, _)| index)
        .expect("at least one candidate");
    Ok(TuneReport { candidates, winner })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequential_trace(accesses: u32, stride: u32, len: u32) -> Vec<AccessRecord> {
        (0..accesses)
            .map(|i| AccessRecord {
                span: 0,
                op: TraceOp::Read {
                    offset: i * stride,
                    len,
                },
            })
            .collect()
    }

    fn hot_trace(accesses: u32) -> Vec<AccessRecord> {
        // 90% of accesses in a 2 KiB hot region, deterministic LCG.
        let mut state = 0x905eed_u64;
        (0..accesses)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (state >> 33) as u32;
                let offset = if r % 10 < 9 {
                    (r % (2 * 1024 / 16)) * 16
                } else {
                    (r % (60 * 1024 / 16)) * 16
                };
                AccessRecord {
                    span: 0,
                    op: TraceOp::Read { offset, len: 16 },
                }
            })
            .collect()
    }

    fn families() -> Vec<CacheChoice> {
        vec![
            CacheChoice::Naive,
            CacheChoice::SetAssoc(CacheConfig::direct_mapped_4k()),
            CacheChoice::SetAssoc(CacheConfig::four_way_16k()),
            CacheChoice::SetAssoc(
                CacheConfig::four_way_16k().write_policy(WritePolicy::WriteThrough),
            ),
            CacheChoice::Stream(CacheConfig::new(1024, 1, 1)),
        ]
    }

    #[test]
    fn model_is_bit_exact_on_aligned_traces() {
        let mut trace = sequential_trace(256, 16, 16);
        // Mix in writes and compute so every model path is exercised.
        for i in 0..64u32 {
            trace.push(AccessRecord {
                span: 0,
                op: TraceOp::Write {
                    offset: i * 48 % 4096,
                    len: 16,
                },
            });
            trace.push(AccessRecord {
                span: 0,
                op: TraceOp::Compute { cycles: 8 },
            });
        }
        let opts = TuneOptions::default();
        for choice in families() {
            let model = model_cycles(&choice, &trace, &opts);
            let exact = replay_exact(&choice, &trace, &opts).unwrap();
            assert_eq!(model, exact, "model must be exact for {choice}");
        }
    }

    #[test]
    fn model_never_overestimates_and_stays_in_tolerance_when_misaligned() {
        // Odd offsets/lengths: every transfer pays the misalignment
        // penalty that the model deliberately ignores.
        let trace: Vec<AccessRecord> = (0..128u32)
            .map(|i| AccessRecord {
                span: 0,
                op: TraceOp::Read {
                    offset: i * 17 + 3,
                    len: 13,
                },
            })
            .collect();
        let opts = TuneOptions::default();
        for choice in families() {
            let model = model_cycles(&choice, &trace, &opts);
            let exact = replay_exact(&choice, &trace, &opts).unwrap();
            assert!(model <= exact, "{choice}: model {model} > exact {exact}");
            let error = (exact - model) as f64 / exact.max(1) as f64;
            assert!(
                error <= MODEL_ALIGNMENT_TOLERANCE,
                "{choice}: error {error} exceeds tolerance"
            );
        }
    }

    #[test]
    fn autotune_picks_stream_for_sequential_scans() {
        let trace = sequential_trace(512, 16, 16);
        let report = autotune(&trace, &TuneOptions::default()).unwrap();
        assert_eq!(report.winner().choice.family(), "stream");
        assert!(report.winner().exact_cycles.is_some());
    }

    #[test]
    fn autotune_picks_set_associative_for_hot_sets() {
        let trace = hot_trace(1024);
        let report = autotune(&trace, &TuneOptions::default()).unwrap();
        assert_eq!(report.winner().choice.family(), "set-associative");
    }

    #[test]
    fn winner_is_the_exact_minimum_of_the_validated_set() {
        let trace = hot_trace(256);
        let report = autotune(&trace, &TuneOptions::default()).unwrap();
        let winner = report.winner().exact_cycles.unwrap();
        for candidate in report.candidates() {
            if let Some(exact) = candidate.exact_cycles {
                assert!(winner <= exact);
            }
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = hot_trace(200);
        let opts = TuneOptions::default();
        for choice in families() {
            let a = replay_exact(&choice, &trace, &opts).unwrap();
            let b = replay_exact(&choice, &trace, &opts).unwrap();
            assert_eq!(a, b);
        }
    }

    /// A seeded irregular trace: 80% of reads in a hot 4 KiB region,
    /// the rest across 256 KiB — no stride for a prefetcher to ride.
    fn irregular_trace(seed: u64, accesses: u32) -> Vec<AccessRecord> {
        let mut rng = xrng::Rng::new(seed);
        (0..accesses)
            .map(|_| {
                let offset = if rng.below_u32(10) < 8 {
                    rng.below_u32(4 * 1024 / 16) * 16
                } else {
                    rng.below_u32(256 * 1024 / 16) * 16
                };
                AccessRecord {
                    span: 0,
                    op: TraceOp::Read { offset, len: 16 },
                }
            })
            .collect()
    }

    /// Replays `records` through the *real* set-associative cache and
    /// returns its measured miss count.
    fn real_misses(config: CacheConfig, records: &[AccessRecord], opts: &TuneOptions) -> u64 {
        let capacity = opts.effective_capacity(records);
        let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, capacity);
        let mut ls = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            LOCAL_STORE_SIZE,
        );
        let mut dma = DmaEngine::with_timing(SpaceId::local_store(0), opts.dma);
        let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut ls).unwrap();
        let max_len = records.iter().map(|r| r.op.len()).max().unwrap_or(0);
        let mut buf = vec![0u8; max_len as usize];
        replay_cached(&mut cache, records, &mut main, &mut ls, &mut dma, &mut buf).unwrap();
        cache.stats().misses
    }

    #[test]
    fn reuse_histogram_counts_a_known_trace_exactly() {
        // Lines touched (64 B granularity): 0, 1, 0, 2, 1.
        let trace: Vec<AccessRecord> = [0u32, 64, 16, 128, 100]
            .iter()
            .map(|&offset| AccessRecord {
                span: 0,
                op: TraceOp::Read { offset, len: 16 },
            })
            .collect();
        let hist = ReuseHistogram::from_records(&trace, 64);
        assert_eq!(hist.touches(), 5);
        assert_eq!(hist.cold_touches(), 3);
        // Reuses: line 0 at distance 1, line 1 at distance 2.
        assert_eq!(hist.predicted_misses(1), 5);
        assert_eq!(hist.predicted_misses(2), 4);
        assert_eq!(hist.predicted_misses(3), 3);
        assert_eq!(hist.predicted_misses(1024), hist.cold_touches());
    }

    #[test]
    fn reuse_prediction_is_exact_for_a_fully_associative_cache() {
        // One set of 16 ways under LRU *is* the stack model; the
        // histogram's prediction must match the real cache bit-for-bit.
        let opts = TuneOptions::default();
        let config = CacheConfig::new(64, 1, 16);
        for seed in 0..6u64 {
            let trace = irregular_trace(seed, 400);
            let hist = ReuseHistogram::from_records(&trace, 64);
            assert_eq!(
                hist.predicted_misses(16),
                real_misses(config, &trace, &opts),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn reuse_model_never_undercounts_misses_beyond_tolerance() {
        // The irregular-trace mirror of the aligned-trace cycle bound:
        // the fully-associative prediction is blind to conflict misses,
        // but across seeds and geometries it never undercounts the real
        // set-associative cache by more than REUSE_MISS_TOLERANCE.
        let opts = TuneOptions::default();
        let configs = [
            CacheConfig::new(64, 32, 2),
            CacheConfig::new(128, 16, 4),
            CacheConfig::four_way_16k(),
        ];
        for seed in 0..12u64 {
            let trace = irregular_trace(seed, 800);
            for config in configs {
                let hist = ReuseHistogram::from_records(&trace, config.line_size);
                let predicted = hist.predicted_misses(config.capacity_bytes() / config.line_size);
                let actual = real_misses(config, &trace, &opts);
                let undercount = actual.saturating_sub(predicted) as f64 / actual.max(1) as f64;
                assert!(
                    undercount <= REUSE_MISS_TOLERANCE,
                    "seed {seed} {config:?}: predicted {predicted} vs actual {actual} \
                     (undercount {undercount:.3})"
                );
            }
        }
    }

    #[test]
    fn predicted_misses_are_monotone_in_capacity() {
        let trace = irregular_trace(7, 600);
        let hist = ReuseHistogram::from_records(&trace, 64);
        let mut last = u64::MAX;
        for capacity in [1u32, 4, 16, 64, 256, 1024, 4096] {
            let misses = hist.predicted_misses(capacity);
            assert!(misses <= last);
            last = misses;
        }
        assert_eq!(last, hist.cold_touches());
    }

    #[test]
    fn dominant_stride_detects_streams_and_rejects_irregularity() {
        assert_eq!(dominant_stride(&sequential_trace(128, 16, 16)), Some(16));
        assert_eq!(dominant_stride(&sequential_trace(128, 48, 16)), Some(48));
        assert_eq!(dominant_stride(&irregular_trace(3, 400)), None);
        assert_eq!(dominant_stride(&[]), None);
    }

    #[test]
    fn irregular_prune_drops_streams_and_redundant_capacities() {
        let trace = irregular_trace(5, 600);
        assert!(dominant_stride(&trace).is_none());
        let opts = TuneOptions {
            reuse_prune: true,
            ..TuneOptions::default()
        };
        let report = autotune(&trace, &opts).unwrap();
        assert!(
            report
                .candidates()
                .iter()
                .all(|c| c.choice.family() != "stream"),
            "prefetching candidates are pointless on an irregular trace"
        );
        let full = TuneOptions::default().candidates(&trace).len();
        assert!(report.candidates().len() < full);
        assert!(report.winner().exact_cycles.is_some());
    }

    #[test]
    fn strided_traces_bypass_the_reuse_prune() {
        let trace = sequential_trace(512, 16, 16);
        let opts = TuneOptions {
            reuse_prune: true,
            ..TuneOptions::default()
        };
        let report = autotune(&trace, &opts).unwrap();
        // Same winner as the unpruned search: the stride keeps the
        // stream family in play.
        assert_eq!(report.winner().choice.family(), "stream");
    }

    #[test]
    fn disabled_trace_records_nothing_and_never_allocates() {
        let mut trace = AccessTrace::new();
        trace.record_read(0, 0, 16);
        trace.record_write(0, 16, 16);
        trace.record_compute(0, 100);
        assert!(trace.is_empty());
        assert_eq!(trace.capacity(), 0);
    }

    #[test]
    fn compute_records_coalesce_within_a_span() {
        let mut trace = AccessTrace::new();
        trace.set_enabled(true);
        trace.record_compute(0, 10);
        trace.record_compute(0, 5);
        trace.record_read(0, 0, 16);
        trace.record_compute(0, 3);
        trace.record_compute(1, 2);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.records()[0].op, TraceOp::Compute { cycles: 15 });
    }

    #[test]
    fn candidate_grid_contains_the_hand_picked_e7_configs() {
        let opts = TuneOptions::default();
        let choices = opts.candidates(&[]);
        let has = |target: CacheConfig| {
            choices
                .iter()
                .any(|c| matches!(c, CacheChoice::SetAssoc(cfg) if *cfg == target))
        };
        assert!(has(CacheConfig::direct_mapped_4k()));
        assert!(has(CacheConfig::new(64, 64, 2)));
        assert!(has(CacheConfig::four_way_16k()));
        assert!(choices
            .iter()
            .any(|c| matches!(c, CacheChoice::Stream(cfg) if cfg.line_size == 1024)));
        assert!(choices.contains(&CacheChoice::Naive));
    }

    #[test]
    fn display_names_are_compact() {
        assert_eq!(CacheChoice::Naive.to_string(), "no cache");
        assert_eq!(
            CacheChoice::SetAssoc(CacheConfig::four_way_16k()).to_string(),
            "4-way 16K/128B"
        );
        assert_eq!(
            CacheChoice::Stream(CacheConfig::new(512, 1, 1)).to_string(),
            "stream 2x512B"
        );
    }
}
