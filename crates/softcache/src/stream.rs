//! A sequential-streaming software cache with asynchronous prefetch.

use dma::Tag;
use memspace::{Addr, SpaceId};

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use crate::{CacheBacking, CacheError, SoftwareCache};

/// DMA tag used for asynchronous prefetches.
const PREFETCH_TAG: u8 = 29;
/// DMA tag used for (uncached) writes.
const STREAM_WRITE_TAG: u8 = 28;

#[derive(Clone, Copy, Debug)]
struct Resident {
    line_number: u32,
    len: u32,
}

/// A two-buffer streaming cache: while the core consumes the current
/// line, the next line is already in flight.
///
/// This is the cache shape that wins on the sequential scans game tasks
/// perform over entity arrays (and loses badly on random access — the
/// profiling-driven trade-off of paper §4.2). It holds exactly two large
/// line buffers in the local store: reads from the *current* line are
/// hits; advancing into the *prefetched* line costs only the residual
/// wait; anything else is a full blocking miss that restarts the stream.
///
/// Writes are deliberately uncached (a blocking put): the streaming use
/// case is read-dominated, and keeping writes out of the buffers keeps
/// the prefetch pipeline race-free.
#[derive(Debug)]
pub struct StreamCache {
    config: CacheConfig,
    remote_space: SpaceId,
    buffers: [Addr; 2],
    staging: Addr,
    current: Option<Resident>,
    /// Prefetch in flight into `buffers[1 - active]`.
    prefetching: Option<Resident>,
    active: usize,
    stats: CacheStats,
}

impl StreamCache {
    /// Creates a streaming cache with two `config.line_size` buffers
    /// allocated from `ls`. Only `line_size` (and the cost fields) of
    /// `config` are used; sets/ways/write-policy do not apply.
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot fit the two line buffers plus a
    /// 16-byte write staging area.
    pub fn new(
        config: CacheConfig,
        remote_space: SpaceId,
        ls: &mut memspace::MemoryRegion,
    ) -> Result<StreamCache, CacheError> {
        let a = ls.alloc(config.line_size, memspace::DMA_ALIGN)?;
        let b = ls.alloc(config.line_size, memspace::DMA_ALIGN)?;
        let staging = ls.alloc(memspace::DMA_ALIGN, memspace::DMA_ALIGN)?;
        Ok(StreamCache {
            config,
            remote_space,
            buffers: [a, b],
            staging,
            current: None,
            prefetching: None,
            active: 0,
            stats: CacheStats::default(),
        })
    }

    fn prefetch_tag(&self) -> Tag {
        Tag::new(PREFETCH_TAG).expect("constant tag is valid")
    }

    fn write_tag(&self) -> Tag {
        Tag::new(STREAM_WRITE_TAG).expect("constant tag is valid")
    }

    fn line_len(&self, line_number: u32, backing: &CacheBacking<'_>) -> u32 {
        let start = line_number * self.config.line_size;
        self.config
            .line_size
            .min(backing.main.capacity().saturating_sub(start))
    }

    /// Issues an asynchronous prefetch of `line_number` into the
    /// inactive buffer, if it exists in remote memory.
    fn issue_prefetch(
        &mut self,
        now: u64,
        line_number: u32,
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        let len = self.line_len(line_number, backing);
        if len == 0 {
            return Ok(now); // past the end of remote memory
        }
        let buffer = self.buffers[1 - self.active];
        let remote = Addr::new(self.remote_space, line_number * self.config.line_size);
        let resume = backing.dma.get(
            now,
            buffer,
            remote,
            len,
            self.prefetch_tag(),
            backing.main,
            backing.ls,
        )?;
        self.prefetching = Some(Resident { line_number, len });
        self.stats.bytes_fetched += u64::from(len);
        Ok(resume)
    }

    /// Discards any in-flight prefetch, waiting for the engine so its
    /// buffer can be reused.
    fn cancel_prefetch(&mut self, now: u64, backing: &mut CacheBacking<'_>) -> u64 {
        if self.prefetching.take().is_some() {
            self.stats.prefetch_wasted += 1;
            backing.dma.wait(self.prefetch_tag().mask(), now)
        } else {
            now
        }
    }

    /// Makes `line_number` the current resident line; returns the cycle
    /// at which its bytes are available.
    fn ensure_line(
        &mut self,
        now: u64,
        line_number: u32,
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        if let Some(current) = self.current {
            if current.line_number == line_number {
                self.stats.hits += 1;
                return Ok(now + self.config.lookup_cycles(1));
            }
        }
        if let Some(pending) = self.prefetching {
            if pending.line_number == line_number {
                // Stream advance: pay only the residual transfer time.
                self.stats.hits += 1;
                self.stats.prefetch_hits += 1;
                let mut t = now + self.config.lookup_cycles(2);
                t = backing.dma.wait(self.prefetch_tag().mask(), t);
                self.prefetching = None;
                self.active = 1 - self.active;
                self.current = Some(pending);
                t = self.issue_prefetch(t, line_number + 1, backing)?;
                return Ok(t);
            }
        }
        // Stream restart: blocking fetch.
        self.stats.misses += 1;
        let mut t = now + self.config.lookup_cycles(2);
        t = self.cancel_prefetch(t, backing);
        let len = self.line_len(line_number, backing);
        debug_assert!(len > 0, "caller validated the access is in bounds");
        let buffer = self.buffers[self.active];
        let remote = Addr::new(self.remote_space, line_number * self.config.line_size);
        let resume = backing.dma.get(
            t,
            buffer,
            remote,
            len,
            self.prefetch_tag(),
            backing.main,
            backing.ls,
        )?;
        t = backing.dma.wait(self.prefetch_tag().mask(), resume);
        self.stats.bytes_fetched += u64::from(len);
        self.current = Some(Resident { line_number, len });
        t = self.issue_prefetch(t, line_number + 1, backing)?;
        Ok(t)
    }

    fn check_space(&self, addr: Addr) -> Result<(), CacheError> {
        if addr.space() != self.remote_space {
            return Err(CacheError::NotCacheable {
                space: addr.space(),
            });
        }
        Ok(())
    }
}

impl SoftwareCache for StreamCache {
    fn read(
        &mut self,
        now: u64,
        addr: Addr,
        out: &mut [u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        self.check_space(addr)?;
        self.stats.reads += 1;
        let mut t = now;
        let mut done = 0u32;
        let total = out.len() as u32;
        while done < total {
            let offset = addr.offset() + done;
            let (line_number, in_line) = self.config.split_offset(offset);
            let chunk = (self.config.line_size - in_line).min(total - done);
            t = self.ensure_line(t, line_number, backing)?;
            t += self.config.copy_cycles(chunk);
            let buffer = self.buffers[self.active].offset_by(in_line)?;
            backing
                .ls
                .read_into(buffer, &mut out[done as usize..(done + chunk) as usize])?;
            done += chunk;
        }
        self.stats.cycles += t - now;
        Ok(t)
    }

    fn write(
        &mut self,
        now: u64,
        addr: Addr,
        data: &[u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        self.check_space(addr)?;
        self.stats.writes += 1;
        let mut t = now;
        // Uncached blocking put, staged through a small local buffer in
        // 16-byte pieces.
        let mut done = 0u32;
        let total = data.len() as u32;
        while done < total {
            let chunk = (total - done).min(memspace::DMA_ALIGN);
            let remote = addr.offset_by(done)?;
            // If the write lands in the line currently being prefetched,
            // the put would race the in-flight get — and the prefetched
            // copy would be stale afterwards anyway. Cancel it.
            if let Some(pending) = self.prefetching {
                let p_start = pending.line_number * self.config.line_size;
                let p_end = p_start + pending.len;
                if remote.offset() < p_end && p_start < remote.offset() + chunk {
                    t = self.cancel_prefetch(t, backing);
                }
            }
            backing
                .ls
                .write_bytes(self.staging, &data[done as usize..(done + chunk) as usize])?;
            let resume = backing.dma.put(
                t,
                self.staging,
                remote,
                chunk,
                self.write_tag(),
                backing.main,
                backing.ls,
            )?;
            t = backing.dma.wait(self.write_tag().mask(), resume);
            self.stats.writebacks += 1;
            self.stats.bytes_written_back += u64::from(chunk);
            // Keep a resident copy coherent if the write lands in it.
            if let Some(current) = self.current {
                let line_start = current.line_number * self.config.line_size;
                let write_start = remote.offset();
                if write_start >= line_start && write_start + chunk <= line_start + current.len {
                    let in_line = write_start - line_start;
                    let buffer = self.buffers[self.active].offset_by(in_line)?;
                    backing
                        .ls
                        .write_bytes(buffer, &data[done as usize..(done + chunk) as usize])?;
                }
            }
            done += chunk;
        }
        self.stats.cycles += t - now;
        Ok(t)
    }

    fn flush(&mut self, now: u64, backing: &mut CacheBacking<'_>) -> Result<u64, CacheError> {
        // Writes are already synchronous; just drain any prefetch so the
        // engine is quiet.
        Ok(self.cancel_prefetch(now, backing))
    }

    fn invalidate(&mut self) {
        self.current = None;
        // A prefetch may still be in flight; the next use waits on its
        // tag before reusing the buffer.
        if self.prefetching.take().is_some() {
            self.stats.prefetch_wasted += 1;
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn describe(&self) -> String {
        format!(
            "streaming 2x{} B buffers (async prefetch)",
            self.config.line_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssociativeCache;
    use crate::CacheExt;
    use dma::DmaEngine;
    use memspace::{MemoryRegion, SpaceKind};

    struct Rig {
        main: MemoryRegion,
        ls: MemoryRegion,
        dma: DmaEngine,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                main: MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 256 * 1024),
                ls: MemoryRegion::new(
                    SpaceId::local_store(0),
                    SpaceKind::LocalStore { accel: 0 },
                    memspace::LOCAL_STORE_SIZE,
                ),
                dma: DmaEngine::new(SpaceId::local_store(0)),
            }
        }

        fn backing(&mut self) -> CacheBacking<'_> {
            CacheBacking {
                main: &mut self.main,
                ls: &mut self.ls,
                dma: &mut self.dma,
            }
        }
    }

    fn addr(offset: u32) -> Addr {
        Addr::new(SpaceId::MAIN, offset)
    }

    fn stream_config() -> CacheConfig {
        CacheConfig::new(1024, 1, 1)
    }

    #[test]
    fn sequential_scan_reads_correct_data() {
        let mut rig = Rig::new();
        let data: Vec<u8> = (0..255u8).cycle().take(8192).collect();
        rig.main.write_bytes(addr(0), &data).unwrap();
        let mut cache = StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let mut t = 0;
        let mut out = [0u8; 64];
        for i in 0..(8192 / 64) {
            t = cache.read(t, addr(i * 64), &mut out, &mut backing).unwrap();
            assert_eq!(out[..], data[(i * 64) as usize..(i * 64 + 64) as usize]);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "only the stream start misses");
        assert_eq!(s.prefetch_hits, 7, "every subsequent line was prefetched");
    }

    #[test]
    fn prefetch_overlaps_compute() {
        // A scan with per-chunk compute long enough to cover the
        // prefetch: advancing lines costs ~nothing beyond lookup.
        let mut rig = Rig::new();
        let mut cache = StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let mut out = [0u8; 1024];
        let t0 = cache.read(0, addr(0), &mut out, &mut backing).unwrap();
        // Simulate compute long enough for the prefetch to land.
        let resume = t0 + 10_000;
        let t1 = cache
            .read(resume, addr(1024), &mut out, &mut backing)
            .unwrap();
        let advance_cost = t1 - resume;
        let miss_cost = t0;
        assert!(
            advance_cost < miss_cost / 4,
            "advance {advance_cost} vs miss {miss_cost}"
        );
    }

    #[test]
    fn random_access_restarts_the_stream() {
        let mut rig = Rig::new();
        let mut cache = StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let mut out = [0u8; 16];
        let mut t = 0;
        for line in [0u32, 50, 3, 97, 12] {
            t = cache
                .read(t, addr(line * 1024), &mut out, &mut backing)
                .unwrap();
        }
        assert_eq!(cache.stats().misses, 5);
        assert!(cache.stats().prefetch_wasted >= 4);
    }

    #[test]
    fn stream_beats_set_associative_on_scans_and_loses_on_random() {
        // The paper's "several caches favouring different behaviours".
        let scan_len: u32 = 32 * 1024;
        let sequential: Vec<u32> = (0..scan_len / 64).map(|i| i * 64).collect();
        let random: Vec<u32> = {
            // Deterministic LCG shuffle of line addresses.
            let mut state = 12345u64;
            (0..512)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as u32 % (scan_len / 64)) * 64
                })
                .collect()
        };

        let run = |pattern: &[u32], streaming: bool| -> u64 {
            let mut rig = Rig::new();
            let mut t = 0;
            let mut out = [0u8; 16];
            if streaming {
                let mut cache =
                    StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
                let mut backing = rig.backing();
                for &offset in pattern {
                    t = cache.read(t, addr(offset), &mut out, &mut backing).unwrap();
                }
            } else {
                let mut cache = SetAssociativeCache::new(
                    CacheConfig::direct_mapped_4k(),
                    SpaceId::MAIN,
                    &mut rig.ls,
                )
                .unwrap();
                let mut backing = rig.backing();
                for &offset in pattern {
                    t = cache.read(t, addr(offset), &mut out, &mut backing).unwrap();
                }
            }
            t
        };

        let stream_seq = run(&sequential, true);
        let assoc_seq = run(&sequential, false);
        assert!(
            stream_seq < assoc_seq,
            "streaming wins sequential: {stream_seq} vs {assoc_seq}"
        );

        let stream_rand = run(&random, true);
        let assoc_rand = run(&random, false);
        assert!(
            assoc_rand < stream_rand,
            "set-associative wins random: {assoc_rand} vs {stream_rand}"
        );
    }

    #[test]
    fn writes_reach_main_memory_and_stay_coherent() {
        let mut rig = Rig::new();
        let mut cache = StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        // Read line 0 so it is resident, then write into it.
        let (before, t) = cache.read_pod::<u32>(0, addr(16), &mut backing).unwrap();
        assert_eq!(before, 0);
        let t = cache.write_pod(t, addr(16), &77u32, &mut backing).unwrap();
        assert_eq!(backing.main.read_pod::<u32>(addr(16)).unwrap(), 77);
        // The resident copy was patched too: re-reading hits and sees 77.
        let (after, _) = cache.read_pod::<u32>(t, addr(16), &mut backing).unwrap();
        assert_eq!(after, 77);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut rig = Rig::new();
        let mut cache = StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let (_, t) = cache.read_pod::<u32>(0, addr(0), &mut backing).unwrap();
        // Main memory changes behind the cache.
        backing.main.write_pod(addr(0), &5u32).unwrap();
        cache.invalidate();
        let (v, _) = cache.read_pod::<u32>(t, addr(0), &mut backing).unwrap();
        assert_eq!(v, 5);
    }

    #[test]
    fn wrong_space_is_rejected() {
        let mut rig = Rig::new();
        let mut cache = StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let err = cache
            .write(0, Addr::new(SpaceId::local_store(0), 0), &[1], &mut backing)
            .unwrap_err();
        assert!(matches!(err, CacheError::NotCacheable { .. }));
    }

    #[test]
    fn no_races_reported_by_the_engine() {
        let mut rig = Rig::new();
        let mut cache = StreamCache::new(stream_config(), SpaceId::MAIN, &mut rig.ls).unwrap();
        let mut backing = rig.backing();
        let mut t = 0;
        let mut out = [0u8; 32];
        for i in 0..64u32 {
            t = cache
                .read(t, addr(i * 512), &mut out, &mut backing)
                .unwrap();
            if i % 7 == 0 {
                t = cache
                    .write(t, addr(i * 512), &[1, 2, 3], &mut backing)
                    .unwrap();
            }
        }
        cache.flush(t, &mut backing).unwrap();
        assert_eq!(backing.dma.race_checker().detected(), 0);
    }
}
