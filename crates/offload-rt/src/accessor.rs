//! The `Array` accessor class (paper §4.2).
//!
//! The paper's motivating loop dereferences an outer pointer per
//! iteration — two dependent transfers per object. Interposing an
//! `Array` accessor "will perform a single, efficient bulk transfer of
//! the array of pointers into fast local store. Subsequently, it acts
//! like an array, allowing indexing operations." On a shared-memory
//! system the same source compiles to direct access; here, the accessor
//! is the memory-space-aware implementation.

use std::marker::PhantomData;

use dma::Tag;
use memspace::{Addr, Pod};
use simcell::{AccelCtx, SimError};

use crate::remote::RemoteSlice;
use crate::ACCESSOR_TAG;

/// A local-store mirror of a main-memory array, filled by one bulk DMA
/// transfer and optionally written back.
///
/// Transfers larger than the per-command DMA limit are split into
/// multiple commands on the same tag, which the engine pipelines — the
/// accessor still costs one wait, not one round trip per element.
///
/// # Example
///
/// ```
/// use memspace::Addr;
/// use offload_rt::{ArrayAccessor, RemoteSlice};
/// use simcell::{Machine, MachineConfig, SimError};
///
/// # fn main() -> Result<(), SimError> {
/// let mut machine = Machine::new(MachineConfig::small())?;
/// let remote = machine.alloc_main_slice::<f32>(256)?;
/// machine.main_mut().write_pod_slice(remote, &vec![1.5f32; 256])?;
///
/// let total = machine.offload(0).run(|ctx| -> Result<f32, SimError> {
///     let array = ArrayAccessor::<f32>::fetch(ctx, remote, 256)?;
///     let mut total = 0.0;
///     for i in 0..array.len() {
///         total += array.get(ctx, i)?;
///     }
///     Ok(total)
/// })??;
/// assert_eq!(total, 384.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ArrayAccessor<T: Pod> {
    local: Addr,
    remote: Addr,
    len: u32,
    dirty: bool,
    _marker: PhantomData<T>,
}

impl<T: Pod> ArrayAccessor<T> {
    fn tag() -> Tag {
        Tag::new(ACCESSOR_TAG).expect("constant tag is valid")
    }

    /// Fetches `len` elements starting at `remote` into the local store
    /// with one (pipelined) bulk transfer and blocks until they arrive.
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot hold the array or a transfer
    /// fails.
    pub fn fetch(ctx: &mut AccelCtx<'_>, remote: Addr, len: u32) -> Result<Self, SimError> {
        ctx.span_start("accessor.fetch");
        let local = ctx.alloc_local_slice::<T>(len)?;
        let accessor = ArrayAccessor {
            local,
            remote,
            len,
            dirty: false,
            _marker: PhantomData,
        };
        accessor.transfer(ctx, TransferDir::Get)?;
        ctx.dma_wait_tag(Self::tag());
        // Surface an injected tag timeout before handing the (possibly
        // incomplete) array to the caller.
        ctx.check_faults()?;
        ctx.span_end("accessor.fetch");
        Ok(accessor)
    }

    /// Allocates an accessor *without* fetching — for output-only arrays
    /// that will be fully overwritten and then written back.
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot hold the array.
    pub fn for_output(ctx: &mut AccelCtx<'_>, remote: Addr, len: u32) -> Result<Self, SimError> {
        let local = ctx.alloc_local_slice::<T>(len)?;
        Ok(ArrayAccessor {
            local,
            remote,
            len,
            dirty: true,
            _marker: PhantomData,
        })
    }

    /// Writes element `index` locally and marks the accessor dirty.
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds.
    pub fn set(&mut self, ctx: &mut AccelCtx<'_>, index: u32, value: &T) -> Result<(), SimError> {
        self.dirty = true;
        ctx.local_write_pod(self.element_addr(index)?, value)
    }

    /// Overwrites the whole local array (local cost only) and marks it
    /// dirty.
    ///
    /// # Errors
    ///
    /// Fails if `values.len() != self.len()` (bounds violation).
    pub fn copy_from_slice(
        &mut self,
        ctx: &mut AccelCtx<'_>,
        values: &[T],
    ) -> Result<(), SimError> {
        self.dirty = true;
        ctx.local_write_slice(self.local, values)
    }

    /// Writes the array back to main memory with one bulk transfer if any
    /// element was modified; no-op otherwise.
    ///
    /// When the offload declared the remote range `read` (see
    /// `OffloadBuilder::reads` in `simcell`), a dirty-but-unchanged
    /// array — the conservative-flush idiom — skips the transfer
    /// entirely: the elision is counted in the machine stats and costs
    /// zero cycles.
    ///
    /// # Errors
    ///
    /// Fails if a transfer fails, or with
    /// [`SimError::UndeclaredWrite`] if the array was genuinely
    /// mutated but its remote range is declared `read`.
    pub fn write_back(&mut self, ctx: &mut AccelCtx<'_>) -> Result<(), SimError> {
        if !self.dirty {
            return Ok(());
        }
        let bytes = (T::SIZE as u32) * self.len;
        if ctx.writeback_elidable(self.local, self.remote, bytes)? {
            self.dirty = false;
            return Ok(());
        }
        ctx.span_start("accessor.write_back");
        self.transfer(ctx, TransferDir::Put)?;
        ctx.dma_wait_tag(Self::tag());
        ctx.check_faults()?;
        self.dirty = false;
        ctx.span_end("accessor.write_back");
        Ok(())
    }

    /// Issues the accessor's logical transfer, split into
    /// DMA-limit-sized commands on the accessor tag (not waited).
    fn transfer(&self, ctx: &mut AccelCtx<'_>, dir: TransferDir) -> Result<(), SimError> {
        let tag = Self::tag();
        let bytes = (T::SIZE as u32) * self.len;
        let mut moved = 0u32;
        while moved < bytes {
            let chunk = (bytes - moved).min(dma::MAX_TRANSFER);
            let l = self.local.offset_by(moved)?;
            let r = self.remote.offset_by(moved)?;
            match dir {
                TransferDir::Get => ctx.dma_get(l, r, chunk, tag)?,
                TransferDir::Put => ctx.dma_put(l, r, chunk, tag)?,
            }
            moved += chunk;
        }
        Ok(())
    }
}

impl<T: Pod> RemoteSlice<T> for ArrayAccessor<T> {
    fn local_base(&self) -> Addr {
        self.local
    }

    fn len(&self) -> u32 {
        self.len
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TransferDir {
    Get,
    Put,
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::{Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::small()).unwrap()
    }

    #[test]
    fn fetch_and_read_roundtrip() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(100).unwrap();
        let values: Vec<u32> = (0..100).collect();
        m.main_mut().write_pod_slice(remote, &values).unwrap();

        let out = m
            .offload(0)
            .run(|ctx| -> Result<Vec<u32>, SimError> {
                let array = ArrayAccessor::<u32>::fetch(ctx, remote, 100)?;
                array.to_vec(ctx)
            })
            .unwrap()
            .unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn write_back_persists_changes() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(8).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let mut array = ArrayAccessor::<u32>::fetch(ctx, remote, 8)?;
                for i in 0..8 {
                    array.set(ctx, i, &(i * 10))?;
                }
                array.write_back(ctx)
            })
            .unwrap()
            .unwrap();
        let stored = m.main().read_pod_slice::<u32>(remote, 8).unwrap();
        assert_eq!(stored, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn clean_accessor_skips_write_back() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(8).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let mut array = ArrayAccessor::<u32>::fetch(ctx, remote, 8)?;
                let _ = array.get(ctx, 0)?;
                array.write_back(ctx)
            })
            .unwrap()
            .unwrap();
        assert_eq!(m.dma_stats(0).unwrap().puts, 0);
    }

    #[test]
    fn output_only_accessor_never_fetches() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(4).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let mut array = ArrayAccessor::<u32>::for_output(ctx, remote, 4)?;
                array.copy_from_slice(ctx, &[9, 8, 7, 6])?;
                array.write_back(ctx)
            })
            .unwrap()
            .unwrap();
        assert_eq!(m.dma_stats(0).unwrap().gets, 0);
        assert_eq!(
            m.main().read_pod_slice::<u32>(remote, 4).unwrap(),
            vec![9, 8, 7, 6]
        );
    }

    #[test]
    fn bulk_fetch_beats_per_element_outer_access() {
        // The paper's §4.2 claim in microcosm.
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(256).unwrap();
        let (bulk, naive) = m
            .offload(0)
            .run(|ctx| -> Result<(u64, u64), SimError> {
                let t0 = ctx.now();
                let array = ArrayAccessor::<u32>::fetch(ctx, remote, 256)?;
                let mut sum = 0u32;
                for i in 0..256 {
                    sum = sum.wrapping_add(array.get(ctx, i)?);
                }
                let bulk = ctx.now() - t0;

                let t1 = ctx.now();
                for i in 0..256u32 {
                    sum = sum.wrapping_add(ctx.outer_read_pod::<u32>(remote.element(i, 4)?)?);
                }
                let naive = ctx.now() - t1;
                assert_eq!(sum, 0);
                Ok((bulk, naive))
            })
            .unwrap()
            .unwrap();
        assert!(
            bulk * 10 < naive,
            "bulk transfer should be >10x faster: {bulk} vs {naive}"
        );
    }

    #[test]
    fn large_arrays_split_across_dma_commands() {
        let mut m = machine();
        // 40 KiB > 16 KiB DMA limit -> 3 commands.
        let remote = m.alloc_main_slice::<u32>(10 * 1024).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let _ = ArrayAccessor::<u32>::fetch(ctx, remote, 10 * 1024)?;
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(m.dma_stats(0).unwrap().gets, 3);
        assert_eq!(m.dma_stats(0).unwrap().bytes_in, 40 * 1024);
    }

    #[test]
    fn out_of_bounds_index_fails() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(4).unwrap();
        let result = m
            .offload(0)
            .run(|ctx| -> Result<u32, SimError> {
                let array = ArrayAccessor::<u32>::fetch(ctx, remote, 4)?;
                array.get(ctx, 4)
            })
            .unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn accessor_is_race_free() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u64>(512).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let mut array = ArrayAccessor::<u64>::fetch(ctx, remote, 512)?;
                for i in 0..512 {
                    let v = array.get(ctx, i)?;
                    array.set(ctx, i, &(v + 1))?;
                }
                array.write_back(ctx)
            })
            .unwrap()
            .unwrap();
        assert_eq!(m.races_detected(), 0);
    }

    #[test]
    fn empty_fetch_moves_nothing() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(4).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let array = ArrayAccessor::<u32>::fetch(ctx, remote, 0)?;
                assert!(array.to_vec(ctx)?.is_empty());
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(m.dma_stats(0).unwrap().gets, 0);
    }

    #[test]
    fn empty_len_reports() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(4).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let array = ArrayAccessor::<u32>::for_output(ctx, remote, 0)?;
                assert!(array.is_empty());
                assert_eq!(array.len(), 0);
                Ok(())
            })
            .unwrap()
            .unwrap();
    }
}
