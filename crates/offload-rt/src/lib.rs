//! The Offload runtime library.
//!
//! Offload C++ (paper §3) is a compiler *plus a runtime library*; this
//! crate is the runtime library half for the simulated machine, holding
//! the three mechanisms §4 of the paper is about:
//!
//! - **Accessor classes** ([`accessor`]): "portable accessor classes
//!   (efficient data access abstractions)" — the `Array` accessor that
//!   replaces one high-latency transfer per loop iteration with a single
//!   bulk transfer (paper §4.2).
//! - **Uniform-type streaming** ([`stream`]): "processing objects in
//!   groups of uniform type permits prefetching and double buffered
//!   transfers, for further performance increases" (paper §4.1).
//! - **Dispatch domains** ([`domain`]): the outer/inner-domain virtual
//!   method machinery of Figure 3, including the informative miss
//!   exception that tells the programmer which method annotation is
//!   missing.
//!
//! Everything here runs against [`simcell::AccelCtx`], so each
//! abstraction carries its real (simulated) cost: the benchmarks in
//! `bench` measure exactly these code paths.

pub mod accessor;
pub mod codeload;
pub mod domain;
pub mod stream;

pub use accessor::ArrayAccessor;
pub use codeload::{dispatch_with_loading, CodeLoader, CodeLoaderStats, DEFAULT_CODE_SIZE};
pub use domain::{
    accel_virtual_dispatch, class_of, host_virtual_dispatch, set_class, ClassId, ClassRegistry,
    DispatchError, Domain, DomainMiss, DuplicateId, FnAddr, LookupCost, MethodSlot, MethodTable,
};
pub use stream::{process_chunked, process_stream, StreamConfig};

/// DMA tag used by [`ArrayAccessor`] bulk transfers.
pub const ACCESSOR_TAG: u8 = 26;
/// DMA tags used by the double-buffered streamer (one per buffer).
pub const STREAM_TAGS: [u8; 2] = [24, 25];
