//! The Offload runtime library.
//!
//! Offload C++ (paper §3) is a compiler *plus a runtime library*; this
//! crate is the runtime library half for the simulated machine, holding
//! the three mechanisms §4 of the paper is about:
//!
//! - **Accessor classes** ([`accessor`]): "portable accessor classes
//!   (efficient data access abstractions)" — the `Array` accessor that
//!   replaces one high-latency transfer per loop iteration with a single
//!   bulk transfer (paper §4.2).
//! - **Uniform-type streaming** ([`stream`]): "processing objects in
//!   groups of uniform type permits prefetching and double buffered
//!   transfers, for further performance increases" (paper §4.1).
//! - **Dispatch domains** ([`domain`]): the outer/inner-domain virtual
//!   method machinery of Figure 3, including the informative miss
//!   exception that tells the programmer which method annotation is
//!   missing.
//!
//! Everything here runs against [`simcell::AccelCtx`], so each
//! abstraction carries its real (simulated) cost: the benchmarks in
//! `bench` measure exactly these code paths.
//!
//! # Example
//!
//! ```
//! use offload_rt::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! let mut machine = Machine::new(MachineConfig::small())?;
//! let remote = machine.alloc_main_slice::<u32>(64)?;
//! machine.main_mut().write_pod_slice(remote, &(0..64).collect::<Vec<u32>>())?;
//! let sum = machine.offload(0).run(|ctx| -> Result<u32, SimError> {
//!     let array = ArrayAccessor::<u32>::fetch(ctx, remote, 64)?;
//!     let mut sum = 0;
//!     for i in 0..array.len() {
//!         sum += array.get(ctx, i)?;
//!     }
//!     Ok(sum)
//! })??;
//! assert_eq!(sum, (0..64).sum());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod accessor;
pub mod codeload;
pub mod domain;
pub mod pipeline;
pub mod prelude;
pub mod remote;
pub mod sched;
pub mod stream;
pub mod tuned;

pub use accessor::ArrayAccessor;
pub use codeload::{dispatch_with_loading, CodeLoader, CodeLoaderStats, DEFAULT_CODE_SIZE};
pub use domain::{
    accel_virtual_dispatch, class_of, host_virtual_dispatch, set_class, ClassId, ClassRegistry,
    Domain, DuplicateId, FnAddr, LookupCost, MethodSlot, MethodTable,
};
pub use pipeline::{MachinePipelineExt, PipeLaneReport, PipeReport, PipelineBuilder};
pub use remote::{GatherView, RemoteSlice};
pub use sched::{SchedExt, SchedPolicy, SchedReport, TileScheduler};
pub use stream::{process_chunked, process_stream, StreamConfig};
pub use tuned::{build_tuned_cache, TunedCache};

/// DMA tag used by [`ArrayAccessor`] bulk transfers. Gather batches
/// issued through [`simcell::AccelCtx::gather`] use the runtime's
/// reserved `GATHER_TAG` (28), so accessor and gather traffic never
/// share a queue.
pub const ACCESSOR_TAG: u8 = 26;
/// DMA tags used by the double-buffered streamer (one per buffer).
pub const STREAM_TAGS: [u8; 2] = [24, 25];
