//! On-demand code loading for dispatch-domain misses.
//!
//! Paper §4.1: "At present, if a dynamically dispatched function does
//! not provide a match in the inner domain, an exception is generated
//! […]. Elaborations on this technique could implement alternative
//! behaviours, such as **on-demand code loading** for functions not
//! present in local memory." This module implements that elaboration:
//! a [`CodeLoader`] manages a local-store *code arena*; when a dispatch
//! misses the domain, the method's code is DMA-streamed from the
//! program image in main memory into the arena (evicting least-recently
//! -used methods when the budget is exceeded) and the call proceeds,
//! instead of raising the exception.
//!
//! Experiment E13 measures the trade-off this buys: a small, fixed
//! local-store budget can serve an arbitrarily large virtual-method
//! working set, at the price of code-transfer stalls whose frequency
//! depends on the call pattern's locality.

use dma::Tag;
use memspace::Addr;
use simcell::{AccelCtx, DispatchFault, Machine, SimError};

use crate::domain::{
    accel_virtual_dispatch, ClassRegistry, Domain, DuplicateId, FnAddr, MethodSlot,
};

/// DMA tag used for code transfers.
const CODE_TAG: u8 = 23;

/// Default compiled size of a method, in bytes, when the registry does
/// not know better (a few hundred instructions).
pub const DEFAULT_CODE_SIZE: u32 = 2048;

#[derive(Clone, Copy, Debug)]
struct LoadedFn {
    func: FnAddr,
    size: u32,
    last_use: u64,
}

/// Statistics of a code loader.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CodeLoaderStats {
    /// Dispatches served by already-resident code.
    pub hits: u64,
    /// Code transfers performed.
    pub loads: u64,
    /// Resident methods evicted to make room.
    pub evictions: u64,
    /// Bytes of code streamed in.
    pub bytes_loaded: u64,
}

/// A local-store code arena with LRU replacement.
///
/// Construct inside an offload block with [`CodeLoader::new`] (the
/// arena is released when the block ends) and dispatch through
/// [`dispatch_with_loading`].
#[derive(Debug)]
pub struct CodeLoader {
    arena: Addr,
    capacity: u32,
    image_base: Addr,
    resident: Vec<LoadedFn>,
    used: u32,
    clock: u64,
    stats: CodeLoaderStats,
}

impl CodeLoader {
    /// Allocates a `capacity`-byte code arena in the accelerator's
    /// local store. `image_base` is the program image in main memory
    /// that code is streamed from (see [`CodeLoader::alloc_image`]).
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot fit the arena.
    pub fn new(
        ctx: &mut AccelCtx<'_>,
        capacity: u32,
        image_base: Addr,
    ) -> Result<CodeLoader, SimError> {
        let arena = ctx.alloc_local(capacity, memspace::DMA_ALIGN)?;
        Ok(CodeLoader {
            arena,
            capacity,
            image_base,
            resident: Vec::new(),
            used: 0,
            clock: 0,
            stats: CodeLoaderStats::default(),
        })
    }

    /// Allocates a program image of `bytes` in main memory (host-side
    /// setup; done once, outside the measured region).
    ///
    /// # Errors
    ///
    /// Fails when main memory is exhausted.
    pub fn alloc_image(machine: &mut Machine, bytes: u32) -> Result<Addr, SimError> {
        machine.alloc_main(bytes, memspace::DMA_ALIGN)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CodeLoaderStats {
        self.stats
    }

    /// Bytes of code currently resident.
    pub fn bytes_resident(&self) -> u32 {
        self.used
    }

    fn tag() -> Tag {
        Tag::new(CODE_TAG).expect("constant tag is valid")
    }

    /// Ensures `func`'s code (of `size` bytes) is resident, streaming
    /// it in and evicting LRU entries as needed. Returns whether a
    /// transfer happened.
    ///
    /// # Errors
    ///
    /// Fails if `size` exceeds the arena capacity or a transfer fails.
    pub fn ensure_loaded(
        &mut self,
        ctx: &mut AccelCtx<'_>,
        func: FnAddr,
        size: u32,
    ) -> Result<bool, SimError> {
        self.clock += 1;
        if let Some(entry) = self.resident.iter_mut().find(|e| e.func == func) {
            entry.last_use = self.clock;
            self.stats.hits += 1;
            // A resident check: one table probe.
            ctx.compute(ctx.cost().domain_lookup_base);
            return Ok(false);
        }
        if size > self.capacity {
            return Err(SimError::BadConfig {
                reason: format!(
                    "method code of {size} bytes exceeds the {}-byte code arena",
                    self.capacity
                ),
            });
        }
        // Evict LRU until the new code fits.
        while self.used + size > self.capacity {
            let lru = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("arena is non-empty when over budget");
            let evicted = self.resident.swap_remove(lru);
            self.used -= evicted.size;
            self.stats.evictions += 1;
        }
        // Compact bookkeeping: code is placed at the current high-water
        // offset modulo capacity (the arena is a simple region; we model
        // placement, not fragmentation).
        let arena_offset = self.used;
        let local = self.arena.offset_by(arena_offset)?;
        // The image offset derives from the function address.
        let image_offset = (func.0.wrapping_mul(64)) % (64 * 1024);
        let remote = self.image_base.offset_by(image_offset % 1024)?;
        // Stream the code in (split over DMA-limit chunks by the engine
        // caller conventions: method code fits one command here).
        let mut moved = 0u32;
        while moved < size {
            let chunk = (size - moved).min(dma::MAX_TRANSFER);
            ctx.dma_get(
                local.offset_by(moved)?,
                remote.offset_by(moved % 512)?,
                chunk,
                Self::tag(),
            )?;
            moved += chunk;
        }
        ctx.dma_wait_tag(Self::tag());
        self.used += size;
        self.resident.push(LoadedFn {
            func,
            size,
            last_use: self.clock,
        });
        self.stats.loads += 1;
        self.stats.bytes_loaded += u64::from(size);
        Ok(true)
    }
}

/// Virtual dispatch that falls back to on-demand code loading on a
/// domain miss, instead of raising the informative exception.
///
/// The domain fast path is unchanged; on a miss, the *host* function's
/// code is streamed into the loader's arena and its address returned as
/// the callable (the loaded copy). `code_size` gives each method's
/// compiled size (use [`DEFAULT_CODE_SIZE`]).
///
/// # Errors
///
/// Propagates header-read, unknown-class and transfer failures — but
/// never [`DispatchFault::DomainMiss`].
#[allow(clippy::too_many_arguments)]
pub fn dispatch_with_loading(
    ctx: &mut AccelCtx<'_>,
    registry: &ClassRegistry,
    domain: &Domain,
    loader: &mut CodeLoader,
    obj: Addr,
    slot: MethodSlot,
    duplicate: DuplicateId,
    code_size: u32,
) -> Result<FnAddr, SimError> {
    match accel_virtual_dispatch(ctx, registry, domain, obj, slot, duplicate) {
        Ok(local) => Ok(local),
        Err(SimError::Dispatch(DispatchFault::DomainMiss { target, .. })) => {
            let target = FnAddr(target);
            loader.ensure_loaded(ctx, target, code_size)?;
            Ok(target)
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::{Machine, MachineConfig};

    fn registry_with_n_classes(n: u32) -> (ClassRegistry, Vec<offload_rt_classes::Class>) {
        // Local helper module keeps the tuple readable.
        let mut registry = ClassRegistry::new();
        let mut classes = Vec::new();
        for i in 0..n {
            let f = registry.fresh_fn(format!("C{i}::update"));
            let c = registry.register_class(format!("C{i}"), None);
            registry.define_method(c, MethodSlot(0), f);
            classes.push(offload_rt_classes::Class { id: c, func: f });
        }
        (registry, classes)
    }

    mod offload_rt_classes {
        #[derive(Clone, Copy)]
        pub struct Class {
            pub id: crate::ClassId,
            pub func: crate::FnAddr,
        }
    }

    #[test]
    fn miss_loads_code_instead_of_raising() {
        let (registry, classes) = registry_with_n_classes(1);
        let domain = Domain::new(); // nothing annotated
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let image = CodeLoader::alloc_image(&mut machine, 64 * 1024).unwrap();
        let obj = machine.alloc_main(64, 16).unwrap();
        machine.main_mut().write_pod(obj, &classes[0].id.0).unwrap();

        let resolved = machine
            .offload(0)
            .run(|ctx| {
                let mut loader = CodeLoader::new(ctx, 16 * 1024, image)?;
                let f = dispatch_with_loading(
                    ctx,
                    &registry,
                    &domain,
                    &mut loader,
                    obj,
                    MethodSlot(0),
                    DuplicateId(1),
                    DEFAULT_CODE_SIZE,
                )?;
                assert_eq!(loader.stats().loads, 1);
                assert_eq!(loader.stats().bytes_loaded, u64::from(DEFAULT_CODE_SIZE));
                Ok::<_, SimError>(f)
            })
            .unwrap()
            .unwrap();
        assert_eq!(resolved, classes[0].func);
    }

    #[test]
    fn repeated_dispatch_hits_resident_code() {
        let (registry, classes) = registry_with_n_classes(1);
        let domain = Domain::new();
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let image = CodeLoader::alloc_image(&mut machine, 64 * 1024).unwrap();
        let obj = machine.alloc_main(64, 16).unwrap();
        machine.main_mut().write_pod(obj, &classes[0].id.0).unwrap();

        machine
            .offload(0)
            .run(|ctx| {
                let mut loader = CodeLoader::new(ctx, 16 * 1024, image)?;
                let mut first_cost = 0;
                let mut second_cost = 0;
                for round in 0..2 {
                    let t0 = ctx.now();
                    dispatch_with_loading(
                        ctx,
                        &registry,
                        &domain,
                        &mut loader,
                        obj,
                        MethodSlot(0),
                        DuplicateId(1),
                        DEFAULT_CODE_SIZE,
                    )
                    .unwrap();
                    let cost = ctx.now() - t0;
                    if round == 0 {
                        first_cost = cost
                    } else {
                        second_cost = cost
                    }
                }
                assert_eq!(loader.stats().loads, 1);
                assert_eq!(loader.stats().hits, 1);
                // Both pay the outer header read; only the first pays
                // the code transfer (≥ latency).
                assert!(
                    second_cost + ctx.cost().dma.latency <= first_cost,
                    "resident dispatch skips the code transfer: {second_cost} vs {first_cost}"
                );
                Ok::<_, SimError>(())
            })
            .unwrap()
            .unwrap();
    }

    #[test]
    fn lru_eviction_under_a_tight_budget() {
        let (registry, classes) = registry_with_n_classes(3);
        let domain = Domain::new();
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let image = CodeLoader::alloc_image(&mut machine, 64 * 1024).unwrap();
        let objs: Vec<Addr> = classes
            .iter()
            .map(|c| {
                let obj = machine.alloc_main(64, 16).unwrap();
                machine.main_mut().write_pod(obj, &c.id.0).unwrap();
                obj
            })
            .collect();

        machine
            .offload(0)
            .run(|ctx| {
                // Budget for exactly two methods.
                let mut loader = CodeLoader::new(ctx, 2 * DEFAULT_CODE_SIZE, image)?;
                let call = |ctx: &mut simcell::AccelCtx<'_>, loader: &mut CodeLoader, i: usize| {
                    dispatch_with_loading(
                        ctx,
                        &registry,
                        &domain,
                        loader,
                        objs[i],
                        MethodSlot(0),
                        DuplicateId(1),
                        DEFAULT_CODE_SIZE,
                    )
                    .unwrap();
                };
                call(ctx, &mut loader, 0); // load A
                call(ctx, &mut loader, 1); // load B
                call(ctx, &mut loader, 0); // hit A (refreshes LRU)
                call(ctx, &mut loader, 2); // load C -> evicts B
                call(ctx, &mut loader, 1); // reload B -> evicts A
                let stats = loader.stats();
                assert_eq!(stats.loads, 4);
                assert_eq!(stats.evictions, 2);
                assert_eq!(stats.hits, 1);
                assert!(loader.bytes_resident() <= 2 * DEFAULT_CODE_SIZE);
                Ok::<_, SimError>(())
            })
            .unwrap()
            .unwrap();
    }

    #[test]
    fn oversized_method_is_rejected() {
        let (registry, classes) = registry_with_n_classes(1);
        let domain = Domain::new();
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let image = CodeLoader::alloc_image(&mut machine, 64 * 1024).unwrap();
        let obj = machine.alloc_main(64, 16).unwrap();
        machine.main_mut().write_pod(obj, &classes[0].id.0).unwrap();

        let result = machine
            .offload(0)
            .run(|ctx| {
                let mut loader = CodeLoader::new(ctx, 1024, image)?;
                dispatch_with_loading(
                    ctx,
                    &registry,
                    &domain,
                    &mut loader,
                    obj,
                    MethodSlot(0),
                    DuplicateId(1),
                    4096,
                )?;
                Ok::<_, SimError>(())
            })
            .unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn annotated_methods_never_touch_the_loader() {
        let (mut registry, classes) = registry_with_n_classes(1);
        let local = registry.fresh_fn("C0::update [spu]");
        let mut domain = Domain::new();
        domain.add(classes[0].func, &[(DuplicateId(1), local)]);

        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let image = CodeLoader::alloc_image(&mut machine, 64 * 1024).unwrap();
        let obj = machine.alloc_main(64, 16).unwrap();
        machine.main_mut().write_pod(obj, &classes[0].id.0).unwrap();

        machine
            .offload(0)
            .run(|ctx| {
                let mut loader = CodeLoader::new(ctx, 16 * 1024, image)?;
                let f = dispatch_with_loading(
                    ctx,
                    &registry,
                    &domain,
                    &mut loader,
                    obj,
                    MethodSlot(0),
                    DuplicateId(1),
                    DEFAULT_CODE_SIZE,
                )
                .unwrap();
                assert_eq!(f, local, "the domain fast path resolved it");
                assert_eq!(loader.stats().loads, 0);
                Ok::<_, SimError>(())
            })
            .unwrap()
            .unwrap();
    }
}
