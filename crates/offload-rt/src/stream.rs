//! Chunked and double-buffered streaming over main-memory arrays.
//!
//! Paper §4.1: "processing objects in groups of uniform type permits
//! prefetching and double buffered transfers, for further performance
//! increases." [`process_stream`] is that double-buffered pipeline:
//! while the core computes on chunk *i* in one local buffer, the DMA
//! engine is already fetching chunk *i+1* into the other (and draining
//! chunk *i−1*'s write-back). [`process_chunked`] is the single-buffered
//! baseline: fetch, wait, compute, put, wait — no overlap.

use dma::Tag;
use memspace::{Addr, Pod};
use simcell::{AccelCtx, SimError};

use crate::STREAM_TAGS;

/// Configuration of a streaming pass.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Elements per chunk (per local buffer).
    pub chunk_elems: u32,
    /// Whether processed chunks are written back to main memory.
    pub write_back: bool,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            chunk_elems: 64,
            write_back: true,
        }
    }
}

impl StreamConfig {
    /// Derives the streaming configuration an autotuned
    /// [`CacheChoice`](softcache::CacheChoice) implies: the
    /// double-buffered chunk adopts the tuned line size, in elements of
    /// `T`. Returns `None` unless the choice is a streaming one — the
    /// other families do not describe a sequential prefetch depth.
    pub fn from_choice<T: Pod>(
        choice: &softcache::CacheChoice,
        write_back: bool,
    ) -> Option<StreamConfig> {
        choice
            .stream_chunk_elems(T::SIZE as u32)
            .map(|chunk_elems| StreamConfig {
                chunk_elems,
                write_back,
            })
    }
}

fn stream_tag(which: usize) -> Tag {
    Tag::new(STREAM_TAGS[which]).expect("constant tags are valid")
}

/// Streams `len` elements starting at `remote` through the closure in
/// single-buffered chunks (no compute/transfer overlap).
///
/// The closure receives the index of the chunk's first element and the
/// chunk contents; whatever it leaves in the slice is written back when
/// `config.write_back` is set.
///
/// # Errors
///
/// Propagates allocation and transfer failures, and whatever the
/// closure returns.
pub fn process_chunked<T, F>(
    ctx: &mut AccelCtx<'_>,
    remote: Addr,
    len: u32,
    config: StreamConfig,
    mut f: F,
) -> Result<(), SimError>
where
    T: Pod,
    F: FnMut(&mut AccelCtx<'_>, u32, &mut [T]) -> Result<(), SimError>,
{
    ctx.span_start("process_chunked");
    let chunk_elems = config.chunk_elems.max(1);
    let buffer = ctx.alloc_local_slice::<T>(chunk_elems)?;
    let tag = stream_tag(0);
    let elem = T::SIZE as u32;
    // One scratch allocation reused across every chunk.
    let mut chunk: Vec<T> = Vec::with_capacity(chunk_elems as usize);
    let mut base = 0u32;
    while base < len {
        let n = chunk_elems.min(len - base);
        let r = remote.element(base, elem)?;
        ctx.dma_get(buffer, r, n * elem, tag)?;
        ctx.dma_wait_tag(tag);
        // Surface an injected tag timeout before computing on data
        // that may not have fully arrived.
        ctx.check_faults()?;
        chunk.clear();
        ctx.local_read_slice_into(buffer, n, &mut chunk)?;
        f(ctx, base, &mut chunk)?;
        if config.write_back {
            ctx.local_write_slice(buffer, &chunk)?;
            // A chunk in a `read`-declared range that came through the
            // transform unchanged needs no put at all (and one that
            // changed is an undeclared write).
            if !ctx.writeback_elidable(buffer, r, n * elem)? {
                ctx.dma_put(buffer, r, n * elem, tag)?;
                ctx.dma_wait_tag(tag);
                ctx.check_faults()?;
            }
        }
        base += n;
    }
    ctx.span_end("process_chunked");
    Ok(())
}

/// Streams `len` elements starting at `remote` through the closure with
/// double buffering: chunk `i+1` is fetched while chunk `i` is being
/// processed, and write-backs drain behind the compute.
///
/// Semantics match [`process_chunked`]; only the schedule differs.
///
/// # Errors
///
/// As for [`process_chunked`].
pub fn process_stream<T, F>(
    ctx: &mut AccelCtx<'_>,
    remote: Addr,
    len: u32,
    config: StreamConfig,
    mut f: F,
) -> Result<(), SimError>
where
    T: Pod,
    F: FnMut(&mut AccelCtx<'_>, u32, &mut [T]) -> Result<(), SimError>,
{
    let chunk_elems = config.chunk_elems.max(1);
    let buffers = [
        ctx.alloc_local_slice::<T>(chunk_elems)?,
        ctx.alloc_local_slice::<T>(chunk_elems)?,
    ];
    let elem = T::SIZE as u32;
    if len == 0 {
        return Ok(());
    }
    ctx.span_start("process_stream");
    let chunk_count = len.div_ceil(chunk_elems);
    let chunk_len = |i: u32| chunk_elems.min(len - i * chunk_elems);
    let chunk_remote = |i: u32| remote.element(i * chunk_elems, elem);
    // One scratch allocation reused across every chunk.
    let mut chunk: Vec<T> = Vec::with_capacity(chunk_elems as usize);

    // Prime the pipeline with chunk 0.
    ctx.dma_get(
        buffers[0],
        chunk_remote(0)?,
        chunk_len(0) * elem,
        stream_tag(0),
    )?;

    for i in 0..chunk_count {
        let cur = (i % 2) as usize;
        let nxt = 1 - cur;
        // Prefetch the next chunk into the other buffer. Its tag first
        // drains the write-back of chunk i-1 that used the same buffer.
        if i + 1 < chunk_count {
            ctx.dma_wait_tag(stream_tag(nxt));
            ctx.dma_get(
                buffers[nxt],
                chunk_remote(i + 1)?,
                chunk_len(i + 1) * elem,
                stream_tag(nxt),
            )?;
        }
        // Wait for the current chunk and process it. A timed-out wait
        // means the buffer may be stale; surface it before computing.
        ctx.dma_wait_tag(stream_tag(cur));
        ctx.check_faults()?;
        let n = chunk_len(i);
        chunk.clear();
        ctx.local_read_slice_into(buffers[cur], n, &mut chunk)?;
        f(ctx, i * chunk_elems, &mut chunk)?;
        if config.write_back {
            ctx.local_write_slice(buffers[cur], &chunk)?;
            // A chunk in a `read`-declared range that came through the
            // transform unchanged needs no put at all (and one that
            // changed is an undeclared write).
            if !ctx.writeback_elidable(buffers[cur], chunk_remote(i)?, n * elem)? {
                // Non-blocking put: it drains while the next chunk computes.
                ctx.dma_put(buffers[cur], chunk_remote(i)?, n * elem, stream_tag(cur))?;
            }
        }
    }
    // Drain the pipeline.
    ctx.dma_wait_tag(stream_tag(0));
    ctx.dma_wait_tag(stream_tag(1));
    ctx.check_faults()?;
    ctx.span_end("process_stream");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::{Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::small()).unwrap()
    }

    fn prepared(m: &mut Machine, len: u32) -> Addr {
        let remote = m.alloc_main_slice::<u32>(len).unwrap();
        let values: Vec<u32> = (0..len).collect();
        m.main_mut().write_pod_slice(remote, &values).unwrap();
        remote
    }

    #[test]
    fn chunked_transforms_every_element() {
        let mut m = machine();
        let remote = prepared(&mut m, 300);
        m.offload(0)
            .run(|ctx| {
                process_chunked::<u32, _>(
                    ctx,
                    remote,
                    300,
                    StreamConfig::default(),
                    |ctx, _, chunk| {
                        for v in chunk.iter_mut() {
                            *v += 1000;
                        }
                        ctx.compute(chunk.len() as u64);
                        Ok(())
                    },
                )
            })
            .unwrap()
            .unwrap();
        let out = m.main().read_pod_slice::<u32>(remote, 300).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1000));
    }

    #[test]
    fn stream_transforms_every_element() {
        let mut m = machine();
        let remote = prepared(&mut m, 300);
        m.offload(0)
            .run(|ctx| {
                process_stream::<u32, _>(
                    ctx,
                    remote,
                    300,
                    StreamConfig::default(),
                    |ctx, base, chunk| {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            assert_eq!(*v, base + i as u32, "chunks arrive in order");
                            *v *= 2;
                        }
                        ctx.compute(chunk.len() as u64);
                        Ok(())
                    },
                )
            })
            .unwrap()
            .unwrap();
        let out = m.main().read_pod_slice::<u32>(remote, 300).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u32));
    }

    #[test]
    fn double_buffering_beats_single_buffering() {
        // With non-trivial per-chunk compute, the double-buffered
        // pipeline hides transfer latency behind compute.
        let run = |double: bool| -> u64 {
            let mut m = machine();
            let remote = prepared(&mut m, 4096);
            let config = StreamConfig {
                chunk_elems: 256,
                write_back: true,
            };
            let work = |ctx: &mut AccelCtx<'_>, _: u32, chunk: &mut [u32]| {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
                ctx.compute(4 * chunk.len() as u64);
                Ok(())
            };
            let handle = m
                .offload(0)
                .spawn(|ctx| {
                    if double {
                        process_stream::<u32, _>(ctx, remote, 4096, config, work)
                    } else {
                        process_chunked::<u32, _>(ctx, remote, 4096, config, work)
                    }
                })
                .unwrap();
            let elapsed = handle.elapsed();
            m.join(handle).unwrap();
            elapsed
        };
        let single = run(false);
        let double = run(true);
        assert!(
            double * 10 < single * 9,
            "double buffering should win by >10%: {double} vs {single}"
        );
    }

    #[test]
    fn streaming_is_race_free() {
        let mut m = machine();
        let remote = prepared(&mut m, 1000);
        m.offload(0)
            .run(|ctx| {
                process_stream::<u32, _>(
                    ctx,
                    remote,
                    1000,
                    StreamConfig {
                        chunk_elems: 96,
                        write_back: true,
                    },
                    |_, _, chunk| {
                        for v in chunk.iter_mut() {
                            *v ^= 0xffff_ffff;
                        }
                        Ok(())
                    },
                )
            })
            .unwrap()
            .unwrap();
        assert_eq!(m.races_detected(), 0, "{:?}", m.take_race_reports());
    }

    #[test]
    fn read_only_stream_issues_no_puts() {
        let mut m = machine();
        let remote = prepared(&mut m, 256);
        let config = StreamConfig {
            chunk_elems: 64,
            write_back: false,
        };
        let sum = m
            .offload(0)
            .run(|ctx| -> Result<u64, SimError> {
                let mut sum = 0u64;
                process_stream::<u32, _>(ctx, remote, 256, config, |_, _, chunk| {
                    sum += chunk.iter().map(|&v| u64::from(v)).sum::<u64>();
                    Ok(())
                })?;
                Ok(sum)
            })
            .unwrap()
            .unwrap();
        assert_eq!(sum, (0..256u64).sum::<u64>());
        assert_eq!(m.dma_stats(0).unwrap().puts, 0);
    }

    #[test]
    fn empty_and_partial_chunks() {
        let mut m = machine();
        let remote = prepared(&mut m, 100);
        // 100 elements in chunks of 64 -> one full + one partial chunk.
        m.offload(0)
            .run(|ctx| {
                process_stream::<u32, _>(
                    ctx,
                    remote,
                    100,
                    StreamConfig {
                        chunk_elems: 64,
                        write_back: true,
                    },
                    |_, _, chunk| {
                        for v in chunk.iter_mut() {
                            *v += 1;
                        }
                        Ok(())
                    },
                )?;
                // Zero-length stream is a no-op.
                process_stream::<u32, _>(ctx, remote, 0, StreamConfig::default(), |_, _, _| {
                    panic!("closure must not run for an empty stream")
                })
            })
            .unwrap()
            .unwrap();
        let out = m.main().read_pod_slice::<u32>(remote, 100).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn closure_errors_propagate() {
        let mut m = machine();
        let remote = prepared(&mut m, 64);
        let result = m
            .offload(0)
            .run(|ctx| {
                process_chunked::<u32, _>(ctx, remote, 64, StreamConfig::default(), |_, _, _| {
                    Err(SimError::BadConfig {
                        reason: "synthetic".into(),
                    })
                })
            })
            .unwrap();
        assert!(matches!(result, Err(SimError::BadConfig { .. })));
    }
}
