//! Applying an autotuned cache choice to an offload.
//!
//! The `softcache::autotune` search returns a [`CacheChoice`] — naive,
//! set-associative, or streaming. The conversions from that value to a
//! running cache live on `CacheChoice` itself ([`CacheChoice::build`],
//! [`CacheChoice::stream_chunk_elems`] in `softcache`); this module
//! keeps the offload-side conveniences: [`build_tuned_cache`] builds
//! the choice inside an offload block from the accelerator's local
//! store, and [`crate::StreamConfig::from_choice`] derives a
//! double-buffered streaming configuration from a streaming winner.
//!
//! Most code no longer needs either: pass the choice to
//! [`simcell::OffloadBuilder::cache`] and the machine builds, routes
//! and flushes the cache around the offload closure itself.

use simcell::{AccelCtx, SimError};
use softcache::CacheChoice;

pub use softcache::TunedCache;

/// Builds the cache an autotuned [`CacheChoice`] describes inside the
/// current offload block, allocating its buffers from the accelerator's
/// local store. Returns `None` for [`CacheChoice::Naive`] — the tuner
/// decided plain outer accesses win, so there is nothing to build.
///
/// Prefer [`simcell::OffloadBuilder::cache`], which installs the same
/// cache machine-side and flushes it when the offload returns; this
/// helper remains for code that manages the cache lifetime by hand.
///
/// # Errors
///
/// Fails if the local store cannot fit the chosen configuration.
pub fn build_tuned_cache(
    ctx: &mut AccelCtx<'_>,
    choice: &CacheChoice,
) -> Result<Option<TunedCache>, SimError> {
    ctx.new_tuned_cache(choice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamConfig;
    use simcell::{Machine, MachineConfig};
    use softcache::autotune::{autotune, replay_exact, TuneOptions};
    use softcache::{CacheConfig, SoftwareCache};

    #[test]
    fn naive_choice_builds_no_cache() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let built = m
            .offload(0)
            .run(|ctx| -> Result<bool, SimError> {
                Ok(build_tuned_cache(ctx, &CacheChoice::Naive)?.is_some())
            })
            .unwrap()
            .unwrap();
        assert!(!built);
    }

    #[test]
    fn tuned_caches_read_correct_data_in_both_families() {
        for choice in [
            CacheChoice::SetAssoc(CacheConfig::four_way_16k()),
            CacheChoice::Stream(CacheConfig::new(1024, 1, 1)),
        ] {
            let mut m = Machine::new(MachineConfig::small()).unwrap();
            let remote = m.alloc_main_slice::<u32>(512).unwrap();
            let values: Vec<u32> = (0..512).map(|i| i * 3).collect();
            m.main_mut().write_pod_slice(remote, &values).unwrap();
            let sum = m
                .offload(0)
                .run(|ctx| -> Result<u64, SimError> {
                    let mut cache = build_tuned_cache(ctx, &choice)?.expect("cache families build");
                    let mut sum = 0u64;
                    for i in 0..512u32 {
                        let v: u32 = ctx.cached_read_pod(&mut cache, remote.element(i, 4)?)?;
                        sum += u64::from(v);
                    }
                    assert!(cache.stats().hits > 0, "{}", cache.describe());
                    Ok(sum)
                })
                .unwrap()
                .unwrap();
            assert_eq!(sum, values.iter().map(|&v| u64::from(v)).sum::<u64>());
        }
    }

    #[test]
    fn autotuned_choice_applies_and_reproduces_its_predicted_cycles() {
        // Capture a sequential scan, tune it, apply the winner through
        // build_tuned_cache, and check the tuned run (a) beats naive
        // and (b) lands exactly on the cycles exact replay predicted.
        let len = 16 * 1024u32;
        let run = |choice: Option<&CacheChoice>, capture: bool| -> (u64, Vec<_>) {
            let mut m = Machine::new(MachineConfig::small()).unwrap();
            m.access_trace_mut().set_enabled(capture);
            let data = m.alloc_main(len, 16).unwrap();
            let choice = choice.cloned();
            let elapsed = m
                .offload(0)
                .run(move |ctx| -> Result<u64, SimError> {
                    let t0 = ctx.now();
                    let mut cache = match &choice {
                        Some(c) => build_tuned_cache(ctx, c)?,
                        None => None,
                    };
                    let mut buf = [0u8; 16];
                    for off in (0..len - 16).step_by(16) {
                        match &mut cache {
                            Some(c) => ctx.cached_read_bytes(c, data.offset_by(off)?, &mut buf)?,
                            None => ctx.outer_read_bytes(data.offset_by(off)?, &mut buf)?,
                        }
                    }
                    Ok(ctx.now() - t0)
                })
                .unwrap()
                .unwrap();
            (elapsed, m.access_trace().records().to_vec())
        };

        let (naive_cycles, trace) = run(None, true);
        let opts = TuneOptions::default();
        let report = autotune(&trace, &opts).unwrap();
        let winner = report.winner();
        assert_eq!(winner.choice.family(), "stream", "sequential scans stream");

        let (tuned_cycles, _) = run(Some(&winner.choice), false);
        assert!(tuned_cycles < naive_cycles);
        assert_eq!(
            tuned_cycles,
            replay_exact(&winner.choice, &trace, &opts).unwrap(),
            "applying the tuned choice reproduces the validated replay bit-identically"
        );
    }

    #[test]
    fn stream_config_derivation() {
        let stream = CacheChoice::Stream(CacheConfig::new(1024, 1, 1));
        let cfg = StreamConfig::from_choice::<u32>(&stream, true).unwrap();
        assert_eq!(cfg.chunk_elems, 256);
        assert!(cfg.write_back);
        assert!(StreamConfig::from_choice::<u32>(&CacheChoice::Naive, true).is_none());
        let assoc = CacheChoice::SetAssoc(CacheConfig::four_way_16k());
        assert!(StreamConfig::from_choice::<u32>(&assoc, false).is_none());
    }
}
