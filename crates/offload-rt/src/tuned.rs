//! Applying an autotuned cache choice to an offload.
//!
//! The `softcache::autotune` search returns a [`CacheChoice`] — naive,
//! set-associative, or streaming. This module turns that value back
//! into a running cache inside an offload block
//! ([`build_tuned_cache`]), and derives a double-buffered
//! [`StreamConfig`] from a streaming winner ([`stream_config_for`]) so
//! the §4.1 uniform streaming helpers can adopt the tuned line size.

use memspace::Pod;
use simcell::{AccelCtx, SimError};
use softcache::{
    CacheBacking, CacheChoice, CacheError, CacheStats, SetAssociativeCache, SoftwareCache,
    StreamCache,
};

use crate::StreamConfig;

/// A runtime cache built from an autotuned [`CacheChoice`].
///
/// Both concrete cache families behind one type, so offload code can
/// hold "whatever the tuner picked" without generics; a naive choice
/// builds no cache at all ([`build_tuned_cache`] returns `None`).
#[derive(Debug)]
pub enum TunedCache {
    /// The tuner picked a set-associative configuration.
    SetAssoc(SetAssociativeCache),
    /// The tuner picked a streaming (prefetch) configuration.
    Stream(StreamCache),
}

impl SoftwareCache for TunedCache {
    fn read(
        &mut self,
        now: u64,
        addr: memspace::Addr,
        out: &mut [u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        match self {
            TunedCache::SetAssoc(c) => c.read(now, addr, out, backing),
            TunedCache::Stream(c) => c.read(now, addr, out, backing),
        }
    }

    fn write(
        &mut self,
        now: u64,
        addr: memspace::Addr,
        data: &[u8],
        backing: &mut CacheBacking<'_>,
    ) -> Result<u64, CacheError> {
        match self {
            TunedCache::SetAssoc(c) => c.write(now, addr, data, backing),
            TunedCache::Stream(c) => c.write(now, addr, data, backing),
        }
    }

    fn flush(&mut self, now: u64, backing: &mut CacheBacking<'_>) -> Result<u64, CacheError> {
        match self {
            TunedCache::SetAssoc(c) => c.flush(now, backing),
            TunedCache::Stream(c) => c.flush(now, backing),
        }
    }

    fn invalidate(&mut self) {
        match self {
            TunedCache::SetAssoc(c) => c.invalidate(),
            TunedCache::Stream(c) => c.invalidate(),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            TunedCache::SetAssoc(c) => c.stats(),
            TunedCache::Stream(c) => c.stats(),
        }
    }

    fn describe(&self) -> String {
        match self {
            TunedCache::SetAssoc(c) => c.describe(),
            TunedCache::Stream(c) => c.describe(),
        }
    }
}

/// Builds the cache an autotuned [`CacheChoice`] describes inside the
/// current offload block, allocating its buffers from the accelerator's
/// local store. Returns `None` for [`CacheChoice::Naive`] — the tuner
/// decided plain outer accesses win, so there is nothing to build.
///
/// # Errors
///
/// Fails if the local store cannot fit the chosen configuration.
pub fn build_tuned_cache(
    ctx: &mut AccelCtx<'_>,
    choice: &CacheChoice,
) -> Result<Option<TunedCache>, SimError> {
    Ok(match choice {
        CacheChoice::Naive => None,
        CacheChoice::SetAssoc(config) => Some(TunedCache::SetAssoc(ctx.new_cache(*config)?)),
        CacheChoice::Stream(config) => Some(TunedCache::Stream(ctx.new_stream_cache(*config)?)),
    })
}

/// Derives a [`StreamConfig`] for the §4.1 uniform streaming helpers
/// from a streaming tuner winner: the double-buffered chunk size adopts
/// the tuned line size (in elements of `T`). Returns `None` unless the
/// choice is [`CacheChoice::Stream`] — the other families do not
/// describe a sequential prefetch depth.
pub fn stream_config_for<T: Pod>(choice: &CacheChoice, write_back: bool) -> Option<StreamConfig> {
    match choice {
        CacheChoice::Stream(config) => Some(StreamConfig {
            chunk_elems: (config.line_size / T::SIZE as u32).max(1),
            write_back,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::{Machine, MachineConfig};
    use softcache::autotune::{autotune, replay_exact, TuneOptions};
    use softcache::CacheConfig;

    #[test]
    fn naive_choice_builds_no_cache() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let built = m
            .run_offload(0, |ctx| -> Result<bool, SimError> {
                Ok(build_tuned_cache(ctx, &CacheChoice::Naive)?.is_some())
            })
            .unwrap()
            .unwrap();
        assert!(!built);
    }

    #[test]
    fn tuned_caches_read_correct_data_in_both_families() {
        for choice in [
            CacheChoice::SetAssoc(CacheConfig::four_way_16k()),
            CacheChoice::Stream(CacheConfig::new(1024, 1, 1)),
        ] {
            let mut m = Machine::new(MachineConfig::small()).unwrap();
            let remote = m.alloc_main_slice::<u32>(512).unwrap();
            let values: Vec<u32> = (0..512).map(|i| i * 3).collect();
            m.main_mut().write_pod_slice(remote, &values).unwrap();
            let sum = m
                .run_offload(0, |ctx| -> Result<u64, SimError> {
                    let mut cache = build_tuned_cache(ctx, &choice)?.expect("cache families build");
                    let mut sum = 0u64;
                    for i in 0..512u32 {
                        let v: u32 = ctx.cached_read_pod(&mut cache, remote.element(i, 4)?)?;
                        sum += u64::from(v);
                    }
                    assert!(cache.stats().hits > 0, "{}", cache.describe());
                    Ok(sum)
                })
                .unwrap()
                .unwrap();
            assert_eq!(sum, values.iter().map(|&v| u64::from(v)).sum::<u64>());
        }
    }

    #[test]
    fn autotuned_choice_applies_and_reproduces_its_predicted_cycles() {
        // Capture a sequential scan, tune it, apply the winner through
        // build_tuned_cache, and check the tuned run (a) beats naive
        // and (b) lands exactly on the cycles exact replay predicted.
        let len = 16 * 1024u32;
        let run = |choice: Option<&CacheChoice>, capture: bool| -> (u64, Vec<_>) {
            let mut m = Machine::new(MachineConfig::small()).unwrap();
            m.access_trace_mut().set_enabled(capture);
            let data = m.alloc_main(len, 16).unwrap();
            let choice = choice.cloned();
            let elapsed = m
                .run_offload(0, move |ctx| -> Result<u64, SimError> {
                    let t0 = ctx.now();
                    let mut cache = match &choice {
                        Some(c) => build_tuned_cache(ctx, c)?,
                        None => None,
                    };
                    let mut buf = [0u8; 16];
                    for off in (0..len - 16).step_by(16) {
                        match &mut cache {
                            Some(c) => ctx.cached_read_bytes(c, data.offset_by(off)?, &mut buf)?,
                            None => ctx.outer_read_bytes(data.offset_by(off)?, &mut buf)?,
                        }
                    }
                    Ok(ctx.now() - t0)
                })
                .unwrap()
                .unwrap();
            (elapsed, m.access_trace().records().to_vec())
        };

        let (naive_cycles, trace) = run(None, true);
        let opts = TuneOptions::default();
        let report = autotune(&trace, &opts).unwrap();
        let winner = report.winner();
        assert_eq!(winner.choice.family(), "stream", "sequential scans stream");

        let (tuned_cycles, _) = run(Some(&winner.choice), false);
        assert!(tuned_cycles < naive_cycles);
        assert_eq!(
            tuned_cycles,
            replay_exact(&winner.choice, &trace, &opts).unwrap(),
            "applying the tuned choice reproduces the validated replay bit-identically"
        );
    }

    #[test]
    fn stream_config_derivation() {
        let stream = CacheChoice::Stream(CacheConfig::new(1024, 1, 1));
        let cfg = stream_config_for::<u32>(&stream, true).unwrap();
        assert_eq!(cfg.chunk_elems, 256);
        assert!(cfg.write_back);
        assert!(stream_config_for::<u32>(&CacheChoice::Naive, true).is_none());
        let assoc = CacheChoice::SetAssoc(CacheConfig::four_way_16k());
        assert!(stream_config_for::<u32>(&assoc, false).is_none());
    }
}
