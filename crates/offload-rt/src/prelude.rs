//! The working set of the Offload runtime, in one import.
//!
//! `use offload_rt::prelude::*;` brings in everything a typical
//! offloaded frame touches: the machine and its fluent offload
//! builder, the accessor and streaming abstractions, the autotuned
//! cache types, and the tile scheduler. Examples and doc tests across
//! the repository import exactly this.

pub use memspace::{Addr, Pod, SpaceId};
pub use simcell::{
    AccelCtx, AccessMode, DispatchFault, FaultError, FaultPlan, GatherPlan, Machine, MachineConfig,
    ModeDecl, ModeSet, OffloadBuilder, OffloadHandle, SimError,
};
pub use softcache::{autotune::autotune, CacheChoice, CacheConfig, TunedCache};

pub use crate::accessor::ArrayAccessor;
pub use crate::pipeline::{MachinePipelineExt, PipeLaneReport, PipeReport, PipelineBuilder};
pub use crate::remote::{GatherView, RemoteSlice};
pub use crate::sched::{SchedExt, SchedPolicy, SchedReport, TileScheduler};
pub use crate::stream::{process_chunked, process_stream, StreamConfig};
pub use crate::tuned::build_tuned_cache;
