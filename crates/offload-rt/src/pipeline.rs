//! Cycle-accounted streaming pipelines across accelerators.
//!
//! The scheduler ([`crate::sched`]) fans *independent* tiles out over
//! accelerators; this module chains *dependent* stages across them, the
//! self-offloading pipeline shape of FastFlow (arXiv 1002.4668) mapped
//! onto the paper's machine: sequential code carved into stages
//! connected by bounded queues, with compute/transfer overlap doing the
//! accelerating.
//!
//! `machine.pipeline().stage(k1).stage(k2).buffers(2).run(remote, len)`
//! places stage `k` on accelerator `base + k` and streams the array
//! through all stages in chunks. Stage `k` processes chunk `i` while
//! stage `k-1` is already computing chunk `i+1`; inside each
//! stage/chunk the transfer itself is double-buffered through
//! [`process_stream`], so DMA for the next sub-chunk overlaps compute
//! on the current one.
//!
//! # The bounded-queue cycle model
//!
//! The inter-stage queues are not materialised — chunks live in main
//! memory, and what the queue really bounds is *timing*. Two stalls are
//! charged on the accelerator clocks, both visible on the trace's
//! `pipe` lanes and in [`MachineStats`](simcell::MachineStats):
//!
//! - **Input wait**: stage `k` cannot start chunk `i` before stage
//!   `k-1` finished pushing it. If the accelerator is ready earlier,
//!   the gap is charged as an input-wait stall.
//! - **Backpressure**: the queue between stages `k` and `k+1` holds
//!   [`PipelineBuilder::buffers`] chunks. Stage `k` finishes pushing
//!   chunk `i` only once stage `k+1` has started consuming chunk
//!   `i - buffers`; until then the producer blocks, and the gap is
//!   charged as a backpressure stall.
//!
//! Because every stall is paid in simulated cycles on the lane that
//! stalls, a pipeline's win over running the same stages sequentially
//! is purely the overlap — the memory image it produces is
//! bit-identical (stages must be chunk-local transforms: chunk `i`'s
//! output may depend only on chunk `i`'s input).
//!
//! # Recovery
//!
//! The `.faults(plan)/.retry(n)/.backoff(c)/.fallback_host()` chain
//! works as for the tile scheduler: a transient fault re-runs the
//! stage/chunk item on its accelerator after rolling back its puts; an
//! unrecoverable item (retries exhausted, or the stage's accelerator
//! dead) degrades to host execution when the fallback is enabled, and
//! downstream stages simply see a later push time. Results stay
//! bit-identical to the fault-free run.
//!
//! # Example
//!
//! ```
//! use offload_rt::pipeline::MachinePipelineExt;
//! use simcell::{Machine, MachineConfig, SimError};
//!
//! # fn main() -> Result<(), SimError> {
//! let mut machine = Machine::new(MachineConfig::default())?;
//! let remote = machine.alloc_main_slice::<u32>(256)?;
//! machine
//!     .main_mut()
//!     .write_pod_slice(remote, &(0..256).collect::<Vec<u32>>())?;
//! let report = machine
//!     .pipeline()
//!     .stage_named("double", |ctx, _, chunk: &mut [u32]| {
//!         for v in chunk.iter_mut() {
//!             *v *= 2;
//!         }
//!         ctx.compute(chunk.len() as u64);
//!         Ok(())
//!     })
//!     .stage_named("inc", |ctx, _, chunk: &mut [u32]| {
//!         for v in chunk.iter_mut() {
//!             *v += 1;
//!         }
//!         ctx.compute(chunk.len() as u64);
//!         Ok(())
//!     })
//!     .buffers(2)
//!     .run(remote, 256)?;
//! assert_eq!(report.chunks, 4);
//! let out = machine.main().read_pod_slice::<u32>(remote, 256)?;
//! assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u32 + 1));
//! # Ok(())
//! # }
//! ```

use memspace::{Addr, Pod};
use simcell::{AccelCtx, AccessMode, FaultPlan, Machine, ModeSet, OffloadHandle, SimError};

use crate::sched::{run_with_retries, DEFAULT_RETRY_BACKOFF};
use crate::stream::{process_stream, StreamConfig};

/// Default bounded-queue depth between adjacent stages, in chunks —
/// the classic double buffer: one chunk in flight downstream while the
/// producer fills the next.
pub const DEFAULT_PIPE_BUFFERS: u32 = 2;

/// Default elements per pipeline chunk (the unit handed from stage to
/// stage; matches [`StreamConfig::default`]'s chunk).
pub const DEFAULT_PIPE_CHUNK: u32 = 64;

/// Extends [`Machine`] with the pipeline entry point, so a staged
/// stream reads as one fluent chain:
/// `machine.pipeline().stage(k1).stage(k2).buffers(2).run(remote, len)`.
pub trait MachinePipelineExt {
    /// Starts building a pipeline over elements of type `T`. Stage `k`
    /// runs on accelerator `k` (shift with [`PipelineBuilder::base`]).
    fn pipeline<T: Pod>(&mut self) -> PipelineBuilder<'_, T>;
}

impl MachinePipelineExt for Machine {
    fn pipeline<T: Pod>(&mut self) -> PipelineBuilder<'_, T> {
        PipelineBuilder {
            machine: self,
            base: 0,
            stages: Vec::new(),
            buffers: DEFAULT_PIPE_BUFFERS,
            chunk_elems: DEFAULT_PIPE_CHUNK,
            faults: None,
            retries: 0,
            backoff: DEFAULT_RETRY_BACKOFF,
            fallback: false,
            orphan_modes: false,
        }
    }
}

/// A pipeline stage: a chunk-local transform plus its trace label and
/// declared access modes.
struct PipeStage<'m, T> {
    name: &'static str,
    modes: ModeSet,
    #[allow(clippy::type_complexity)]
    f: Box<dyn FnMut(&mut AccelCtx<'_>, u32, &mut [T]) -> Result<(), SimError> + 'm>,
}

/// A configured streaming pipeline over several accelerators.
///
/// Built by [`MachinePipelineExt::pipeline`]; consumed by
/// [`PipelineBuilder::run`].
#[must_use = "a pipeline does nothing until run"]
pub struct PipelineBuilder<'m, T> {
    machine: &'m mut Machine,
    base: u16,
    stages: Vec<PipeStage<'m, T>>,
    buffers: u32,
    chunk_elems: u32,
    faults: Option<FaultPlan>,
    retries: u32,
    backoff: u64,
    fallback: bool,
    orphan_modes: bool,
}

/// Per-stage row of a [`PipeReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipeLaneReport {
    /// The stage index (0 = first stage).
    pub stage: u16,
    /// The accelerator the stage ran on.
    pub accel: u16,
    /// The stage's trace label.
    pub name: &'static str,
    /// Chunks the stage processed.
    pub chunks: u32,
    /// Cycles the stage's items occupied the accelerator (compute,
    /// transfers, and charged stalls).
    pub busy: u64,
    /// Cycles the lane sat idle between the pipeline start and the
    /// last item end anywhere.
    pub idle: u64,
}

/// What a [`PipelineBuilder::run`] did, for reports and assertions.
/// All cycle figures are simulated cycles.
///
/// Shares the busy/idle/stall vocabulary of
/// [`SchedReport`](crate::sched::SchedReport) — see the terminology
/// table there. The same three accessors exist here:
/// [`busy_cycles`](PipeReport::busy_cycles),
/// [`idle_cycles`](PipeReport::idle_cycles), and
/// [`stall_cycles`](PipeReport::stall_cycles) (input waits plus
/// backpressure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipeReport {
    /// Stages in the pipeline.
    pub stages: u16,
    /// Chunks streamed through every stage.
    pub chunks: u32,
    /// Bounded-queue depth between adjacent stages, in chunks.
    pub buffers: u32,
    /// Elements per chunk.
    pub chunk_elems: u32,
    /// Host cycles from entering `run` to the last join.
    pub cycles: u64,
    /// Cycle at which the last stage/chunk item finished (absolute
    /// machine time).
    pub finished_at: u64,
    /// One row per stage.
    pub lanes: Vec<PipeLaneReport>,
    /// Cycles stages stalled waiting for their input chunk.
    pub input_wait_cycles: u64,
    /// Cycles stages stalled on a full downstream queue.
    pub backpressure_cycles: u64,
    /// Faults the plane injected during the run (all kinds).
    pub faults: u64,
    /// Stage/chunk retries the recovery layer performed.
    pub retries: u64,
    /// Stage/chunk items that degraded to host execution.
    pub fallbacks: u64,
}

impl PipeReport {
    /// Total busy cycles: the sum of [`PipeLaneReport::busy`] over
    /// every stage lane (see the busy/idle/stall table on
    /// [`SchedReport`](crate::sched::SchedReport)).
    pub fn busy_cycles(&self) -> u64 {
        self.lanes.iter().map(|l| l.busy).sum()
    }

    /// Total idle cycles: the sum of [`PipeLaneReport::idle`] over
    /// every stage lane.
    pub fn idle_cycles(&self) -> u64 {
        self.lanes.iter().map(|l| l.idle).sum()
    }

    /// Total coordination-stall cycles: for a pipeline, cycles stages
    /// spent waiting for input ([`PipeReport::input_wait_cycles`]) plus
    /// cycles they stalled on a full downstream queue
    /// ([`PipeReport::backpressure_cycles`]).
    pub fn stall_cycles(&self) -> u64 {
        self.input_wait_cycles + self.backpressure_cycles
    }
}

impl<'m, T: Pod> PipelineBuilder<'m, T> {
    /// Appends a stage running on the next accelerator. The closure
    /// receives the index of the chunk's first element and the chunk
    /// contents, exactly as for [`process_stream`]; it must be a
    /// chunk-local transform (chunk `i`'s output depends only on chunk
    /// `i`'s input) for the pipeline to stay bit-identical to the
    /// sequential stage-by-stage run.
    pub fn stage<F>(self, f: F) -> PipelineBuilder<'m, T>
    where
        F: FnMut(&mut AccelCtx<'_>, u32, &mut [T]) -> Result<(), SimError> + 'm,
    {
        self.stage_named("pipe-stage", f)
    }

    /// Like [`PipelineBuilder::stage`], but names the stage: the name
    /// labels its offload slices on the accelerator trace lane.
    pub fn stage_named<F>(mut self, name: &'static str, f: F) -> PipelineBuilder<'m, T>
    where
        F: FnMut(&mut AccelCtx<'_>, u32, &mut [T]) -> Result<(), SimError> + 'm,
    {
        self.stages.push(PipeStage {
            name,
            modes: ModeSet::new(),
            f: Box::new(f),
        });
        self
    }

    /// Declares that the *most recently added* stage only loads from
    /// `[addr, addr+len)` — see `OffloadBuilder::reads` in `simcell`.
    /// A read-declared chunk's write-back DMA is elided (counted in
    /// [`MachineStats::dma_writebacks_elided`](simcell::MachineStats)),
    /// and a stage that nonetheless mutates the chunk fails with
    /// [`SimError::UndeclaredWrite`].
    ///
    /// Must follow a [`PipelineBuilder::stage`] call; declaring modes
    /// on an empty pipeline is rejected by [`PipelineBuilder::run`].
    pub fn reads(self, addr: Addr, len: u32) -> PipelineBuilder<'m, T> {
        self.declare(addr, len, AccessMode::Read)
    }

    /// Declares that the most recently added stage fully overwrites
    /// `[addr, addr+len)` without reading it: the put journal skips
    /// pre-image snapshots for the range under an armed fault plan.
    pub fn writes(self, addr: Addr, len: u32) -> PipelineBuilder<'m, T> {
        self.declare(addr, len, AccessMode::Write)
    }

    /// Declares that the most recently added stage both reads and
    /// writes `[addr, addr+len)`.
    pub fn updates(self, addr: Addr, len: u32) -> PipelineBuilder<'m, T> {
        self.declare(addr, len, AccessMode::Update)
    }

    fn declare(mut self, addr: Addr, len: u32, mode: AccessMode) -> PipelineBuilder<'m, T> {
        match self.stages.last_mut() {
            Some(stage) => stage.modes.declare(addr, len, mode),
            None => self.orphan_modes = true,
        }
        self
    }

    /// Places stage 0 on accelerator `accel` (stage `k` on
    /// `accel + k`). Defaults to 0.
    pub fn base(mut self, accel: u16) -> PipelineBuilder<'m, T> {
        self.base = accel;
        self
    }

    /// Sets the bounded-queue depth between adjacent stages, in chunks
    /// (default [`DEFAULT_PIPE_BUFFERS`]). A producer finishes pushing
    /// chunk `i` only once its consumer has started chunk
    /// `i - buffers`; the wait is charged as backpressure cycles.
    pub fn buffers(mut self, chunks: u32) -> PipelineBuilder<'m, T> {
        self.buffers = chunks;
        self
    }

    /// Sets the elements per chunk handed from stage to stage (default
    /// [`DEFAULT_PIPE_CHUNK`]). Within a stage/chunk item the transfer
    /// is double-buffered in half-chunks.
    pub fn chunk(mut self, elems: u32) -> PipelineBuilder<'m, T> {
        self.chunk_elems = elems;
        self
    }

    /// Arms `plan` on the machine when the run starts. The plan
    /// persists on the machine afterwards; clear it with
    /// [`Machine::clear_fault_plan`].
    pub fn faults(mut self, plan: FaultPlan) -> PipelineBuilder<'m, T> {
        self.faults = Some(plan);
        self
    }

    /// Retries a stage/chunk item up to `n` times after a *transient*
    /// fault before giving up on it. Default 0: the first fault is
    /// final.
    pub fn retry(mut self, n: u32) -> PipelineBuilder<'m, T> {
        self.retries = n;
        self
    }

    /// Sets the simulated cycles a retried item waits on the
    /// accelerator clock before re-running (default
    /// [`DEFAULT_RETRY_BACKOFF`]).
    pub fn backoff(mut self, cycles: u64) -> PipelineBuilder<'m, T> {
        self.backoff = cycles;
        self
    }

    /// Degrades unrecoverable stage/chunk items to host execution
    /// instead of failing the run, at the cost model's
    /// `host_fallback_factor` penalty.
    pub fn fallback_host(mut self) -> PipelineBuilder<'m, T> {
        self.fallback = true;
        self
    }

    /// Streams `len` elements starting at `remote` through every
    /// stage, in chunks, and joins everything.
    ///
    /// Stage/chunk items are dispatched wavefront by wavefront (all
    /// items whose `stage + chunk` sum is equal form one diagonal), so
    /// stage `k` computes chunk `i` while stage `k-1` computes chunk
    /// `i+1` — that overlap is the entire win, the memory image being
    /// bit-identical to running the stages sequentially.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadConfig`] if the pipeline has no
    /// stages, a zero queue depth, or more stages than accelerators
    /// from [`PipelineBuilder::base`] up; otherwise propagates the
    /// first stage error or unrecovered fault.
    pub fn run(self, remote: Addr, len: u32) -> Result<PipeReport, SimError> {
        let PipelineBuilder {
            machine,
            base,
            mut stages,
            buffers,
            chunk_elems,
            faults,
            retries,
            backoff,
            fallback,
            orphan_modes,
        } = self;
        if orphan_modes {
            return Err(SimError::BadConfig {
                reason: "pipeline mode declarations (.reads/.writes/.updates) must follow \
                         the .stage() they describe"
                    .into(),
            });
        }
        let stage_count = stages.len() as u32;
        if stage_count == 0 || buffers == 0 {
            return Err(SimError::BadConfig {
                reason: format!(
                    "a pipeline needs at least one stage and one buffer \
                     (got {stage_count} stages, {buffers} buffers)"
                ),
            });
        }
        if u32::from(base) + stage_count > u32::from(machine.accel_count()) {
            return Err(SimError::BadConfig {
                reason: format!(
                    "pipeline stages {base}..{} exceed the machine's {} accelerators",
                    u32::from(base) + stage_count,
                    machine.accel_count()
                ),
            });
        }
        if let Some(plan) = faults {
            machine.install_fault_plan(plan);
        }
        let chunk_elems = chunk_elems.max(1);
        let chunks = len.div_ceil(chunk_elems);
        let elem = T::SIZE as u32;
        // The transfer inside one stage/chunk item double-buffers in
        // half-chunks, so DMA genuinely overlaps compute within the
        // item too.
        let stream = StreamConfig {
            chunk_elems: (chunk_elems / 2).max(1),
            write_back: true,
        };

        let t0 = machine.host_now();
        let s0 = *machine.stats();
        // Per stage/chunk: when the chunk landed in the downstream
        // queue (its consumer may start then), and when the stage
        // started consuming it (its producer's slot frees then).
        let mut pushed = vec![vec![0u64; chunks as usize]; stages.len()];
        let mut popped = vec![vec![0u64; chunks as usize]; stages.len()];
        // (stage, start, end) of every item, for the lane reports.
        let mut runs: Vec<(u16, u64, u64)> = Vec::with_capacity((stage_count * chunks) as usize);
        let mut pending: Vec<(u16, OffloadHandle<Result<(), SimError>>)> = Vec::new();

        for diagonal in 0..stage_count + chunks.saturating_sub(1) {
            // Within a diagonal, stages run back to front so that with
            // a one-deep queue the consumer's pop time for chunk
            // `i - 1` exists before its producer needs it.
            for k in (0..stages.len()).rev() {
                let Some(i) = diagonal.checked_sub(k as u32) else {
                    continue;
                };
                if i >= chunks {
                    continue;
                }
                let stage_idx = k as u16;
                let accel = base + stage_idx;
                let first = i * chunk_elems;
                let n = chunk_elems.min(len - first);
                let item_remote = remote.element(first, elem)?;
                let input_ready = if k == 0 { 0 } else { pushed[k - 1][i as usize] };
                let queue_slot = if k + 1 < stages.len() && i >= buffers {
                    Some(popped[k + 1][(i - buffers) as usize])
                } else {
                    None
                };
                let stage = &mut stages[k];
                let mut body = |ctx: &mut AccelCtx<'_>, _chunk: u32| {
                    process_stream::<T, _>(ctx, item_remote, n, stream, |ctx, off, slice| {
                        (stage.f)(ctx, first + off, slice)
                    })
                };
                let mut pop_at = 0u64;
                let mut push_at = 0u64;
                let spawned = machine
                    .offload(accel)
                    .label(stage.name)
                    .with_modes(stage.modes.clone())
                    .spawn(|ctx| {
                        // Block until the producer pushed this chunk.
                        let wait = input_ready.saturating_sub(ctx.now());
                        if wait > 0 {
                            ctx.pipe_note_wait(stage_idx, i, wait, false);
                            ctx.compute(wait);
                        }
                        pop_at = ctx.now();
                        let result = run_with_retries(ctx, i, retries, backoff, &mut body);
                        // Block until the downstream queue has a free slot;
                        // only then is the chunk really pushed.
                        if let Some(pop) = queue_slot {
                            let wait = pop.saturating_sub(ctx.now());
                            if wait > 0 {
                                ctx.pipe_note_wait(stage_idx, i, wait, true);
                                ctx.compute(wait);
                            }
                        }
                        push_at = ctx.now();
                        result
                    });
                match spawned {
                    Ok(handle) => match handle.peek() {
                        Ok(()) => {
                            machine.pipe_note_run(
                                handle.start(),
                                accel,
                                stage_idx,
                                i,
                                handle.end(),
                            );
                            runs.push((stage_idx, handle.start(), handle.end()));
                            popped[k][i as usize] = pop_at;
                            pushed[k][i as usize] = push_at;
                            if k + 1 == stages.len() {
                                machine.pipe_note_chunk(handle.end(), i);
                            }
                            pending.push((stage_idx, handle));
                            continue;
                        }
                        Err(SimError::Fault(_)) if fallback => {
                            // The failed attempt occupied the lane to
                            // its end; the host learns of it at join
                            // and re-runs the item itself below.
                            machine.join(handle).expect_err("peeked a fault just above");
                        }
                        Err(_) => {
                            return Err(machine
                                .join(handle)
                                .expect_err("peeked an error just above"));
                        }
                    },
                    // The stage's accelerator is dead (or the launch
                    // itself faulted): recoverable only by the host.
                    Err(SimError::Fault(_)) if fallback => {}
                    Err(e) => return Err(e),
                }
                machine.recovery_note_fallback(machine.host_now(), accel, i);
                let fb_start = machine.host_now();
                machine.run_host_fallback(accel, stage.name, stage.modes.clone(), |ctx| {
                    run_with_retries(ctx, i, 0, backoff, &mut body)
                })??;
                let fb_end = machine.host_now();
                machine.pipe_note_run(fb_start, accel, stage_idx, i, fb_end);
                runs.push((stage_idx, fb_start, fb_end));
                popped[k][i as usize] = fb_start;
                pushed[k][i as usize] = fb_end;
                if k + 1 == stages.len() {
                    machine.pipe_note_chunk(fb_end, i);
                }
            }
        }

        // Join in dispatch order: every result was peeked Ok above.
        for (_, handle) in pending {
            machine.join(handle)?;
        }

        let finished_at = runs.iter().map(|&(_, _, end)| end).max().unwrap_or(t0);
        let lanes = stages
            .iter()
            .enumerate()
            .map(|(k, stage)| {
                let busy: u64 = runs
                    .iter()
                    .filter(|&&(s, _, _)| s == k as u16)
                    .map(|&(_, start, end)| end - start)
                    .sum();
                PipeLaneReport {
                    stage: k as u16,
                    accel: base + k as u16,
                    name: stage.name,
                    chunks,
                    busy,
                    idle: finished_at.saturating_sub(t0).saturating_sub(busy),
                }
            })
            .collect();
        let s1 = *machine.stats();
        Ok(PipeReport {
            stages: stage_count as u16,
            chunks,
            buffers,
            chunk_elems,
            cycles: machine.host_now() - t0,
            finished_at,
            lanes,
            input_wait_cycles: s1.pipe_input_wait_cycles - s0.pipe_input_wait_cycles,
            backpressure_cycles: s1.pipe_backpressure_cycles - s0.pipe_backpressure_cycles,
            faults: s1.faults_injected - s0.faults_injected,
            retries: s1.recovery_retries - s0.recovery_retries,
            fallbacks: s1.recovery_fallbacks - s0.recovery_fallbacks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::MachineConfig;

    fn prepared(m: &mut Machine, len: u32) -> Addr {
        let remote = m.alloc_main_slice::<u32>(len).unwrap();
        let values: Vec<u32> = (0..len).collect();
        m.main_mut().write_pod_slice(remote, &values).unwrap();
        remote
    }

    /// Three chunk-local transforms with per-element compute, shared by
    /// the pipeline and the sequential baseline.
    fn run_sequential(m: &mut Machine, remote: Addr, len: u32, chunk: u32) -> u64 {
        let t0 = m.host_now();
        for stage in 0..3u32 {
            m.offload(0)
                .run(|ctx| {
                    process_stream::<u32, _>(
                        ctx,
                        remote,
                        len,
                        StreamConfig {
                            chunk_elems: (chunk / 2).max(1),
                            write_back: true,
                        },
                        |ctx, base, slice| transform(stage)(ctx, base, slice),
                    )
                })
                .unwrap()
                .unwrap();
        }
        m.host_now() - t0
    }

    fn transform(
        stage: u32,
    ) -> impl FnMut(&mut AccelCtx<'_>, u32, &mut [u32]) -> Result<(), SimError> {
        move |ctx, _, slice: &mut [u32]| {
            for v in slice.iter_mut() {
                *v = match stage {
                    0 => v.wrapping_mul(3),
                    1 => v.wrapping_add(17),
                    _ => *v ^ 0x5a5a_5a5a,
                };
            }
            // Heavy enough per element that the overlap dwarfs the
            // per-item launch overhead.
            ctx.compute(40 * slice.len() as u64);
            Ok(())
        }
    }

    fn run_pipeline(m: &mut Machine, remote: Addr, len: u32, chunk: u32) -> PipeReport {
        m.pipeline()
            .stage_named("s0", transform(0))
            .stage_named("s1", transform(1))
            .stage_named("s2", transform(2))
            .chunk(chunk)
            .run(remote, len)
            .unwrap()
    }

    #[test]
    fn pipeline_matches_sequential_memory() {
        let mut a = Machine::new(MachineConfig::default()).unwrap();
        let ra = prepared(&mut a, 1000);
        let report = run_pipeline(&mut a, ra, 1000, 128);
        let mut b = Machine::new(MachineConfig::default()).unwrap();
        let rb = prepared(&mut b, 1000);
        let seq_cycles = run_sequential(&mut b, rb, 1000, 128);
        assert_eq!(a.memory_hash(), b.memory_hash(), "bit-identical output");
        assert_eq!(
            a.main().read_pod_slice::<u32>(ra, 1000).unwrap(),
            b.main().read_pod_slice::<u32>(rb, 1000).unwrap()
        );
        assert!(
            report.cycles < seq_cycles,
            "overlap must win: pipeline {} vs sequential {seq_cycles}",
            report.cycles
        );
        assert_eq!(report.stages, 3);
        assert_eq!(report.chunks, 8);
        assert_eq!(a.races_detected(), 0, "{:?}", a.take_race_reports());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let run = || {
            let mut m = Machine::new(MachineConfig::default()).unwrap();
            let remote = prepared(&mut m, 500);
            let report = run_pipeline(&mut m, remote, 500, 64);
            (m.world_hash(), report)
        };
        let (h1, r1) = run();
        let (h2, r2) = run();
        assert_eq!(h1, h2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn shallow_queue_backpressures() {
        // Stage 1 is much slower than stage 0: with a one-deep queue
        // the producer must stall; deeper buffers absorb more of it.
        let run = |buffers: u32| {
            let mut m = Machine::new(MachineConfig::default()).unwrap();
            let remote = prepared(&mut m, 1024);
            m.pipeline()
                .stage(|ctx, _, chunk: &mut [u32]| {
                    ctx.compute(chunk.len() as u64);
                    Ok(())
                })
                .stage(|ctx, _, chunk: &mut [u32]| {
                    ctx.compute(64 * chunk.len() as u64);
                    Ok(())
                })
                .buffers(buffers)
                .chunk(128)
                .run(remote, 1024)
                .unwrap()
        };
        let shallow = run(1);
        let deep = run(4);
        assert!(shallow.backpressure_cycles > 0, "{shallow:?}");
        assert!(deep.backpressure_cycles < shallow.backpressure_cycles);
    }

    #[test]
    fn fast_consumer_waits_for_input() {
        // Stage 0 is the bottleneck: stage 1 drains each chunk quickly
        // and then stalls until the producer pushes the next one.
        let mut m = Machine::new(MachineConfig::default()).unwrap();
        let remote = prepared(&mut m, 1024);
        let report = m
            .pipeline()
            .stage(|ctx, _, chunk: &mut [u32]| {
                ctx.compute(64 * chunk.len() as u64);
                Ok(())
            })
            .stage(|ctx, _, chunk: &mut [u32]| {
                ctx.compute(chunk.len() as u64);
                Ok(())
            })
            .chunk(128)
            .run(remote, 1024)
            .unwrap();
        assert!(report.input_wait_cycles > 0, "{report:?}");
        assert_eq!(report.backpressure_cycles, 0, "queue never fills");
    }

    #[test]
    fn too_many_stages_is_bad_config() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let remote = prepared(&mut m, 64);
        let err = m
            .pipeline()
            .stage(|_, _, _: &mut [u32]| Ok(()))
            .stage(|_, _, _: &mut [u32]| Ok(()))
            .run(remote, 64)
            .unwrap_err();
        assert!(matches!(err, SimError::BadConfig { .. }), "{err:?}");
        let err = m.pipeline::<u32>().run(remote, 64).expect_err("no stages");
        assert!(matches!(err, SimError::BadConfig { .. }), "{err:?}");
    }

    #[test]
    fn faults_recovered_bit_identically() {
        let clean = {
            let mut m = Machine::new(MachineConfig::default()).unwrap();
            let remote = prepared(&mut m, 1000);
            run_pipeline(&mut m, remote, 1000, 128);
            m.memory_hash()
        };
        let mut m = Machine::new(MachineConfig::default()).unwrap();
        let remote = prepared(&mut m, 1000);
        let report = m
            .pipeline()
            .stage_named("s0", transform(0))
            .stage_named("s1", transform(1))
            .stage_named("s2", transform(2))
            .chunk(128)
            .faults(FaultPlan::uniform(9, 0.05))
            .retry(4)
            .fallback_host()
            .run(remote, 1000)
            .unwrap();
        assert_eq!(m.memory_hash(), clean, "recovery must not change output");
        assert!(report.faults > 0, "the plan should have fired: {report:?}");
    }

    #[test]
    fn report_lanes_cover_every_stage() {
        let mut m = Machine::new(MachineConfig::default()).unwrap();
        let remote = prepared(&mut m, 256);
        let report = run_pipeline(&mut m, remote, 256, 64);
        assert_eq!(report.lanes.len(), 3);
        for (k, lane) in report.lanes.iter().enumerate() {
            assert_eq!(lane.stage, k as u16);
            assert_eq!(lane.accel, k as u16);
            assert_eq!(lane.chunks, 4);
            assert!(lane.busy > 0);
            assert_eq!(
                lane.busy + lane.idle,
                report.lanes[0].busy + report.lanes[0].idle,
                "busy + idle spans the same window on every lane"
            );
        }
        assert_eq!(m.stats().pipe_stage_runs, 12);
        assert_eq!(m.stats().pipe_chunks, 4);
    }
}
