//! Virtual method dispatch across memory spaces (paper Figure 3).
//!
//! On a single-memory-space machine, `obj->f(...)` is one vtable load
//! plus an indirect call. With accelerator cores whose instruction sets
//! differ from the host's, a single vtable cannot work: the accelerator
//! needs *its own compiled copy* of each method it may call, and — since
//! overloads are duplicated per combination of pointer memory spaces —
//! possibly several copies. Offload C++ solves this with *dispatch
//! domains*:
//!
//! 1. the programmer annotates an offload block with the methods that
//!    may be called virtually inside it (the *domain*),
//! 2. after the normal vtable lookup produces a host function address,
//!    the runtime searches the **outer domain** (an array of known host
//!    addresses) to learn whether the routine exists in local store,
//! 3. the matching index selects an **inner domain** entry: a sequence
//!    of `(duplicate id, local address)` pairs, one per memory-space
//!    signature that was actually compiled,
//! 4. a miss raises an informative exception telling the programmer
//!    which method annotation is missing.
//!
//! This module implements that machinery: [`ClassRegistry`] (classes +
//! vtables), [`Domain`] (outer/inner domains with per-entry search
//! costs), [`MethodTable`] (the behaviours behind function addresses),
//! and the full [`accel_virtual_dispatch`] / [`host_virtual_dispatch`]
//! flows with cycle charging.

use std::collections::HashMap;
use std::fmt;

use memspace::Addr;
use simcell::{AccelCtx, CostModel, DispatchFault, Machine, SimError};

/// The address of a compiled function (host or local ISA).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FnAddr(pub u32);

impl fmt::Display for FnAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn@{:#x}", self.0)
    }
}

/// A registered class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClassId(pub u32);

/// A virtual method slot within a vtable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MethodSlot(pub u16);

/// A memory-space signature of a function duplicate.
///
/// Offload C++ duplicates each function per combination of pointer
/// memory spaces in its signature; the duplicate id is "compiler
/// generated meta-data to identify the signature of the routine with
/// respect to combinations of memory spaces". Here, bit *i* is set when
/// pointer parameter *i* is an **outer** pointer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DuplicateId(pub u16);

impl DuplicateId {
    /// The signature with every pointer parameter local.
    pub const ALL_LOCAL: DuplicateId = DuplicateId(0);

    /// Builds a duplicate id from per-parameter outer-ness flags.
    ///
    /// # Example
    ///
    /// ```
    /// use offload_rt::DuplicateId;
    ///
    /// // (local, outer, local) pointer parameters.
    /// let id = DuplicateId::from_outer_flags(&[false, true, false]);
    /// assert_eq!(id, DuplicateId(0b010));
    /// ```
    pub fn from_outer_flags(outer: &[bool]) -> DuplicateId {
        let mut bits = 0u16;
        for (i, &is_outer) in outer.iter().enumerate() {
            if is_outer {
                bits |= 1 << i;
            }
        }
        DuplicateId(bits)
    }
}

impl fmt::Display for DuplicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dup{:#b}", self.0)
    }
}

/// Classes, inheritance and vtables — the host-side dispatch structures.
///
/// Objects in simulated memory carry their class id as a `u32` header at
/// offset 0 (the "vtable pointer" of this model).
#[derive(Debug, Default)]
pub struct ClassRegistry {
    names: Vec<String>,
    vtables: Vec<Vec<Option<FnAddr>>>,
    method_names: HashMap<FnAddr, String>,
    next_fn: u32,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Allocates a fresh function address (simulating the linker).
    pub fn fresh_fn(&mut self, name: impl Into<String>) -> FnAddr {
        self.next_fn += 0x20;
        let addr = FnAddr(0x1000 + self.next_fn);
        self.method_names.insert(addr, name.into());
        addr
    }

    /// The human-readable name attached to a function address.
    pub fn fn_name(&self, addr: FnAddr) -> Option<&str> {
        self.method_names.get(&addr).map(String::as_str)
    }

    /// Registers a class; with a parent, the vtable is inherited.
    pub fn register_class(&mut self, name: impl Into<String>, parent: Option<ClassId>) -> ClassId {
        let vtable = match parent {
            Some(p) => self.vtables[p.0 as usize].clone(),
            None => Vec::new(),
        };
        self.names.push(name.into());
        self.vtables.push(vtable);
        ClassId(self.names.len() as u32 - 1)
    }

    /// Defines (or overrides) the method in `slot` for `class`.
    pub fn define_method(&mut self, class: ClassId, slot: MethodSlot, addr: FnAddr) {
        let vtable = &mut self.vtables[class.0 as usize];
        if vtable.len() <= usize::from(slot.0) {
            vtable.resize(usize::from(slot.0) + 1, None);
        }
        vtable[usize::from(slot.0)] = Some(addr);
    }

    /// Looks up the implementation of `slot` for `class` (the vtable
    /// load).
    pub fn resolve(&self, class: ClassId, slot: MethodSlot) -> Option<FnAddr> {
        self.vtables
            .get(class.0 as usize)?
            .get(usize::from(slot.0))
            .copied()
            .flatten()
    }

    /// The name of a class.
    pub fn class_name(&self, class: ClassId) -> Option<&str> {
        self.names.get(class.0 as usize).map(String::as_str)
    }

    /// Number of registered classes.
    pub fn class_count(&self) -> usize {
        self.names.len()
    }

    /// Whether `class` is a valid id.
    pub fn is_class(&self, class: ClassId) -> bool {
        (class.0 as usize) < self.names.len()
    }
}

/// The cost breakdown of one domain lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LookupCost {
    /// Outer-domain entries examined.
    pub outer_probes: u32,
    /// Inner-domain entries examined.
    pub inner_probes: u32,
}

impl LookupCost {
    /// Cycles this lookup costs under `cost`.
    pub fn cycles(&self, cost: &CostModel) -> u64 {
        cost.domain_lookup_base
            + cost.domain_outer_entry * u64::from(self.outer_probes)
            + cost.domain_inner_entry * u64::from(self.inner_probes)
    }
}

/// The outer/inner dispatch domain of one offload block (Figure 3).
#[derive(Clone, Debug, Default)]
pub struct Domain {
    outer: Vec<FnAddr>,
    inner: Vec<Vec<(DuplicateId, FnAddr)>>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Domain {
        Domain::default()
    }

    /// Adds a function to the domain with the given compiled duplicates
    /// ("overloads may be selectively compiled, so there is no guarantee
    /// that a full set is present").
    pub fn add(&mut self, global: FnAddr, duplicates: &[(DuplicateId, FnAddr)]) {
        if let Some(i) = self.outer.iter().position(|&f| f == global) {
            self.inner[i].extend_from_slice(duplicates);
        } else {
            self.outer.push(global);
            self.inner.push(duplicates.to_vec());
        }
    }

    /// Number of functions in the outer domain — the "annotation count"
    /// of the offload block (experiment E4's restructuring metric).
    pub fn len(&self) -> usize {
        self.outer.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.outer.is_empty()
    }

    /// Total number of compiled duplicates across all entries.
    pub fn duplicate_count(&self) -> usize {
        self.inner.iter().map(Vec::len).sum()
    }

    /// Resolves `target` with memory-space signature `duplicate`.
    ///
    /// Performs the two-stage search of Figure 3: a linear scan of the
    /// outer domain, then a linear scan of the matched inner-domain
    /// entry. Returns the local function address and the probe counts
    /// (for cycle charging).
    ///
    /// # Errors
    ///
    /// Returns the informative [`DispatchFault::DomainMiss`] (the
    /// paper's "exception providing information which the programmer
    /// can use") when the function or the required duplicate was not
    /// pre-compiled.
    pub fn lookup(
        &self,
        target: FnAddr,
        duplicate: DuplicateId,
    ) -> Result<(FnAddr, LookupCost), SimError> {
        for (i, &entry) in self.outer.iter().enumerate() {
            if entry == target {
                let outer_probes = i as u32 + 1;
                for (j, &(dup, local)) in self.inner[i].iter().enumerate() {
                    if dup == duplicate {
                        return Ok((
                            local,
                            LookupCost {
                                outer_probes,
                                inner_probes: j as u32 + 1,
                            },
                        ));
                    }
                }
                return Err(DispatchFault::DomainMiss {
                    target: target.0,
                    duplicate: duplicate.0,
                    outer_matched: true,
                    outer_searched: outer_probes,
                    method_name: None,
                }
                .into());
            }
        }
        Err(DispatchFault::DomainMiss {
            target: target.0,
            duplicate: duplicate.0,
            outer_matched: false,
            outer_searched: self.outer.len() as u32,
            method_name: None,
        }
        .into())
    }
}

/// Behaviours behind function addresses, generic in the callable type so
/// host- and accelerator-side tables can use different context types.
#[derive(Default)]
pub struct MethodTable<F> {
    impls: HashMap<u32, F>,
}

impl<F> MethodTable<F> {
    /// Creates an empty table.
    pub fn new() -> MethodTable<F> {
        MethodTable {
            impls: HashMap::new(),
        }
    }

    /// Registers the behaviour of `addr`, replacing any previous one.
    pub fn register(&mut self, addr: FnAddr, behaviour: F) {
        self.impls.insert(addr.0, behaviour);
    }

    /// The behaviour of `addr`, if registered.
    pub fn get(&self, addr: FnAddr) -> Option<&F> {
        self.impls.get(&addr.0)
    }

    /// Number of registered behaviours.
    pub fn len(&self) -> usize {
        self.impls.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.impls.is_empty()
    }
}

impl<F> fmt::Debug for MethodTable<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MethodTable")
            .field("len", &self.impls.len())
            .finish()
    }
}

/// Performs a full accelerator-side virtual dispatch of `obj`'s method
/// in `slot`, returning the *local* function address to call.
///
/// Charges, in order: the object-header read (a local access if `obj`
/// is in this accelerator's local store, otherwise a synchronous DMA
/// round trip — the hidden cost the paper warns about for unprefetched
/// objects), the vtable lookup, and the two-stage domain search.
///
/// # Errors
///
/// Propagates header-read failures, unknown classes/slots, and
/// [`DispatchFault::DomainMiss`] (with the method name filled in when
/// the registry knows it).
pub fn accel_virtual_dispatch(
    ctx: &mut AccelCtx<'_>,
    registry: &ClassRegistry,
    domain: &Domain,
    obj: Addr,
    slot: MethodSlot,
    duplicate: DuplicateId,
) -> Result<FnAddr, SimError> {
    let raw: u32 = if obj.space() == ctx.local_space() {
        ctx.local_read_pod(obj)?
    } else {
        ctx.outer_read_pod(obj)?
    };
    let class = ClassId(raw);
    if !registry.is_class(class) {
        return Err(DispatchFault::UnknownClass { raw }.into());
    }
    let vcall = ctx.cost().vcall;
    ctx.compute(vcall);
    let target =
        registry
            .resolve(class, slot)
            .ok_or(SimError::Dispatch(DispatchFault::NoSuchMethod {
                class: class.0,
                slot: slot.0,
            }))?;
    match domain.lookup(target, duplicate) {
        Ok((local, lookup)) => {
            let cycles = lookup.cycles(ctx.cost());
            ctx.compute(cycles);
            Ok(local)
        }
        Err(mut err) => {
            if let SimError::Dispatch(DispatchFault::DomainMiss { method_name, .. }) = &mut err {
                *method_name = registry.fn_name(target).map(str::to_owned);
            }
            Err(err)
        }
    }
}

/// Performs a host-side virtual dispatch: header read + vtable lookup,
/// no domain involved (the host runs the one true host ISA).
///
/// # Errors
///
/// Propagates header-read failures and unknown classes/slots.
pub fn host_virtual_dispatch(
    machine: &mut Machine,
    registry: &ClassRegistry,
    obj: Addr,
    slot: MethodSlot,
) -> Result<FnAddr, SimError> {
    let raw: u32 = machine.host_read_pod(obj)?;
    let class = ClassId(raw);
    if !registry.is_class(class) {
        return Err(DispatchFault::UnknownClass { raw }.into());
    }
    machine.host_compute(machine.cost().vcall);
    registry
        .resolve(class, slot)
        .ok_or(SimError::Dispatch(DispatchFault::NoSuchMethod {
            class: class.0,
            slot: slot.0,
        }))
}

/// Reads the class id header of an object on the host (cost-free setup
/// helper; the object layout convention is a `u32` class id at offset 0).
///
/// # Errors
///
/// Fails on bounds violations.
pub fn class_of(machine: &Machine, obj: Addr) -> Result<ClassId, SimError> {
    Ok(ClassId(machine.main().read_pod::<u32>(obj)?))
}

/// Writes the class id header of an object (cost-free setup helper).
///
/// # Errors
///
/// Fails on bounds violations.
pub fn set_class(machine: &mut Machine, obj: Addr, class: ClassId) -> Result<(), SimError> {
    Ok(machine.main_mut().write_pod(obj, &class.0)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::MachineConfig;

    fn registry_with_hierarchy() -> (ClassRegistry, ClassId, ClassId, FnAddr, FnAddr) {
        let mut reg = ClassRegistry::new();
        let base_update = reg.fresh_fn("Entity::update");
        let enemy_update = reg.fresh_fn("Enemy::update");
        let entity = reg.register_class("Entity", None);
        reg.define_method(entity, MethodSlot(0), base_update);
        let enemy = reg.register_class("Enemy", Some(entity));
        reg.define_method(enemy, MethodSlot(0), enemy_update);
        (reg, entity, enemy, base_update, enemy_update)
    }

    #[test]
    fn vtable_inheritance_and_override() {
        let (reg, entity, enemy, base_update, enemy_update) = registry_with_hierarchy();
        assert_eq!(reg.resolve(entity, MethodSlot(0)), Some(base_update));
        assert_eq!(reg.resolve(enemy, MethodSlot(0)), Some(enemy_update));
        assert_eq!(reg.resolve(enemy, MethodSlot(1)), None);
        assert_eq!(reg.class_name(enemy), Some("Enemy"));
        assert_eq!(reg.fn_name(base_update), Some("Entity::update"));
        assert_eq!(reg.class_count(), 2);
    }

    #[test]
    fn subclass_inherits_unoverridden_methods() {
        let mut reg = ClassRegistry::new();
        let f = reg.fresh_fn("Base::f");
        let base = reg.register_class("Base", None);
        reg.define_method(base, MethodSlot(3), f);
        let derived = reg.register_class("Derived", Some(base));
        assert_eq!(reg.resolve(derived, MethodSlot(3)), Some(f));
    }

    #[test]
    fn domain_lookup_two_stage_costs() {
        let mut domain = Domain::new();
        let f1 = FnAddr(0x100);
        let f2 = FnAddr(0x200);
        let l1 = FnAddr(0x9000);
        let l2a = FnAddr(0x9100);
        let l2b = FnAddr(0x9200);
        domain.add(f1, &[(DuplicateId::ALL_LOCAL, l1)]);
        domain.add(f2, &[(DuplicateId(0b01), l2a), (DuplicateId(0b11), l2b)]);

        let (local, cost) = domain.lookup(f1, DuplicateId::ALL_LOCAL).unwrap();
        assert_eq!(local, l1);
        assert_eq!(
            cost,
            LookupCost {
                outer_probes: 1,
                inner_probes: 1
            }
        );

        let (local, cost) = domain.lookup(f2, DuplicateId(0b11)).unwrap();
        assert_eq!(local, l2b);
        assert_eq!(
            cost,
            LookupCost {
                outer_probes: 2,
                inner_probes: 2
            }
        );

        let model = CostModel::cell_like();
        assert_eq!(
            cost.cycles(&model),
            model.domain_lookup_base + 2 * model.domain_outer_entry + 2 * model.domain_inner_entry
        );
    }

    #[test]
    fn miss_when_function_not_in_domain() {
        let domain = Domain::new();
        let err = domain
            .lookup(FnAddr(0x42), DuplicateId::ALL_LOCAL)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Dispatch(DispatchFault::DomainMiss {
                outer_matched: false,
                ..
            })
        ));
        assert!(err.to_string().contains("not in the offload's domain"));
    }

    #[test]
    fn miss_when_duplicate_not_compiled() {
        let mut domain = Domain::new();
        let f = FnAddr(0x100);
        domain.add(f, &[(DuplicateId(0b01), FnAddr(0x9000))]);
        let err = domain.lookup(f, DuplicateId(0b10)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Dispatch(DispatchFault::DomainMiss {
                outer_matched: true,
                ..
            })
        ));
        let text = err.to_string();
        assert!(text.contains("no duplicate"));
        assert!(text.contains("dup0b10"));
    }

    #[test]
    fn adding_duplicates_to_existing_entry_merges() {
        let mut domain = Domain::new();
        let f = FnAddr(0x100);
        domain.add(f, &[(DuplicateId(0), FnAddr(0x9000))]);
        domain.add(f, &[(DuplicateId(1), FnAddr(0x9100))]);
        assert_eq!(domain.len(), 1);
        assert_eq!(domain.duplicate_count(), 2);
        assert!(domain.lookup(f, DuplicateId(1)).is_ok());
    }

    #[test]
    fn duplicate_id_from_flags() {
        assert_eq!(DuplicateId::from_outer_flags(&[]), DuplicateId::ALL_LOCAL);
        assert_eq!(
            DuplicateId::from_outer_flags(&[true, false, true]),
            DuplicateId(0b101)
        );
    }

    #[test]
    fn accel_dispatch_full_flow() {
        let (mut reg, _, enemy, _, enemy_update) = registry_with_hierarchy();
        let local_impl = reg.fresh_fn("Enemy::update [local]");
        let mut domain = Domain::new();
        domain.add(enemy_update, &[(DuplicateId::ALL_LOCAL, local_impl)]);

        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let obj = m.alloc_main(64, 16).unwrap();
        m.main_mut().write_pod(obj, &enemy.0).unwrap();

        let resolved = m
            .offload(0)
            .run(|ctx| {
                accel_virtual_dispatch(
                    ctx,
                    &reg,
                    &domain,
                    obj,
                    MethodSlot(0),
                    DuplicateId::ALL_LOCAL,
                )
            })
            .unwrap()
            .unwrap();
        assert_eq!(resolved, local_impl);
    }

    #[test]
    fn accel_dispatch_on_local_object_is_cheaper() {
        let (mut reg, entity, _, base_update, _) = registry_with_hierarchy();
        let local_impl = reg.fresh_fn("Entity::update [local]");
        let mut domain = Domain::new();
        domain.add(base_update, &[(DuplicateId::ALL_LOCAL, local_impl)]);

        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let outer_obj = m.alloc_main(64, 16).unwrap();
        m.main_mut().write_pod(outer_obj, &entity.0).unwrap();

        let (outer_cost, local_cost) = m
            .offload(0)
            .run(|ctx| -> Result<(u64, u64), SimError> {
                let t0 = ctx.now();
                accel_virtual_dispatch(
                    ctx,
                    &reg,
                    &domain,
                    outer_obj,
                    MethodSlot(0),
                    DuplicateId::ALL_LOCAL,
                )?;
                let outer_cost = ctx.now() - t0;

                let local_obj = ctx.alloc_local(64, 16)?;
                ctx.local_write_pod(local_obj, &entity.0)?;
                let t1 = ctx.now();
                accel_virtual_dispatch(
                    ctx,
                    &reg,
                    &domain,
                    local_obj,
                    MethodSlot(0),
                    DuplicateId::ALL_LOCAL,
                )?;
                Ok((outer_cost, ctx.now() - t1))
            })
            .unwrap()
            .unwrap();
        assert!(
            local_cost * 5 < outer_cost,
            "header read dominates outer dispatch: {local_cost} vs {outer_cost}"
        );
    }

    #[test]
    fn accel_dispatch_miss_names_the_method() {
        let (reg, _, enemy, _, _) = registry_with_hierarchy();
        let domain = Domain::new(); // nothing annotated

        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let obj = m.alloc_main(64, 16).unwrap();
        m.main_mut().write_pod(obj, &enemy.0).unwrap();

        let err = m
            .offload(0)
            .run(|ctx| {
                accel_virtual_dispatch(
                    ctx,
                    &reg,
                    &domain,
                    obj,
                    MethodSlot(0),
                    DuplicateId::ALL_LOCAL,
                )
            })
            .unwrap()
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("Enemy::update"), "{text}");
        assert!(text.contains("domain annotation"), "{text}");
    }

    #[test]
    fn dispatch_rejects_unknown_class_and_missing_slot() {
        let (reg, entity, _, _, _) = registry_with_hierarchy();
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let obj = m.alloc_main(64, 16).unwrap();

        m.main_mut().write_pod(obj, &999u32).unwrap();
        let err = host_virtual_dispatch(&mut m, &reg, obj, MethodSlot(0)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Dispatch(DispatchFault::UnknownClass { raw: 999 })
        ));

        m.main_mut().write_pod(obj, &entity.0).unwrap();
        let err = host_virtual_dispatch(&mut m, &reg, obj, MethodSlot(7)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Dispatch(DispatchFault::NoSuchMethod { .. })
        ));
    }

    #[test]
    fn host_dispatch_resolves_and_charges() {
        let (reg, _, enemy, _, enemy_update) = registry_with_hierarchy();
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let obj = m.alloc_main(64, 16).unwrap();
        m.main_mut().write_pod(obj, &enemy.0).unwrap();
        let t0 = m.host_now();
        let resolved = host_virtual_dispatch(&mut m, &reg, obj, MethodSlot(0)).unwrap();
        assert_eq!(resolved, enemy_update);
        assert_eq!(m.host_now() - t0, m.cost().host_mem_access + m.cost().vcall);
    }

    #[test]
    fn method_table_registers_and_calls() {
        let mut table: MethodTable<Box<dyn Fn(i32) -> i32>> = MethodTable::new();
        assert!(table.is_empty());
        table.register(FnAddr(1), Box::new(|x| x + 1));
        table.register(FnAddr(2), Box::new(|x| x * 2));
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(FnAddr(1)).unwrap()(10), 11);
        assert_eq!(table.get(FnAddr(2)).unwrap()(10), 20);
        assert!(table.get(FnAddr(3)).is_none());
    }

    #[test]
    fn class_header_helpers() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let obj = m.alloc_main(64, 16).unwrap();
        set_class(&mut m, obj, ClassId(5)).unwrap();
        assert_eq!(class_of(&m, obj).unwrap(), ClassId(5));
    }
}
