//! Deterministic multi-accelerator tile scheduling.
//!
//! The paper's frame loop (§4.1, Figure 2) offloads one task per
//! accelerator by hand. Once a task is tiled finer than the
//! accelerator count — or the tiles stop costing the same — someone
//! has to decide *which* accelerator runs *which* tile, and that
//! decision is a scheduler. This module layers three of them over
//! [`simcell::Machine`], all deterministic (the simulation stays
//! sequential; "parallelism" is the cycle accounting):
//!
//! - [`SchedPolicy::Static`]: block-split tiles over accelerators up
//!   front, exactly the hand-rolled split of the E14 experiment. Tile
//!   `t` of `T` on accelerator `base + t*A/T`-ish; with `T == A` this
//!   reproduces the classic one-offload-per-accelerator frame
//!   bit-identically.
//! - [`SchedPolicy::ShortestQueue`]: greedy — each tile, in order,
//!   goes to the accelerator that frees up earliest.
//! - [`SchedPolicy::WorkStealing`]: per-accelerator deques seeded with
//!   the static split; an accelerator that drains its own deque steals
//!   the *back* tile of the most-loaded queue, paying
//!   [`TileScheduler::steal_cost`] simulated cycles for the cross-queue
//!   grab. A steal is taken only when profitable — the thief, steal
//!   cost included, must start the tile strictly before the victim
//!   could even begin its own queue's remainder — so every stolen tile
//!   finishes no later than it would have under [`SchedPolicy::Static`]
//!   and work stealing can only recover cycles, never lose them (the
//!   seeded property test in `bench` exercises this over random
//!   tile-cost vectors).
//!
//! Every enqueue, run, steal and idle gap is recorded as a
//! zero-simulated-cost structured event in the machine's [`EventLog`];
//! the Chrome exporter renders them as one scheduler lane per
//! accelerator (see `simcell::trace` and the repository's
//! `PROFILING.md`).
//!
//! # Recovery
//!
//! When a deterministic fault plan is armed (via the builder's
//! `.faults(plan)` or [`TileScheduler::faults`]), the scheduler grows a
//! recovery layer configured by [`TileScheduler::retry`],
//! [`TileScheduler::backoff`] and [`TileScheduler::fallback_host`]:
//!
//! - **Retry with backoff**: a tile whose closure hits a *transient*
//!   fault (DMA corruption/drop, tag timeout, local-store poison) is
//!   re-run on the same accelerator, up to the configured retry count.
//!   Each retry releases the tile's local-store allocations, quiesces
//!   the DMA engine, charges the backoff cycles on the accelerator
//!   clock, and records a `retry` event on the faults lane.
//! - **Eviction**: an accelerator the fault plane kills is removed from
//!   the live lane set mid-dispatch. Its queued tiles are redistributed
//!   round-robin over the survivors (under work stealing the thieves
//!   then rebalance them as usual); an `evict` event notes the move.
//! - **Host fallback**: with [`TileScheduler::fallback_host`], a tile
//!   that exhausts its retries — or that no live accelerator remains to
//!   run — degrades to host execution via
//!   [`simcell::Machine::run_host_fallback`], paying the cost model's
//!   honest `host_fallback_factor` penalty. Without it, the fault
//!   surfaces as the dispatch error.
//!
//! With no plan armed (or an all-zero plan) none of this draws from the
//! fault RNG and the schedule is bit-identical to the fault-free one.
//!
//! # Example
//!
//! ```
//! use offload_rt::sched::{SchedExt, SchedPolicy};
//! use simcell::{Machine, MachineConfig, SimError};
//!
//! # fn main() -> Result<(), SimError> {
//! let mut machine = Machine::new(MachineConfig::default())?;
//! let costs = [40_000u64, 5_000, 5_000, 5_000, 5_000, 5_000, 5_000, 5_000];
//! let (ends, report) = machine
//!     .offload(0)
//!     .label("tile")
//!     .sched(SchedPolicy::WorkStealing)
//!     .accels(4)
//!     .run_tiles(8, |ctx, tile| {
//!         ctx.compute(costs[tile as usize]);
//!         Ok(ctx.now())
//!     })?;
//! assert_eq!(ends.len(), 8);
//! assert_eq!(report.tiles, 8);
//! # Ok(())
//! # }
//! ```
//!
//! [`EventLog`]: simcell::EventLog

use std::collections::VecDeque;

use memspace::Addr;
use simcell::{
    AccelCtx, AccessMode, FaultError, FaultPlan, Machine, ModeSet, OffloadBuilder, OffloadHandle,
    OffloadParts, SimError,
};
use softcache::CacheChoice;

/// How a [`TileScheduler`] maps tiles onto accelerators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Block-split tiles over accelerators up front: accelerator `a`
    /// of `A` owns tiles `[T*a/A, T*(a+1)/A)`. With one tile per
    /// accelerator this is bit-identical to launching one offload per
    /// accelerator by hand (the E14 shape).
    Static,
    /// Greedy: each tile, in tile order, goes to the accelerator that
    /// frees up earliest (ties to the lowest index).
    ShortestQueue,
    /// Static seeding plus stealing: an accelerator whose own deque is
    /// empty takes the back tile of the most-loaded queue when doing
    /// so is strictly profitable, paying the configured steal cost.
    WorkStealing,
}

impl SchedPolicy {
    /// Short lower-case name for report rows ("static", "shortest-queue",
    /// "work-stealing").
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Static => "static",
            SchedPolicy::ShortestQueue => "shortest-queue",
            SchedPolicy::WorkStealing => "work-stealing",
        }
    }
}

/// Simulated cycles a work-stealing thief pays to grab a tile from
/// another accelerator's queue (a cross-local-store descriptor pull:
/// two high-latency accesses' worth under the Cell-like cost model).
pub const DEFAULT_STEAL_COST: u64 = 600;

/// Simulated cycles a retried tile cools down on the accelerator clock
/// before re-running (see [`TileScheduler::backoff`]): roughly the
/// cost of re-staging one bulk descriptor under the Cell-like model.
pub const DEFAULT_RETRY_BACKOFF: u64 = 1_000;

/// Extends [`OffloadBuilder`] with the scheduler entry point, so a
/// tiled dispatch reads as one fluent chain:
/// `machine.offload(0).label("ai").cache(choice).sched(policy)`.
pub trait SchedExt<'m> {
    /// Turns the configured offload into a [`TileScheduler`] running
    /// under `policy`. The builder's accelerator index becomes the
    /// first lane; its label and cache choice apply to every tile.
    fn sched(self, policy: SchedPolicy) -> TileScheduler<'m>;
}

impl<'m> SchedExt<'m> for OffloadBuilder<'m> {
    fn sched(self, policy: SchedPolicy) -> TileScheduler<'m> {
        let OffloadParts {
            machine,
            accel: base,
            label,
            cache,
            faults,
            modes,
            // Tile schedulers re-launch per tile; launch-time gather
            // declarations don't fan out, so kernels gather dynamically
            // via AccelCtx::gather instead.
            gathers: _,
        } = self.into_parts();
        TileScheduler {
            machine,
            base,
            accels: None,
            label,
            cache,
            policy,
            steal_cost: DEFAULT_STEAL_COST,
            faults,
            retries: 0,
            backoff: DEFAULT_RETRY_BACKOFF,
            fallback: false,
            modes,
        }
    }
}

/// A configured tile dispatch over several accelerators.
///
/// Built by [`SchedExt::sched`]; consumed by
/// [`TileScheduler::run_tiles`].
#[must_use = "a tile scheduler does nothing until run_tiles"]
#[derive(Debug)]
pub struct TileScheduler<'m> {
    machine: &'m mut Machine,
    base: u16,
    accels: Option<u16>,
    label: &'static str,
    cache: CacheChoice,
    policy: SchedPolicy,
    steal_cost: u64,
    faults: Option<FaultPlan>,
    retries: u32,
    backoff: u64,
    fallback: bool,
    modes: ModeSet,
}

/// Per-accelerator row of a [`SchedReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneReport {
    /// The accelerator index.
    pub accel: u16,
    /// Tiles this accelerator ran.
    pub tiles: u32,
    /// Cycles spent running tiles.
    pub busy: u64,
    /// Cycles spent idle between the dispatch start and the last tile
    /// end anywhere (the gaps the scheduler lane shows as `idle`).
    pub idle: u64,
}

/// What a [`TileScheduler::run_tiles`] dispatch did, for reports and
/// assertions. All cycle figures are simulated cycles.
///
/// # Busy / idle / stall
///
/// This report and [`PipeReport`](crate::PipeReport) share one
/// vocabulary, exposed by the same three accessors on both:
///
/// | term | meaning (simulated cycles) |
/// |-------|---------------------------|
/// | busy  | a lane was executing items: compute, transfers, and any stalls charged to the item ([`busy_cycles`](SchedReport::busy_cycles), summed over [`LaneReport::busy`]) |
/// | idle  | a lane had nothing to run between the dispatch start and the last item finishing anywhere ([`idle_cycles`](SchedReport::idle_cycles), summed over [`LaneReport::idle`]) |
/// | stall | items were blocked on coordination rather than work — steal costs here, input waits and backpressure in a pipeline ([`stall_cycles`](SchedReport::stall_cycles)) |
///
/// Stall cycles are a *breakdown*, not a third bucket: they were
/// charged somewhere (to the thief's lane here, to the stage's item in
/// a pipeline), so they are already inside the busy/cycle totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedReport {
    /// The policy that produced this schedule.
    pub policy: SchedPolicy,
    /// Tiles dispatched.
    pub tiles: u32,
    /// Accelerator lanes used.
    pub accels: u16,
    /// Host cycles from entering `run_tiles` to the last join.
    pub cycles: u64,
    /// Cycle at which the last tile finished (absolute machine time).
    pub finished_at: u64,
    /// One row per accelerator lane.
    pub lanes: Vec<LaneReport>,
    /// Tiles that moved queues under work stealing.
    pub steals: u32,
    /// Total cycles thieves paid grabbing those tiles.
    pub steal_cycles: u64,
    /// Faults the plane injected during the dispatch (all kinds).
    pub faults: u64,
    /// Tile retries the recovery layer performed.
    pub retries: u64,
    /// Tiles that degraded to host execution.
    pub fallbacks: u64,
    /// Accelerators evicted mid-dispatch after the fault plane killed
    /// them, in eviction order.
    pub evicted: Vec<u16>,
}

impl SchedReport {
    /// Total busy cycles: the sum of [`LaneReport::busy`] over every
    /// lane (see the busy/idle/stall table on [`SchedReport`]).
    pub fn busy_cycles(&self) -> u64 {
        self.lanes.iter().map(|l| l.busy).sum()
    }

    /// Total idle cycles: the sum of [`LaneReport::idle`] over every
    /// lane.
    pub fn idle_cycles(&self) -> u64 {
        self.lanes.iter().map(|l| l.idle).sum()
    }

    /// Total coordination-stall cycles: for tile dispatch, the cycles
    /// thieves paid moving stolen tiles between queues
    /// ([`SchedReport::steal_cycles`]).
    pub fn stall_cycles(&self) -> u64 {
        self.steal_cycles
    }

    /// Load imbalance of the schedule: max over mean busy cycles
    /// across the lanes that ran anything (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self
            .lanes
            .iter()
            .map(|l| l.busy)
            .filter(|&b| b > 0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        max / mean
    }
}

/// One dispatched tile, pending join.
struct Dispatch<R> {
    tile: u32,
    handle: OffloadHandle<Result<R, SimError>>,
}

impl<'m> TileScheduler<'m> {
    /// Restricts the dispatch to the first `n` accelerator lanes
    /// (starting at the builder's accelerator). Defaults to every
    /// accelerator from there up.
    pub fn accels(mut self, n: u16) -> TileScheduler<'m> {
        self.accels = Some(n);
        self
    }

    /// Sets the simulated cycles a work-stealing thief pays per stolen
    /// tile (default [`DEFAULT_STEAL_COST`]). Ignored by the other
    /// policies.
    pub fn steal_cost(mut self, cycles: u64) -> TileScheduler<'m> {
        self.steal_cost = cycles;
        self
    }

    /// Arms `plan` on the machine when the dispatch starts (the
    /// scheduler-side twin of [`OffloadBuilder::faults`], for chains
    /// that call [`SchedExt::sched`] first). The plan persists on the
    /// machine afterwards; clear it with
    /// [`Machine::clear_fault_plan`](simcell::Machine::clear_fault_plan).
    pub fn faults(mut self, plan: FaultPlan) -> TileScheduler<'m> {
        self.faults = Some(plan);
        self
    }

    /// Retries a tile up to `n` times after a *transient* fault (DMA
    /// corruption/drop, tag timeout, local-store poison) before giving
    /// up on it. Default 0: the first fault is final.
    pub fn retry(mut self, n: u32) -> TileScheduler<'m> {
        self.retries = n;
        self
    }

    /// Sets the simulated cycles a retried tile waits on the
    /// accelerator clock before re-running (default
    /// [`DEFAULT_RETRY_BACKOFF`]).
    pub fn backoff(mut self, cycles: u64) -> TileScheduler<'m> {
        self.backoff = cycles;
        self
    }

    /// Declares that every tile only *loads* from `[addr, addr+len)`
    /// (see [`OffloadBuilder::reads`]). The declaration applies to each
    /// tile launch and to any host fallback of the same tile.
    pub fn reads(mut self, addr: Addr, len: u32) -> TileScheduler<'m> {
        self.modes.declare(addr, len, AccessMode::Read);
        self
    }

    /// Declares that tiles *fully overwrite* `[addr, addr+len)` without
    /// reading it (see [`OffloadBuilder::writes`]): the put journal
    /// skips pre-image snapshots for the range under an armed fault
    /// plan.
    pub fn writes(mut self, addr: Addr, len: u32) -> TileScheduler<'m> {
        self.modes.declare(addr, len, AccessMode::Write);
        self
    }

    /// Declares that tiles read *and* write `[addr, addr+len)` (see
    /// [`OffloadBuilder::updates`]).
    pub fn updates(mut self, addr: Addr, len: u32) -> TileScheduler<'m> {
        self.modes.declare(addr, len, AccessMode::Update);
        self
    }

    /// Degrades unrecoverable tiles to host execution instead of
    /// failing the dispatch: tiles that exhaust their retries, and
    /// tiles stranded when every lane's accelerator has died, re-run on
    /// the host at the cost model's `host_fallback_factor` penalty.
    pub fn fallback_host(mut self) -> TileScheduler<'m> {
        self.fallback = true;
        self
    }

    /// Dispatches `tiles` tiles through the policy and joins them all.
    ///
    /// The closure runs once per tile (in scheduler-determined order —
    /// it must not care) against the accelerator context the tile
    /// landed on; stolen tiles are charged the steal cost *before* the
    /// closure runs. Returns the per-tile results indexed by tile,
    /// plus the [`SchedReport`]. Joins happen in tile order for every
    /// policy, so a policy changes cycle accounting, never results.
    ///
    /// With a fault plan armed, retries/evictions/fallbacks happen as
    /// described at the module level; a tile that reaches the host
    /// fallback may re-run the closure there, so the closure must
    /// tolerate re-execution from a clean local-store mark.
    ///
    /// # Errors
    ///
    /// Fails if the lane range does not exist on the machine, if the
    /// tuned cache cannot be built, or with the first tile error (by
    /// tile index) the closure returned. An injected fault the
    /// recovery layer could not absorb (retries exhausted without
    /// [`TileScheduler::fallback_host`], or every lane dead) surfaces
    /// as [`SimError::Fault`].
    pub fn run_tiles<R>(
        self,
        tiles: u32,
        mut f: impl FnMut(&mut AccelCtx<'_>, u32) -> Result<R, SimError>,
    ) -> Result<(Vec<R>, SchedReport), SimError> {
        let TileScheduler {
            machine,
            base,
            accels,
            label,
            cache,
            policy,
            steal_cost,
            faults,
            retries,
            backoff,
            fallback,
            modes,
        } = self;
        if let Some(plan) = faults {
            machine.install_fault_plan(plan);
        }
        let lane_count = accels.unwrap_or_else(|| machine.accel_count().saturating_sub(base));
        if lane_count == 0
            || u32::from(base) + u32::from(lane_count) > u32::from(machine.accel_count())
        {
            return Err(SimError::BadConfig {
                reason: format!(
                    "scheduler lanes {base}..{} exceed the machine's {} accelerators",
                    u32::from(base) + u32::from(lane_count),
                    machine.accel_count()
                ),
            });
        }
        let lanes: Vec<u16> = (base..base + lane_count).collect();
        let t0 = machine.host_now();
        let s0 = *machine.stats();
        let mut dispatches: Vec<Dispatch<R>> = Vec::with_capacity(tiles as usize);
        let mut steals = 0u32;
        let mut steal_cycles = 0u64;
        let mut evicted: Vec<u16> = Vec::new();
        // Tiles stranded by total accelerator loss, awaiting the host
        // fallback (joined tiles that exhausted retries join them below).
        let mut stranded: Vec<(u32, u16)> = Vec::new();

        // One launch, shared by every policy: run the tile (stolen
        // tiles pay the grab first, retried tiles their backoff) and
        // note the run on the timeline.
        let mut launch = |machine: &mut Machine,
                          lane: u16,
                          tile: u32,
                          stolen_from: Option<u16>|
         -> Result<Dispatch<R>, SimError> {
            let handle = machine
                .offload(lane)
                .label(label)
                .cache(cache)
                .with_modes(modes.clone())
                .spawn(|ctx| {
                    if stolen_from.is_some() {
                        ctx.compute(steal_cost);
                    }
                    run_with_retries(ctx, tile, retries, backoff, &mut f)
                })?;
            if let Some(victim) = stolen_from {
                machine.sched_note_steal(handle.start(), lane, victim, tile, steal_cost);
                steals += 1;
                steal_cycles += steal_cost;
            }
            machine.sched_note_run(handle.start(), lane, tile, handle.end(), stolen_from);
            Ok(Dispatch { tile, handle })
        };

        match policy {
            SchedPolicy::Static => {
                let mut queues: Vec<(u16, VecDeque<u32>)> = lanes
                    .iter()
                    .copied()
                    .zip(static_split(tiles, &lanes))
                    .collect();
                for (lane, queue) in &queues {
                    for &tile in queue {
                        machine.sched_note_enqueue(t0, *lane, tile);
                    }
                }
                // Sweep the lanes in order, popping one front tile per
                // lane per pass — position-major launch order: the
                // first tile of each lane, then the second of each, …
                // With one tile per lane this is exactly the
                // hand-rolled E14 loop.
                let mut remaining = tiles;
                'dispatch: while remaining > 0 {
                    let mut i = 0;
                    while i < queues.len() {
                        let Some(tile) = queues[i].1.pop_front() else {
                            i += 1;
                            continue;
                        };
                        let lane = queues[i].0;
                        match launch(machine, lane, tile, None) {
                            Ok(d) => {
                                dispatches.push(d);
                                remaining -= 1;
                                i += 1;
                            }
                            Err(SimError::Fault(FaultError::AccelDead { .. })) => {
                                let (dead, mut orphans) = queues.remove(i);
                                orphans.push_front(tile);
                                evicted.push(dead);
                                machine.recovery_note_evict(
                                    machine.host_now(),
                                    dead,
                                    orphans.len() as u32,
                                );
                                if queues.is_empty() {
                                    if !fallback {
                                        return Err(FaultError::AccelDead { accel: dead }.into());
                                    }
                                    stranded.extend(orphans.into_iter().map(|t| (t, dead)));
                                    break 'dispatch;
                                }
                                // Round-robin the orphans over the
                                // survivors; the removal already slid
                                // the next lane into slot i, so this
                                // sweep continues without skipping it.
                                let survivors = queues.len();
                                for (k, t) in orphans.into_iter().enumerate() {
                                    let (lane, queue) = &mut queues[k % survivors];
                                    queue.push_back(t);
                                    let lane = *lane;
                                    machine.sched_note_enqueue(machine.host_now(), lane, t);
                                }
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
            SchedPolicy::ShortestQueue => {
                let mut live = lanes.clone();
                for tile in 0..tiles {
                    loop {
                        let Some(&lane) = live.iter().min_by_key(|&&l| {
                            machine.accel_free_at(l).expect("lane checked above")
                        }) else {
                            // Every lane is dead; the last eviction is
                            // the fault that stranded this tile.
                            let dead = *evicted.last().expect("emptied by eviction");
                            if !fallback {
                                return Err(FaultError::AccelDead { accel: dead }.into());
                            }
                            stranded.push((tile, dead));
                            break;
                        };
                        machine.sched_note_enqueue(machine.host_now(), lane, tile);
                        match launch(machine, lane, tile, None) {
                            Ok(d) => {
                                dispatches.push(d);
                                break;
                            }
                            Err(SimError::Fault(FaultError::AccelDead { .. })) => {
                                live.retain(|&l| l != lane);
                                evicted.push(lane);
                                machine.recovery_note_evict(machine.host_now(), lane, 1);
                                // Greedy has no queue to drain: the
                                // bounced tile just re-picks among the
                                // survivors.
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
            SchedPolicy::WorkStealing => {
                let mut queues: Vec<(u16, VecDeque<u32>)> = lanes
                    .iter()
                    .copied()
                    .zip(static_split(tiles, &lanes))
                    .collect();
                for (lane, queue) in &queues {
                    for &tile in queue {
                        machine.sched_note_enqueue(t0, *lane, tile);
                    }
                }
                let mut pending = tiles;
                while pending > 0 {
                    // Lanes in becomes-free order; the first that can
                    // act (own work, or a profitable steal) dispatches.
                    // The most-loaded lane can always pop its own
                    // front, so one pass always picks something.
                    let mut order: Vec<usize> = (0..queues.len()).collect();
                    order.sort_by_key(|&i| {
                        machine
                            .accel_free_at(queues[i].0)
                            .expect("lane checked above")
                    });
                    let next_floor = machine.host_now() + machine.cost().offload_launch;
                    let mut choice: Option<(usize, u32, Option<usize>)> = None;
                    for &i in &order {
                        if let Some(tile) = queues[i].1.pop_front() {
                            choice = Some((i, tile, None));
                            break;
                        }
                        // Own deque empty: steal the back tile of the
                        // most-loaded victim, but only if the thief —
                        // launch floor and steal cost included — starts
                        // it strictly before the victim is even free.
                        // That bound keeps every stolen tile's end at
                        // or before its static end.
                        let thief_free = machine
                            .accel_free_at(queues[i].0)
                            .expect("lane checked above");
                        let thief_eff = thief_free.max(next_floor);
                        let victim = order
                            .iter()
                            .rev()
                            .copied()
                            .find(|&j| j != i && !queues[j].1.is_empty());
                        if let Some(j) = victim {
                            let victim_free = machine
                                .accel_free_at(queues[j].0)
                                .expect("lane checked above");
                            if thief_eff + steal_cost < victim_free {
                                let tile = queues[j].1.pop_back().expect("checked non-empty");
                                choice = Some((i, tile, Some(j)));
                                break;
                            }
                        }
                    }
                    let (i, tile, victim) =
                        choice.expect("some live lane always owns a runnable tile");
                    let lane = queues[i].0;
                    match launch(machine, lane, tile, victim.map(|j| queues[j].0)) {
                        Ok(d) => {
                            dispatches.push(d);
                            pending -= 1;
                        }
                        Err(SimError::Fault(FaultError::AccelDead { .. })) => {
                            // Put the tile back where it came from,
                            // then evict the dead lane and round-robin
                            // its deque over the survivors (whose
                            // thieves rebalance it from there).
                            match victim {
                                Some(j) => queues[j].1.push_back(tile),
                                None => queues[i].1.push_front(tile),
                            }
                            let (dead, orphans) = queues.remove(i);
                            evicted.push(dead);
                            machine.recovery_note_evict(
                                machine.host_now(),
                                dead,
                                orphans.len() as u32,
                            );
                            if queues.is_empty() {
                                if !fallback {
                                    return Err(FaultError::AccelDead { accel: dead }.into());
                                }
                                stranded.extend(orphans.into_iter().map(|t| (t, dead)));
                                break;
                            }
                            let survivors = queues.len();
                            for (k, t) in orphans.into_iter().enumerate() {
                                let (lane, queue) = &mut queues[k % survivors];
                                queue.push_back(t);
                                let lane = *lane;
                                machine.sched_note_enqueue(machine.host_now(), lane, t);
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }

        // Join in tile order for every policy: results are
        // policy-independent, and the host-clock accounting matches
        // the hand-rolled dispatch-then-join-in-order frame loop.
        dispatches.sort_by_key(|d| d.tile);
        let mut runs: Vec<(u16, u32, u64, u64)> = dispatches
            .iter()
            .map(|d| (d.handle.accel(), d.tile, d.handle.start(), d.handle.end()))
            .collect();
        let mut results: Vec<Option<R>> = Vec::with_capacity(tiles as usize);
        results.resize_with(tiles as usize, || None);
        let mut failed: Vec<(u32, u16)> = stranded;
        let mut first_err: Option<SimError> = None;
        for d in dispatches {
            let accel = d.handle.accel();
            match machine.join(d.handle) {
                Ok(r) => results[d.tile as usize] = Some(r),
                Err(SimError::Fault(_)) if fallback => failed.push((d.tile, accel)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Last resort: re-run every unrecovered tile on the host, in
        // tile order, at the cost model's honest fallback penalty.
        failed.sort_by_key(|&(tile, _)| tile);
        for (tile, accel) in failed {
            machine.recovery_note_fallback(machine.host_now(), accel, tile);
            let r =
                machine.run_host_fallback(accel, label, modes.clone(), |ctx| f(ctx, tile))??;
            results[tile as usize] = Some(r);
        }
        let results: Vec<R> = results
            .into_iter()
            .map(|r| r.expect("every tile either resolved or errored out above"))
            .collect();

        // Reconstruct per-lane occupancy and note the idle gaps the
        // trace's scheduler lanes render (zero simulated cost).
        let finished_at = runs.iter().map(|&(_, _, _, end)| end).max().unwrap_or(t0);
        runs.sort_by_key(|&(accel, _, start, _)| (accel, start));
        let mut lane_reports = Vec::with_capacity(lanes.len());
        for &lane in &lanes {
            let mut cursor = t0;
            let mut busy = 0u64;
            let mut count = 0u32;
            for &(accel, _, start, end) in runs.iter().filter(|&&(a, ..)| a == lane) {
                debug_assert_eq!(accel, lane);
                if start > cursor {
                    machine.sched_note_idle(cursor, lane, start);
                }
                busy += end - start;
                count += 1;
                cursor = cursor.max(end);
            }
            if finished_at > cursor {
                machine.sched_note_idle(cursor, lane, finished_at);
            }
            lane_reports.push(LaneReport {
                accel: lane,
                tiles: count,
                busy,
                idle: finished_at.saturating_sub(t0).saturating_sub(busy),
            });
        }

        let s1 = *machine.stats();
        let report = SchedReport {
            policy,
            tiles,
            accels: lane_count,
            cycles: machine.host_now() - t0,
            finished_at,
            lanes: lane_reports,
            steals,
            steal_cycles,
            faults: s1.faults_injected - s0.faults_injected,
            retries: s1.recovery_retries - s0.recovery_retries,
            fallbacks: s1.recovery_fallbacks - s0.recovery_fallbacks,
            evicted,
        };
        Ok((results, report))
    }
}

/// Runs one tile with the retry/backoff recovery loop: a transient
/// fault (returned by the closure, or left sticky by a tag timeout)
/// releases the tile's local-store allocations, quiesces the DMA
/// engine, charges the backoff on the accelerator clock, and re-runs —
/// up to `retries` times before the fault becomes the tile's result.
/// Shared with the pipeline runtime (`crate::pipeline`), which passes a
/// chunk index as `tile`.
pub(crate) fn run_with_retries<R>(
    ctx: &mut AccelCtx<'_>,
    tile: u32,
    retries: u32,
    backoff: u64,
    f: &mut dyn FnMut(&mut AccelCtx<'_>, u32) -> Result<R, SimError>,
) -> Result<R, SimError> {
    let mut attempt = 0u32;
    loop {
        let mark = ctx.local_alloc_mark();
        let puts = ctx.put_journal_mark();
        let err = match f(ctx, tile) {
            Ok(r) => match ctx.take_fault() {
                // A sticky timeout the closure never checked still
                // fails the attempt: its data may be incomplete.
                Some(fault) => SimError::from(fault),
                None => {
                    ctx.put_journal_commit(puts);
                    return Ok(r);
                }
            },
            Err(e) => e,
        };
        // Either way the failed attempt's in-flight transfers must
        // land before anyone reuses this local store — the retry, the
        // next tile on this lane, or the host fallback. A timeout
        // rolled during the drain belongs to the same failed attempt,
        // so it must not poison what comes next.
        ctx.dma_wait_all();
        ctx.take_fault();
        // Void the failed attempt's main-memory puts: an in-place tile
        // reads the range it writes, so whoever re-runs it — the retry
        // here or the host fallback after us — must see the input the
        // failed attempt started from, not its partial (or scribbled)
        // output.
        ctx.put_journal_rollback(puts)?;
        let transient = matches!(&err, SimError::Fault(fault) if fault.is_transient());
        if !transient || attempt >= retries {
            return Err(err);
        }
        ctx.local_alloc_restore(mark);
        attempt += 1;
        ctx.recovery_note_retry(tile, attempt, backoff);
        ctx.compute(backoff);
    }
}

/// Block split of `tiles` over the lanes: lane `a` of `A` owns tiles
/// `[T*a/A, T*(a+1)/A)`, front-to-back.
fn static_split(tiles: u32, lanes: &[u16]) -> Vec<VecDeque<u32>> {
    let a = lanes.len() as u32;
    (0..a)
        .map(|i| (tiles * i / a..tiles * (i + 1) / a).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::{EventKind, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::default()).unwrap()
    }

    fn run_policy(policy: SchedPolicy, costs: &[u64], accels: u16) -> (u64, SchedReport) {
        let mut m = machine();
        let t0 = m.host_now();
        let (_, report) = m
            .offload(0)
            .sched(policy)
            .accels(accels)
            .run_tiles(costs.len() as u32, |ctx, tile| {
                ctx.compute(costs[tile as usize]);
                Ok(())
            })
            .unwrap();
        (m.host_now() - t0, report)
    }

    #[test]
    fn static_one_tile_per_lane_is_bit_identical_to_hand_rolled_offloads() {
        let costs = [30_000u64, 42_000, 27_000, 35_000];
        let mut by_hand = machine();
        let mut handles = Vec::new();
        for (a, &c) in costs.iter().enumerate() {
            handles.push(
                by_hand
                    .offload(a as u16)
                    .spawn(move |ctx| ctx.compute(c))
                    .unwrap(),
            );
        }
        for h in handles {
            by_hand.join(h);
        }
        let (sched_cycles, report) = run_policy(SchedPolicy::Static, &costs, 4);
        assert_eq!(sched_cycles, by_hand.host_now());
        assert_eq!(report.cycles, sched_cycles);
        assert_eq!(report.steals, 0);
        assert_eq!(report.lanes.len(), 4);
        assert!(report.lanes.iter().all(|l| l.tiles == 1));
    }

    #[test]
    fn work_stealing_recovers_most_of_a_skewed_static_schedule() {
        // Two hot tiles land on lane 0 under the static split; lanes
        // 2 and 3 finish early and steal them.
        let costs = [
            120_000u64, 120_000, 8_000, 8_000, 8_000, 8_000, 8_000, 8_000,
        ];
        let (static_cycles, _) = run_policy(SchedPolicy::Static, &costs, 4);
        let (ws_cycles, report) = run_policy(SchedPolicy::WorkStealing, &costs, 4);
        assert!(report.steals > 0, "skew this strong must trigger steals");
        assert_eq!(
            report.steal_cycles,
            u64::from(report.steals) * DEFAULT_STEAL_COST
        );
        assert!(
            ws_cycles * 5 < static_cycles * 4,
            "stealing should recover >20%: {ws_cycles} vs {static_cycles}"
        );
    }

    #[test]
    fn work_stealing_matches_static_exactly_on_uniform_tiles() {
        let costs = [25_000u64; 6];
        let (static_cycles, _) = run_policy(SchedPolicy::Static, &costs, 6);
        let (ws_cycles, report) = run_policy(SchedPolicy::WorkStealing, &costs, 6);
        assert_eq!(ws_cycles, static_cycles, "no profitable steal exists");
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn shortest_queue_fills_the_least_loaded_lane() {
        // One long tile first: the greedy policy routes the rest away
        // from the busy lane, beating the block split.
        let costs = [200_000u64, 10_000, 10_000, 10_000, 10_000, 10_000];
        let (static_cycles, _) = run_policy(SchedPolicy::Static, &costs, 3);
        let (sq_cycles, report) = run_policy(SchedPolicy::ShortestQueue, &costs, 3);
        assert!(sq_cycles < static_cycles);
        assert_eq!(report.lanes.iter().map(|l| l.tiles).sum::<u32>(), 6);
    }

    #[test]
    fn results_are_indexed_by_tile_under_every_policy() {
        for policy in [
            SchedPolicy::Static,
            SchedPolicy::ShortestQueue,
            SchedPolicy::WorkStealing,
        ] {
            let mut m = machine();
            let (results, _) = m
                .offload(0)
                .sched(policy)
                .accels(3)
                .run_tiles(10, |ctx, tile| {
                    ctx.compute(u64::from(10 - tile) * 9_000);
                    Ok(tile * 7)
                })
                .unwrap();
            let expect: Vec<u32> = (0..10).map(|t| t * 7).collect();
            assert_eq!(results, expect, "{policy:?}");
        }
    }

    #[test]
    fn dispatch_records_sched_events_and_idle_gaps() {
        let mut m = machine();
        m.events_mut().set_enabled(true);
        let costs = [90_000u64, 9_000, 9_000, 9_000];
        let (_, report) = m
            .offload(0)
            .sched(SchedPolicy::Static)
            .accels(2)
            .run_tiles(4, |ctx, tile| {
                ctx.compute(costs[tile as usize]);
                Ok(())
            })
            .unwrap();
        let events = m.events().events();
        let enqueues = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SchedEnqueue { .. }))
            .count();
        let runs = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SchedRun { .. }))
            .count();
        let idles = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SchedIdle { .. }))
            .count();
        assert_eq!(enqueues, 4);
        assert_eq!(runs, 4);
        assert!(idles > 0, "lane 1 finishes early and must show an idle gap");
        // Lane 0 carries the hot tile; the report calls that out.
        assert!(report.imbalance() > 1.2, "imbalance {}", report.imbalance());
        let stats = m.stats();
        assert_eq!(stats.sched_tiles, 4);
        assert!(stats.sched_idle_cycles > 0);
    }

    #[test]
    fn stolen_tiles_pay_the_configured_cost_and_results_survive() {
        let costs = [150_000u64, 150_000, 5_000, 5_000, 5_000, 5_000];
        let mut m = machine();
        let (results, report) = m
            .offload(0)
            .sched(SchedPolicy::WorkStealing)
            .accels(3)
            .steal_cost(2_500)
            .run_tiles(6, |ctx, tile| {
                ctx.compute(costs[tile as usize]);
                Ok(tile)
            })
            .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        assert!(report.steals > 0);
        assert_eq!(report.steal_cycles, u64::from(report.steals) * 2_500);
        assert_eq!(m.stats().sched_steals, u64::from(report.steals));
    }

    #[test]
    fn lane_ranges_are_validated() {
        let mut m = machine();
        let err = m
            .offload(4)
            .sched(SchedPolicy::Static)
            .accels(5)
            .run_tiles(4, |_, _| Ok(()));
        assert!(err.is_err(), "4..9 exceeds a 6-accel machine");
        let ok = m
            .offload(4)
            .sched(SchedPolicy::Static)
            .run_tiles(4, |ctx, _| {
                ctx.compute(1_000);
                Ok(())
            });
        assert!(ok.is_ok(), "defaulting to the remaining lanes fits");
    }

    /// A tile body with a real DMA round trip, so transfer faults have
    /// something to hit: fetch one u32, return it.
    fn fetch_tile(
        machine: &mut Machine,
        values: &[u32],
    ) -> (
        memspace::Addr,
        impl Fn(&mut AccelCtx<'_>, u32) -> Result<u32, SimError>,
    ) {
        let remote = machine
            .alloc_main_slice::<u32>(values.len() as u32)
            .unwrap();
        machine.main_mut().write_pod_slice(remote, values).unwrap();
        let base = remote;
        let body = move |ctx: &mut AccelCtx<'_>, tile: u32| -> Result<u32, SimError> {
            let local = ctx.alloc_local(4, 16)?;
            let tag = dma::Tag::new(3).unwrap();
            ctx.dma_get(local, base.offset_by(tile * 4)?, 4, tag)?;
            ctx.dma_wait_tag(tag);
            ctx.check_faults()?;
            ctx.compute(5_000);
            ctx.local_read_pod::<u32>(local)
        };
        (remote, body)
    }

    #[test]
    fn retries_absorb_transient_dma_faults() {
        let values: Vec<u32> = (0..12).map(|i| i * 11 + 7).collect();
        let mut m = machine();
        let (_, body) = fetch_tile(&mut m, &values);
        let (results, report) = m
            .offload(0)
            .faults(FaultPlan::new(0xfab).with_dma_corrupt(0.5))
            .sched(SchedPolicy::Static)
            .accels(4)
            .retry(6)
            .backoff(800)
            .run_tiles(12, body)
            .unwrap();
        assert_eq!(results, values, "retried tiles must re-fetch clean data");
        assert!(
            report.faults > 0,
            "a 50% corrupt rate must fire over 12 DMAs"
        );
        assert!(report.retries > 0);
        assert_eq!(report.retries, m.stats().recovery_retries);
        assert_eq!(
            m.stats().recovery_backoff_cycles,
            report.retries * 800,
            "every retry charges the configured backoff"
        );
        assert_eq!(report.fallbacks, 0);
    }

    #[test]
    fn exhausted_retries_degrade_to_host_fallback() {
        // Every transfer corrupts: no retry budget can absorb that, so
        // with fallback_host every tile completes on the host instead.
        let values: Vec<u32> = (0..6).map(|i| 1000 - i).collect();
        let mut m = machine();
        let (_, body) = fetch_tile(&mut m, &values);
        let (results, report) = m
            .offload(0)
            .faults(FaultPlan::new(7).with_dma_corrupt(1.0))
            .sched(SchedPolicy::ShortestQueue)
            .accels(3)
            .retry(2)
            .fallback_host()
            .run_tiles(6, body)
            .unwrap();
        assert_eq!(results, values, "host fallback runs fault-free");
        assert_eq!(report.fallbacks, 6);
        assert_eq!(report.retries, 12, "2 retries per tile before giving up");
        assert!(m.stats().recovery_fallback_cycles > 0);
    }

    #[test]
    fn dead_lanes_are_evicted_and_survivors_absorb_their_tiles() {
        for policy in [
            SchedPolicy::Static,
            SchedPolicy::ShortestQueue,
            SchedPolicy::WorkStealing,
        ] {
            let mut m = machine();
            let (results, report) = m
                .offload(0)
                .faults(FaultPlan::new(0xdead).with_accel_death(0.2))
                .sched(policy)
                .accels(4)
                .fallback_host()
                .run_tiles(16, |ctx, tile| {
                    ctx.compute(20_000);
                    Ok(tile * 3)
                })
                .unwrap();
            let expect: Vec<u32> = (0..16).map(|t| t * 3).collect();
            assert_eq!(results, expect, "{policy:?}");
            assert!(
                !report.evicted.is_empty(),
                "{policy:?}: a 20% death rate over 16 launches must kill a lane"
            );
            assert_eq!(
                report.evicted.len() as u64,
                m.stats().recovery_evictions,
                "{policy:?}"
            );
            let ran: u32 = report.lanes.iter().map(|l| l.tiles).sum();
            assert_eq!(ran as u64 + report.fallbacks, 16, "{policy:?}");
        }
    }

    #[test]
    fn total_accel_loss_without_fallback_is_the_dispatch_error() {
        let mut m = machine();
        let err = m
            .offload(0)
            .faults(FaultPlan::new(1).with_accel_death(1.0))
            .sched(SchedPolicy::WorkStealing)
            .accels(3)
            .run_tiles(6, |ctx, tile| {
                ctx.compute(1_000);
                Ok(tile)
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Fault(FaultError::AccelDead { .. })));
    }

    #[test]
    fn total_accel_loss_with_fallback_completes_on_the_host() {
        let mut m = machine();
        let (results, report) = m
            .offload(0)
            .faults(FaultPlan::new(1).with_accel_death(1.0))
            .sched(SchedPolicy::Static)
            .accels(3)
            .fallback_host()
            .run_tiles(6, |ctx, tile| {
                ctx.compute(1_000);
                Ok(tile + 100)
            })
            .unwrap();
        assert_eq!(results, vec![100, 101, 102, 103, 104, 105]);
        assert_eq!(report.evicted.len(), 3, "every lane died");
        assert_eq!(report.fallbacks, 6, "every tile degraded to the host");
        assert_eq!(report.lanes.iter().map(|l| l.tiles).sum::<u32>(), 0);
    }

    #[test]
    fn all_zero_plan_is_bit_identical_to_no_plan() {
        let costs = [40_000u64, 12_000, 9_000, 30_000, 8_000, 15_000];
        let run = |plan: Option<FaultPlan>| {
            let mut m = machine();
            if let Some(p) = plan {
                m.install_fault_plan(p);
            }
            let (_, report) = m
                .offload(0)
                .sched(SchedPolicy::WorkStealing)
                .accels(3)
                .retry(2)
                .fallback_host()
                .run_tiles(costs.len() as u32, |ctx, tile| {
                    ctx.compute(costs[tile as usize]);
                    Ok(())
                })
                .unwrap();
            (m.host_now(), report.cycles, report.steals)
        };
        assert_eq!(
            run(None),
            run(Some(FaultPlan::new(42))),
            "an armed all-zero plan must not perturb the schedule"
        );
    }

    #[test]
    fn same_seed_reproduces_the_same_faulty_schedule() {
        let run = || {
            let values: Vec<u32> = (0..10).map(|i| i ^ 0x5a).collect();
            let mut m = machine();
            let (_, body) = fetch_tile(&mut m, &values);
            let (results, report) = m
                .offload(0)
                .faults(
                    FaultPlan::new(0xc0ffee)
                        .with_dma_corrupt(0.3)
                        .with_tag_timeout(0.2)
                        .with_accel_death(0.05),
                )
                .sched(SchedPolicy::WorkStealing)
                .accels(4)
                .retry(4)
                .fallback_host()
                .run_tiles(10, body)
                .unwrap();
            (results, m.host_now(), *m.stats(), report.evicted.clone())
        };
        assert_eq!(run(), run(), "the fault schedule is a function of the seed");
    }

    #[test]
    fn zero_tiles_is_a_no_op() {
        let mut m = machine();
        let before = m.host_now();
        let (results, report) = m
            .offload(0)
            .sched(SchedPolicy::WorkStealing)
            .run_tiles(0, |_, _| Ok(()))
            .unwrap();
        assert!(results.is_empty());
        assert_eq!(report.cycles, 0);
        assert_eq!(m.host_now(), before);
        assert_eq!(report.imbalance(), 1.0);
    }
}
