//! Deterministic multi-accelerator tile scheduling.
//!
//! The paper's frame loop (§4.1, Figure 2) offloads one task per
//! accelerator by hand. Once a task is tiled finer than the
//! accelerator count — or the tiles stop costing the same — someone
//! has to decide *which* accelerator runs *which* tile, and that
//! decision is a scheduler. This module layers three of them over
//! [`simcell::Machine`], all deterministic (the simulation stays
//! sequential; "parallelism" is the cycle accounting):
//!
//! - [`SchedPolicy::Static`]: block-split tiles over accelerators up
//!   front, exactly the hand-rolled split of the E14 experiment. Tile
//!   `t` of `T` on accelerator `base + t*A/T`-ish; with `T == A` this
//!   reproduces the classic one-offload-per-accelerator frame
//!   bit-identically.
//! - [`SchedPolicy::ShortestQueue`]: greedy — each tile, in order,
//!   goes to the accelerator that frees up earliest.
//! - [`SchedPolicy::WorkStealing`]: per-accelerator deques seeded with
//!   the static split; an accelerator that drains its own deque steals
//!   the *back* tile of the most-loaded queue, paying
//!   [`TileScheduler::steal_cost`] simulated cycles for the cross-queue
//!   grab. A steal is taken only when profitable — the thief, steal
//!   cost included, must start the tile strictly before the victim
//!   could even begin its own queue's remainder — so every stolen tile
//!   finishes no later than it would have under [`SchedPolicy::Static`]
//!   and work stealing can only recover cycles, never lose them (the
//!   seeded property test in `bench` exercises this over random
//!   tile-cost vectors).
//!
//! Every enqueue, run, steal and idle gap is recorded as a
//! zero-simulated-cost structured event in the machine's [`EventLog`];
//! the Chrome exporter renders them as one scheduler lane per
//! accelerator (see `simcell::trace` and the repository's
//! `PROFILING.md`).
//!
//! # Example
//!
//! ```
//! use offload_rt::sched::{SchedExt, SchedPolicy};
//! use simcell::{Machine, MachineConfig, SimError};
//!
//! # fn main() -> Result<(), SimError> {
//! let mut machine = Machine::new(MachineConfig::default())?;
//! let costs = [40_000u64, 5_000, 5_000, 5_000, 5_000, 5_000, 5_000, 5_000];
//! let (ends, report) = machine
//!     .offload(0)
//!     .label("tile")
//!     .sched(SchedPolicy::WorkStealing)
//!     .accels(4)
//!     .run_tiles(8, |ctx, tile| {
//!         ctx.compute(costs[tile as usize]);
//!         Ok(ctx.now())
//!     })?;
//! assert_eq!(ends.len(), 8);
//! assert_eq!(report.tiles, 8);
//! # Ok(())
//! # }
//! ```
//!
//! [`EventLog`]: simcell::EventLog

use std::collections::VecDeque;

use simcell::{AccelCtx, Machine, OffloadBuilder, OffloadHandle, SimError};
use softcache::CacheChoice;

/// How a [`TileScheduler`] maps tiles onto accelerators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Block-split tiles over accelerators up front: accelerator `a`
    /// of `A` owns tiles `[T*a/A, T*(a+1)/A)`. With one tile per
    /// accelerator this is bit-identical to launching one offload per
    /// accelerator by hand (the E14 shape).
    Static,
    /// Greedy: each tile, in tile order, goes to the accelerator that
    /// frees up earliest (ties to the lowest index).
    ShortestQueue,
    /// Static seeding plus stealing: an accelerator whose own deque is
    /// empty takes the back tile of the most-loaded queue when doing
    /// so is strictly profitable, paying the configured steal cost.
    WorkStealing,
}

impl SchedPolicy {
    /// Short lower-case name for report rows ("static", "shortest-queue",
    /// "work-stealing").
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Static => "static",
            SchedPolicy::ShortestQueue => "shortest-queue",
            SchedPolicy::WorkStealing => "work-stealing",
        }
    }
}

/// Simulated cycles a work-stealing thief pays to grab a tile from
/// another accelerator's queue (a cross-local-store descriptor pull:
/// two high-latency accesses' worth under the Cell-like cost model).
pub const DEFAULT_STEAL_COST: u64 = 600;

/// Extends [`OffloadBuilder`] with the scheduler entry point, so a
/// tiled dispatch reads as one fluent chain:
/// `machine.offload(0).label("ai").cache(choice).sched(policy)`.
pub trait SchedExt<'m> {
    /// Turns the configured offload into a [`TileScheduler`] running
    /// under `policy`. The builder's accelerator index becomes the
    /// first lane; its label and cache choice apply to every tile.
    fn sched(self, policy: SchedPolicy) -> TileScheduler<'m>;
}

impl<'m> SchedExt<'m> for OffloadBuilder<'m> {
    fn sched(self, policy: SchedPolicy) -> TileScheduler<'m> {
        let (machine, base, label, cache) = self.into_parts();
        TileScheduler {
            machine,
            base,
            accels: None,
            label,
            cache,
            policy,
            steal_cost: DEFAULT_STEAL_COST,
        }
    }
}

/// A configured tile dispatch over several accelerators.
///
/// Built by [`SchedExt::sched`]; consumed by
/// [`TileScheduler::run_tiles`].
#[must_use = "a tile scheduler does nothing until run_tiles"]
#[derive(Debug)]
pub struct TileScheduler<'m> {
    machine: &'m mut Machine,
    base: u16,
    accels: Option<u16>,
    label: &'static str,
    cache: CacheChoice,
    policy: SchedPolicy,
    steal_cost: u64,
}

/// Per-accelerator row of a [`SchedReport`].
#[derive(Clone, Copy, Debug)]
pub struct LaneReport {
    /// The accelerator index.
    pub accel: u16,
    /// Tiles this accelerator ran.
    pub tiles: u32,
    /// Cycles spent running tiles.
    pub busy: u64,
    /// Cycles spent idle between the dispatch start and the last tile
    /// end anywhere (the gaps the scheduler lane shows as `idle`).
    pub idle: u64,
}

/// What a [`TileScheduler::run_tiles`] dispatch did, for reports and
/// assertions. All cycle figures are simulated cycles.
#[derive(Clone, Debug)]
pub struct SchedReport {
    /// The policy that produced this schedule.
    pub policy: SchedPolicy,
    /// Tiles dispatched.
    pub tiles: u32,
    /// Accelerator lanes used.
    pub accels: u16,
    /// Host cycles from entering `run_tiles` to the last join.
    pub cycles: u64,
    /// Cycle at which the last tile finished (absolute machine time).
    pub finished_at: u64,
    /// One row per accelerator lane.
    pub lanes: Vec<LaneReport>,
    /// Tiles that moved queues under work stealing.
    pub steals: u32,
    /// Total cycles thieves paid grabbing those tiles.
    pub steal_cycles: u64,
}

impl SchedReport {
    /// Load imbalance of the schedule: max over mean busy cycles
    /// across the lanes that ran anything (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self
            .lanes
            .iter()
            .map(|l| l.busy)
            .filter(|&b| b > 0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        max / mean
    }
}

/// One dispatched tile, pending join.
struct Dispatch<R> {
    tile: u32,
    handle: OffloadHandle<Result<R, SimError>>,
}

impl<'m> TileScheduler<'m> {
    /// Restricts the dispatch to the first `n` accelerator lanes
    /// (starting at the builder's accelerator). Defaults to every
    /// accelerator from there up.
    pub fn accels(mut self, n: u16) -> TileScheduler<'m> {
        self.accels = Some(n);
        self
    }

    /// Sets the simulated cycles a work-stealing thief pays per stolen
    /// tile (default [`DEFAULT_STEAL_COST`]). Ignored by the other
    /// policies.
    pub fn steal_cost(mut self, cycles: u64) -> TileScheduler<'m> {
        self.steal_cost = cycles;
        self
    }

    /// Dispatches `tiles` tiles through the policy and joins them all.
    ///
    /// The closure runs once per tile (in scheduler-determined order —
    /// it must not care) against the accelerator context the tile
    /// landed on; stolen tiles are charged the steal cost *before* the
    /// closure runs. Returns the per-tile results indexed by tile,
    /// plus the [`SchedReport`]. Joins happen in tile order for every
    /// policy, so a policy changes cycle accounting, never results.
    ///
    /// # Errors
    ///
    /// Fails if the lane range does not exist on the machine, if the
    /// tuned cache cannot be built, or with the first tile error (by
    /// tile index) the closure returned.
    pub fn run_tiles<R>(
        self,
        tiles: u32,
        mut f: impl FnMut(&mut AccelCtx<'_>, u32) -> Result<R, SimError>,
    ) -> Result<(Vec<R>, SchedReport), SimError> {
        let TileScheduler {
            machine,
            base,
            accels,
            label,
            cache,
            policy,
            steal_cost,
        } = self;
        let lane_count = accels.unwrap_or_else(|| machine.accel_count().saturating_sub(base));
        if lane_count == 0
            || u32::from(base) + u32::from(lane_count) > u32::from(machine.accel_count())
        {
            return Err(SimError::BadConfig {
                reason: format!(
                    "scheduler lanes {base}..{} exceed the machine's {} accelerators",
                    u32::from(base) + u32::from(lane_count),
                    machine.accel_count()
                ),
            });
        }
        let lanes: Vec<u16> = (base..base + lane_count).collect();
        let t0 = machine.host_now();
        let mut dispatches: Vec<Dispatch<R>> = Vec::with_capacity(tiles as usize);
        let mut steals = 0u32;
        let mut steal_cycles = 0u64;

        // One launch, shared by every policy: run the tile (stolen
        // tiles pay the grab first) and note the run on the timeline.
        let mut launch = |machine: &mut Machine,
                          lane: u16,
                          tile: u32,
                          stolen_from: Option<u16>|
         -> Result<Dispatch<R>, SimError> {
            let handle = machine
                .offload(lane)
                .label(label)
                .cache(cache)
                .spawn(|ctx| {
                    if stolen_from.is_some() {
                        ctx.compute(steal_cost);
                    }
                    f(ctx, tile)
                })?;
            if let Some(victim) = stolen_from {
                machine.sched_note_steal(handle.start(), lane, victim, tile, steal_cost);
                steals += 1;
                steal_cycles += steal_cost;
            }
            machine.sched_note_run(handle.start(), lane, tile, handle.end(), stolen_from);
            Ok(Dispatch { tile, handle })
        };

        match policy {
            SchedPolicy::Static => {
                let queues = static_split(tiles, &lanes);
                for (i, queue) in queues.iter().enumerate() {
                    for &tile in queue {
                        machine.sched_note_enqueue(t0, lanes[i], tile);
                    }
                }
                // Position-major launch order: the first tile of each
                // lane, then the second of each, … With one tile per
                // lane this is exactly the hand-rolled E14 loop.
                let deepest = queues.iter().map(VecDeque::len).max().unwrap_or(0);
                for pos in 0..deepest {
                    for (i, queue) in queues.iter().enumerate() {
                        if let Some(&tile) = queue.get(pos) {
                            dispatches.push(launch(machine, lanes[i], tile, None)?);
                        }
                    }
                }
            }
            SchedPolicy::ShortestQueue => {
                for tile in 0..tiles {
                    let lane = *lanes
                        .iter()
                        .min_by_key(|&&l| machine.accel_free_at(l).expect("lane checked above"))
                        .expect("at least one lane");
                    machine.sched_note_enqueue(machine.host_now(), lane, tile);
                    dispatches.push(launch(machine, lane, tile, None)?);
                }
            }
            SchedPolicy::WorkStealing => {
                let mut queues = static_split(tiles, &lanes);
                for (i, queue) in queues.iter().enumerate() {
                    for &tile in queue {
                        machine.sched_note_enqueue(t0, lanes[i], tile);
                    }
                }
                let mut pending = tiles;
                while pending > 0 {
                    // Lanes in becomes-free order; the first that can
                    // act (own work, or a profitable steal) dispatches.
                    // The most-loaded lane can always pop its own
                    // front, so one pass always dispatches something.
                    let mut order: Vec<usize> = (0..lanes.len()).collect();
                    order.sort_by_key(|&i| {
                        machine.accel_free_at(lanes[i]).expect("lane checked above")
                    });
                    let next_floor = machine.host_now() + machine.cost().offload_launch;
                    let mut dispatched = false;
                    for &i in &order {
                        if let Some(tile) = queues[i].pop_front() {
                            dispatches.push(launch(machine, lanes[i], tile, None)?);
                            dispatched = true;
                            break;
                        }
                        // Own deque empty: steal the back tile of the
                        // most-loaded victim, but only if the thief —
                        // launch floor and steal cost included — starts
                        // it strictly before the victim is even free.
                        // That bound keeps every stolen tile's end at
                        // or before its static end.
                        let thief_free =
                            machine.accel_free_at(lanes[i]).expect("lane checked above");
                        let thief_eff = thief_free.max(next_floor);
                        let victim = order
                            .iter()
                            .rev()
                            .copied()
                            .find(|&j| j != i && !queues[j].is_empty());
                        if let Some(j) = victim {
                            let victim_free =
                                machine.accel_free_at(lanes[j]).expect("lane checked above");
                            if thief_eff + steal_cost < victim_free {
                                let tile = queues[j].pop_back().expect("checked non-empty");
                                dispatches.push(launch(machine, lanes[i], tile, Some(lanes[j]))?);
                                dispatched = true;
                                break;
                            }
                        }
                    }
                    debug_assert!(dispatched, "some lane always owns a runnable tile");
                    pending -= 1;
                }
            }
        }

        // Join in tile order for every policy: results are
        // policy-independent, and the host-clock accounting matches
        // the hand-rolled dispatch-then-join-in-order frame loop.
        dispatches.sort_by_key(|d| d.tile);
        let mut runs: Vec<(u16, u32, u64, u64)> = dispatches
            .iter()
            .map(|d| (d.handle.accel(), d.tile, d.handle.start(), d.handle.end()))
            .collect();
        let mut results = Vec::with_capacity(dispatches.len());
        let mut first_err: Option<SimError> = None;
        for d in dispatches {
            match machine.join(d.handle) {
                Ok(r) => results.push(r),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Reconstruct per-lane occupancy and note the idle gaps the
        // trace's scheduler lanes render (zero simulated cost).
        let finished_at = runs.iter().map(|&(_, _, _, end)| end).max().unwrap_or(t0);
        runs.sort_by_key(|&(accel, _, start, _)| (accel, start));
        let mut lane_reports = Vec::with_capacity(lanes.len());
        for &lane in &lanes {
            let mut cursor = t0;
            let mut busy = 0u64;
            let mut count = 0u32;
            for &(accel, _, start, end) in runs.iter().filter(|&&(a, ..)| a == lane) {
                debug_assert_eq!(accel, lane);
                if start > cursor {
                    machine.sched_note_idle(cursor, lane, start);
                }
                busy += end - start;
                count += 1;
                cursor = cursor.max(end);
            }
            if finished_at > cursor {
                machine.sched_note_idle(cursor, lane, finished_at);
            }
            lane_reports.push(LaneReport {
                accel: lane,
                tiles: count,
                busy,
                idle: finished_at.saturating_sub(t0).saturating_sub(busy),
            });
        }

        let report = SchedReport {
            policy,
            tiles,
            accels: lane_count,
            cycles: machine.host_now() - t0,
            finished_at,
            lanes: lane_reports,
            steals,
            steal_cycles,
        };
        Ok((results, report))
    }
}

/// Block split of `tiles` over the lanes: lane `a` of `A` owns tiles
/// `[T*a/A, T*(a+1)/A)`, front-to-back.
fn static_split(tiles: u32, lanes: &[u16]) -> Vec<VecDeque<u32>> {
    let a = lanes.len() as u32;
    (0..a)
        .map(|i| (tiles * i / a..tiles * (i + 1) / a).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::{EventKind, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::default()).unwrap()
    }

    fn run_policy(policy: SchedPolicy, costs: &[u64], accels: u16) -> (u64, SchedReport) {
        let mut m = machine();
        let t0 = m.host_now();
        let (_, report) = m
            .offload(0)
            .sched(policy)
            .accels(accels)
            .run_tiles(costs.len() as u32, |ctx, tile| {
                ctx.compute(costs[tile as usize]);
                Ok(())
            })
            .unwrap();
        (m.host_now() - t0, report)
    }

    #[test]
    fn static_one_tile_per_lane_is_bit_identical_to_hand_rolled_offloads() {
        let costs = [30_000u64, 42_000, 27_000, 35_000];
        let mut by_hand = machine();
        let mut handles = Vec::new();
        for (a, &c) in costs.iter().enumerate() {
            handles.push(
                by_hand
                    .offload(a as u16)
                    .spawn(move |ctx| ctx.compute(c))
                    .unwrap(),
            );
        }
        for h in handles {
            by_hand.join(h);
        }
        let (sched_cycles, report) = run_policy(SchedPolicy::Static, &costs, 4);
        assert_eq!(sched_cycles, by_hand.host_now());
        assert_eq!(report.cycles, sched_cycles);
        assert_eq!(report.steals, 0);
        assert_eq!(report.lanes.len(), 4);
        assert!(report.lanes.iter().all(|l| l.tiles == 1));
    }

    #[test]
    fn work_stealing_recovers_most_of_a_skewed_static_schedule() {
        // Two hot tiles land on lane 0 under the static split; lanes
        // 2 and 3 finish early and steal them.
        let costs = [
            120_000u64, 120_000, 8_000, 8_000, 8_000, 8_000, 8_000, 8_000,
        ];
        let (static_cycles, _) = run_policy(SchedPolicy::Static, &costs, 4);
        let (ws_cycles, report) = run_policy(SchedPolicy::WorkStealing, &costs, 4);
        assert!(report.steals > 0, "skew this strong must trigger steals");
        assert_eq!(
            report.steal_cycles,
            u64::from(report.steals) * DEFAULT_STEAL_COST
        );
        assert!(
            ws_cycles * 5 < static_cycles * 4,
            "stealing should recover >20%: {ws_cycles} vs {static_cycles}"
        );
    }

    #[test]
    fn work_stealing_matches_static_exactly_on_uniform_tiles() {
        let costs = [25_000u64; 6];
        let (static_cycles, _) = run_policy(SchedPolicy::Static, &costs, 6);
        let (ws_cycles, report) = run_policy(SchedPolicy::WorkStealing, &costs, 6);
        assert_eq!(ws_cycles, static_cycles, "no profitable steal exists");
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn shortest_queue_fills_the_least_loaded_lane() {
        // One long tile first: the greedy policy routes the rest away
        // from the busy lane, beating the block split.
        let costs = [200_000u64, 10_000, 10_000, 10_000, 10_000, 10_000];
        let (static_cycles, _) = run_policy(SchedPolicy::Static, &costs, 3);
        let (sq_cycles, report) = run_policy(SchedPolicy::ShortestQueue, &costs, 3);
        assert!(sq_cycles < static_cycles);
        assert_eq!(report.lanes.iter().map(|l| l.tiles).sum::<u32>(), 6);
    }

    #[test]
    fn results_are_indexed_by_tile_under_every_policy() {
        for policy in [
            SchedPolicy::Static,
            SchedPolicy::ShortestQueue,
            SchedPolicy::WorkStealing,
        ] {
            let mut m = machine();
            let (results, _) = m
                .offload(0)
                .sched(policy)
                .accels(3)
                .run_tiles(10, |ctx, tile| {
                    ctx.compute(u64::from(10 - tile) * 9_000);
                    Ok(tile * 7)
                })
                .unwrap();
            let expect: Vec<u32> = (0..10).map(|t| t * 7).collect();
            assert_eq!(results, expect, "{policy:?}");
        }
    }

    #[test]
    fn dispatch_records_sched_events_and_idle_gaps() {
        let mut m = machine();
        m.events_mut().set_enabled(true);
        let costs = [90_000u64, 9_000, 9_000, 9_000];
        let (_, report) = m
            .offload(0)
            .sched(SchedPolicy::Static)
            .accels(2)
            .run_tiles(4, |ctx, tile| {
                ctx.compute(costs[tile as usize]);
                Ok(())
            })
            .unwrap();
        let events = m.events().events();
        let enqueues = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SchedEnqueue { .. }))
            .count();
        let runs = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SchedRun { .. }))
            .count();
        let idles = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SchedIdle { .. }))
            .count();
        assert_eq!(enqueues, 4);
        assert_eq!(runs, 4);
        assert!(idles > 0, "lane 1 finishes early and must show an idle gap");
        // Lane 0 carries the hot tile; the report calls that out.
        assert!(report.imbalance() > 1.2, "imbalance {}", report.imbalance());
        let stats = m.stats();
        assert_eq!(stats.sched_tiles, 4);
        assert!(stats.sched_idle_cycles > 0);
    }

    #[test]
    fn stolen_tiles_pay_the_configured_cost_and_results_survive() {
        let costs = [150_000u64, 150_000, 5_000, 5_000, 5_000, 5_000];
        let mut m = machine();
        let (results, report) = m
            .offload(0)
            .sched(SchedPolicy::WorkStealing)
            .accels(3)
            .steal_cost(2_500)
            .run_tiles(6, |ctx, tile| {
                ctx.compute(costs[tile as usize]);
                Ok(tile)
            })
            .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        assert!(report.steals > 0);
        assert_eq!(report.steal_cycles, u64::from(report.steals) * 2_500);
        assert_eq!(m.stats().sched_steals, u64::from(report.steals));
    }

    #[test]
    fn lane_ranges_are_validated() {
        let mut m = machine();
        let err = m
            .offload(4)
            .sched(SchedPolicy::Static)
            .accels(5)
            .run_tiles(4, |_, _| Ok(()));
        assert!(err.is_err(), "4..9 exceeds a 6-accel machine");
        let ok = m
            .offload(4)
            .sched(SchedPolicy::Static)
            .run_tiles(4, |ctx, _| {
                ctx.compute(1_000);
                Ok(())
            });
        assert!(ok.is_ok(), "defaulting to the remaining lanes fits");
    }

    #[test]
    fn zero_tiles_is_a_no_op() {
        let mut m = machine();
        let before = m.host_now();
        let (results, report) = m
            .offload(0)
            .sched(SchedPolicy::WorkStealing)
            .run_tiles(0, |_, _| Ok(()))
            .unwrap();
        assert!(results.is_empty());
        assert_eq!(report.cycles, 0);
        assert_eq!(m.host_now(), before);
        assert_eq!(report.imbalance(), 1.0);
    }
}
