//! One element-access surface for every local mirror of remote data.
//!
//! The runtime grew two ways of staging main-memory elements into the
//! local store: the dense [`ArrayAccessor`](crate::ArrayAccessor)
//! (paper §4.2's bulk transfer) and the irregular
//! [`GatherView`] (a packed buffer filled by a coalesced
//! [`GatherPlan`](simcell::GatherPlan) batch). Both end the same way —
//! a local base address and an element count — so both expose element
//! access through the one [`RemoteSlice`] trait: kernels index either
//! shape with the same `get`/`to_vec` calls, and generic helpers take
//! `impl RemoteSlice<T>` instead of hard-coding the accessor.

use std::marker::PhantomData;

use memspace::{Addr, Pod};
use simcell::{AccelCtx, GatherPlan, SimError};

/// Indexed element access into a local-store mirror of remote data.
///
/// Implementors stage remote elements into a dense local buffer
/// (however they like — one bulk DMA, a coalesced gather batch, …);
/// the trait provides the uniform read surface on top: bounds-checked
/// addressing, per-element reads at local-store cost, and whole-view
/// materialisation.
pub trait RemoteSlice<T: Pod> {
    /// Local-store address of element 0.
    fn local_base(&self) -> Addr;

    /// Number of elements staged.
    fn len(&self) -> u32;

    /// Whether the view holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local-store address of element `index`.
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds for the view.
    fn element_addr(&self, index: u32) -> Result<Addr, SimError> {
        if index >= self.len() {
            return Err(SimError::Memory(memspace::MemError::OutOfBounds {
                space: self.local_base().space(),
                offset: index.saturating_mul(T::SIZE as u32),
                len: T::SIZE as u32,
                capacity: self.len().saturating_mul(T::SIZE as u32),
            }));
        }
        Ok(self.local_base().element(index, T::SIZE as u32)?)
    }

    /// Reads element `index` (a fast local access).
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds.
    fn get(&self, ctx: &mut AccelCtx<'_>, index: u32) -> Result<T, SimError> {
        ctx.local_read_pod(self.element_addr(index)?)
    }

    /// Reads the whole view as a `Vec` (local cost only).
    ///
    /// # Errors
    ///
    /// Fails on bounds violations.
    fn to_vec(&self, ctx: &mut AccelCtx<'_>) -> Result<Vec<T>, SimError> {
        ctx.local_read_slice(self.local_base(), self.len())
    }
}

/// A read-only local view over gathered elements: the packed buffer a
/// [`GatherPlan`](simcell::GatherPlan) batch fetched, exposed as a
/// dense array in index-list order.
///
/// Where [`ArrayAccessor`](crate::ArrayAccessor) mirrors a contiguous
/// remote range, a `GatherView` mirrors an arbitrary index list — the
/// frontier of a graph traversal, the survivors of a cull, any
/// irregular subset — at the cost of one coalesced descriptor batch
/// instead of N synchronous round trips.
///
/// # Example
///
/// ```
/// use offload_rt::prelude::*;
///
/// # fn main() -> Result<(), SimError> {
/// let mut machine = Machine::new(MachineConfig::small())?;
/// let remote = machine.alloc_main_slice::<u32>(64)?;
/// machine.main_mut().write_pod_slice(remote, &(0..64).collect::<Vec<u32>>())?;
/// let sum = machine.offload(0).run(|ctx| -> Result<u32, SimError> {
///     let view = GatherView::<u32>::fetch(ctx, remote, vec![5, 60, 7])?;
///     let mut sum = 0;
///     for i in 0..view.len() {
///         sum += view.get(ctx, i)?;
///     }
///     Ok(sum)
/// })??;
/// assert_eq!(sum, 5 + 60 + 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GatherView<T: Pod> {
    local: Addr,
    len: u32,
    _marker: PhantomData<T>,
}

impl<T: Pod> GatherView<T> {
    /// Gathers `indices` (element indices into the `T`-array at
    /// `base`) into a packed local buffer with one coalesced
    /// descriptor batch and one wait.
    ///
    /// # Errors
    ///
    /// As for [`AccelCtx::gather`] — local-store exhaustion, transfer
    /// faults (the whole batch rolls back), or an undeclared read
    /// under access modes.
    pub fn fetch(ctx: &mut AccelCtx<'_>, base: Addr, indices: Vec<u32>) -> Result<Self, SimError> {
        Self::from_plan(ctx, &GatherPlan::new(base, T::SIZE as u32, indices))
    }

    /// Executes a prebuilt plan (see [`AccelCtx::gather`]) and wraps
    /// the packed buffer. The plan's element size must be `T::SIZE`.
    ///
    /// # Errors
    ///
    /// As for [`GatherView::fetch`].
    pub fn from_plan(ctx: &mut AccelCtx<'_>, plan: &GatherPlan) -> Result<Self, SimError> {
        assert_eq!(
            plan.elem_size(),
            T::SIZE as u32,
            "gather plan element size must match the view's element type"
        );
        let local = ctx.gather(plan)?;
        Ok(GatherView {
            local,
            len: plan.len() as u32,
            _marker: PhantomData,
        })
    }

    /// Wraps the packed buffer of a *builder-declared* gather (the
    /// `index`-th `OffloadBuilder::gather` declaration, holding `len`
    /// elements) — see [`AccelCtx::gathered`].
    ///
    /// # Panics
    ///
    /// Panics when `index` names no declared gather.
    pub fn declared(ctx: &AccelCtx<'_>, index: usize, len: u32) -> Self {
        GatherView {
            local: ctx.gathered(index),
            len,
            _marker: PhantomData,
        }
    }
}

impl<T: Pod> RemoteSlice<T> for GatherView<T> {
    fn local_base(&self) -> Addr {
        self.local
    }

    fn len(&self) -> u32 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::{Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::small()).unwrap()
    }

    #[test]
    fn gather_view_reads_in_index_order() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u64>(32).unwrap();
        let values: Vec<u64> = (0..32).map(|i| i * 11).collect();
        m.main_mut().write_pod_slice(remote, &values).unwrap();
        let out = m
            .offload(0)
            .run(|ctx| -> Result<Vec<u64>, SimError> {
                let view = GatherView::<u64>::fetch(ctx, remote, vec![31, 0, 16])?;
                assert_eq!(view.len(), 3);
                assert!(!view.is_empty());
                view.to_vec(ctx)
            })
            .unwrap()
            .unwrap();
        assert_eq!(out, vec![341, 0, 176]);
    }

    #[test]
    fn gather_view_bounds_check_fails_like_the_accessor() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(8).unwrap();
        let result = m
            .offload(0)
            .run(|ctx| -> Result<u32, SimError> {
                let view = GatherView::<u32>::fetch(ctx, remote, vec![1, 2])?;
                view.get(ctx, 2)
            })
            .unwrap();
        assert!(matches!(result, Err(SimError::Memory(_))));
    }

    #[test]
    fn declared_view_wraps_builder_gathers() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(16).unwrap();
        let values: Vec<u32> = (100..116).collect();
        m.main_mut().write_pod_slice(remote, &values).unwrap();
        let got = m
            .offload(0)
            .gather(remote, 4, vec![3, 9])
            .run(|ctx| -> Result<Vec<u32>, SimError> {
                let view = GatherView::<u32>::declared(ctx, 0, 2);
                view.to_vec(ctx)
            })
            .unwrap()
            .unwrap();
        assert_eq!(got, vec![103, 109]);
    }

    #[test]
    fn one_trait_spans_accessor_and_gather_view() {
        // The unification the API redesign is for: a generic kernel
        // sums any RemoteSlice without knowing how it was staged.
        fn sum<T: Into<u64> + Pod, S: RemoteSlice<T>>(
            ctx: &mut AccelCtx<'_>,
            slice: &S,
        ) -> Result<u64, SimError> {
            let mut total = 0u64;
            for i in 0..slice.len() {
                total += slice.get(ctx, i)?.into();
            }
            Ok(total)
        }
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(16).unwrap();
        let values: Vec<u32> = (0..16).collect();
        m.main_mut().write_pod_slice(remote, &values).unwrap();
        let (dense, sparse) = m
            .offload(0)
            .run(|ctx| -> Result<(u64, u64), SimError> {
                let array = crate::ArrayAccessor::<u32>::fetch(ctx, remote, 16)?;
                let view = GatherView::<u32>::fetch(ctx, remote, vec![15, 1])?;
                Ok((sum(ctx, &array)?, sum(ctx, &view)?))
            })
            .unwrap()
            .unwrap();
        assert_eq!(dense, (0..16).sum::<u32>() as u64);
        assert_eq!(sparse, 16);
    }
}
