//! The offloadable AI strategy task (paper §4.1, Figure 2).
//!
//! "It took 1 developer 2 months to offload the very complex existing
//! AI code of a AAA game to SPU, with ~200 lines of additional code
//! resulting in a ~50% performance increase." This module is that task
//! at reproduction scale: a per-entity strategy computation (scan
//! candidate targets, pick one, choose a state, steer) that exists in a
//! host form ([`ai_frame_host`]) and an offloaded form
//! ([`ai_frame_offloaded`]) whose *additions* are exactly the
//! memory-space plumbing — accessors in, bulk write-back out — the
//! paper describes.
//!
//! The decision function only reads candidates' positions and health
//! and only writes the deciding entity's velocity/state/target, so the
//! sequential host order and the snapshot-based offloaded order compute
//! identical results (asserted in tests).

use memspace::Addr;
use offload_rt::sched::{SchedExt, SchedPolicy, SchedReport};
use offload_rt::{ArrayAccessor, RemoteSlice};
use simcell::{AccelCtx, FaultPlan, Machine, SimError};

use crate::entity::{state, EntityArray, GameEntity};
use crate::math::Vec3;

/// Tuning knobs of the AI task.
#[derive(Clone, Copy, Debug)]
pub struct AiConfig {
    /// Candidate targets considered per entity.
    pub candidates: u32,
    /// Cycles of pure "thinking" per entity (behaviour-tree traversal,
    /// scoring, etc.).
    pub think_compute: u64,
    /// Cycles per candidate evaluated (distance math + compare).
    pub per_candidate_compute: u64,
}

impl Default for AiConfig {
    fn default() -> AiConfig {
        AiConfig {
            candidates: 8,
            think_compute: 150,
            per_candidate_compute: 12,
        }
    }
}

/// Squared distance below which an entity attacks.
const ATTACK_RANGE_SQ: f32 = 25.0;
/// Health below which an entity flees.
const FLEE_HEALTH: f32 = 25.0;

/// The pure strategy decision for one entity.
///
/// `candidates` holds `(index, position, health)` of each considered
/// target. Mutates only `vel`, `state` and `target` of `me`.
pub fn decide(me: &mut GameEntity, my_index: u32, candidates: &[(u32, Vec3, f32)]) {
    let mut best: Option<(u32, f32, Vec3)> = None;
    for &(idx, pos, health) in candidates {
        if idx == my_index || health <= 0.0 {
            continue;
        }
        let d = me.pos.distance_sq(pos);
        if best.is_none_or(|(_, bd, _)| d < bd) {
            best = Some((idx, d, pos));
        }
    }
    match best {
        None => {
            me.state = state::IDLE;
            me.vel = Vec3::ZERO;
        }
        Some((idx, dist_sq, pos)) => {
            me.target = idx;
            let toward = pos.sub(me.pos).normalized();
            if me.health < FLEE_HEALTH {
                me.state = state::FLEE;
                me.vel = toward.scale(-3.0);
            } else if dist_sq < ATTACK_RANGE_SQ {
                me.state = state::ATTACK;
                me.vel = toward.scale(2.0);
            } else {
                me.state = state::SEEK;
                me.vel = toward.scale(1.5);
            }
        }
    }
}

/// Runs one AI frame on the host.
///
/// Per entity: load it, load its candidate indices from the candidate
/// table, load each candidate, decide, store — every access through the
/// host's charged memory path.
///
/// # Errors
///
/// Fails on bounds violations.
pub fn ai_frame_host(
    machine: &mut Machine,
    entities: &EntityArray,
    candidate_table: Addr,
    config: &AiConfig,
) -> Result<(), SimError> {
    let n = entities.len();
    let k = config.candidates;
    for i in 0..n {
        let mut me = entities.host_load(machine, i)?;
        let idx_addr = candidate_table.element(i * k, 4)?;
        let indices = machine.host_read_slice::<u32>(idx_addr, k)?;
        let mut candidates = Vec::with_capacity(k as usize);
        for idx in indices {
            let c = entities.host_load(machine, idx)?;
            machine.host_compute(config.per_candidate_compute);
            candidates.push((idx, c.pos, c.health));
        }
        decide(&mut me, i, &candidates);
        machine.host_compute(config.think_compute);
        entities.host_store(machine, i, &me)?;
    }
    Ok(())
}

/// Runs one AI frame on an accelerator.
///
/// The "≈200 additional lines" of the paper's port are exactly what this
/// function adds over [`ai_frame_host`]: a bulk [`ArrayAccessor`] fetch
/// of the entity array and the candidate table into local store, local
/// accesses in the loop, and one bulk write-back. The decision logic is
/// shared, unmodified.
///
/// # Errors
///
/// Fails if the working set does not fit the local store (use more,
/// smaller offloads at larger entity counts), or on transfer failures.
pub fn ai_frame_offloaded(
    ctx: &mut AccelCtx<'_>,
    entities: &EntityArray,
    candidate_table: Addr,
    config: &AiConfig,
) -> Result<(), SimError> {
    let n = entities.len();
    let k = config.candidates;
    let mut local = ArrayAccessor::<GameEntity>::fetch(ctx, entities.base(), n)?;
    let table = ArrayAccessor::<u32>::fetch(ctx, candidate_table, n * k)?;
    for i in 0..n {
        let mut me = local.get(ctx, i)?;
        let mut candidates = Vec::with_capacity(k as usize);
        for j in 0..k {
            let idx = table.get(ctx, i * k + j)?;
            let c = local.get(ctx, idx)?;
            ctx.compute(config.per_candidate_compute);
            candidates.push((idx, c.pos, c.health));
        }
        decide(&mut me, i, &candidates);
        ctx.compute(config.think_compute);
        local.set(ctx, i, &me)?;
    }
    local.write_back(ctx)
}

/// Runs one AI frame tiled across `accels` accelerators.
///
/// Each accelerator bulk-fetches the (read-only) entity array plus its
/// slice of the candidate table, decides for its own slice of entities,
/// and writes back *only that slice* — the data-parallel decomposition
/// game teams use once one SPE is not enough. All offloads are launched
/// before any is joined, so they overlap; the host time from first
/// launch to last join is returned.
///
/// Results are bit-identical to [`ai_frame_offloaded`]: decisions read
/// only position/health (which the AI never writes), so tile order
/// cannot matter.
///
/// This is [`ai_frame_sched`] under [`SchedPolicy::Static`] with one
/// tile per accelerator — the cycle accounting is bit-identical to the
/// hand-rolled launch-all-then-join-all loop it replaced.
///
/// # Errors
///
/// Fails if `accels` is zero or exceeds the machine, or if a tile does
/// not fit the local store.
pub fn ai_frame_offloaded_tiled(
    machine: &mut Machine,
    entities: &EntityArray,
    candidate_table: Addr,
    config: &AiConfig,
    accels: u16,
) -> Result<u64, SimError> {
    let report = ai_frame_sched(
        machine,
        entities,
        candidate_table,
        config,
        accels,
        u32::from(accels),
        SchedPolicy::Static,
        &[],
    )?;
    Ok(report.cycles)
}

/// Runs one AI frame as `tiles` tiles dispatched by a scheduler
/// policy over the first `accels` accelerators.
///
/// Each tile bulk-fetches the (read-only) entity array plus its slice
/// of the candidate table, decides for its own slice of entities, and
/// writes back only that slice; `extra` optionally charges tile `t` an
/// additional `extra[t]` cycles of synthetic work *before* its real
/// work (the E15 skewed-cost experiment uses this to model the hot
/// tiles — pathfinding-heavy regions, crowded cells — a real frame
/// contains). With `tiles == accels`, [`SchedPolicy::Static`] and no
/// extras this is exactly [`ai_frame_offloaded_tiled`].
///
/// World results are policy-independent: decisions read only
/// position/health (which the AI never writes), so tile placement
/// cannot matter — only the cycle accounting moves.
///
/// # Errors
///
/// Fails if `accels` is zero or exceeds the machine, or if a tile does
/// not fit the local store.
#[allow(clippy::too_many_arguments)] // an experiment entry point: all knobs are the point
pub fn ai_frame_sched(
    machine: &mut Machine,
    entities: &EntityArray,
    candidate_table: Addr,
    config: &AiConfig,
    accels: u16,
    tiles: u32,
    policy: SchedPolicy,
    extra: &[u64],
) -> Result<SchedReport, SimError> {
    if accels == 0 || accels > machine.accel_count() {
        return Err(SimError::BadConfig {
            reason: format!(
                "tiling needs 1..={} accelerators, got {accels}",
                machine.accel_count()
            ),
        });
    }
    let n = entities.len();
    let k = config.candidates;
    let (_, report) = machine
        .offload(0)
        .label("ai tile")
        .sched(policy)
        .accels(accels)
        .run_tiles(tiles, |ctx, tile| -> Result<(), SimError> {
            if let Some(&cost) = extra.get(tile as usize) {
                ctx.compute(cost);
            }
            let begin = n * tile / tiles;
            let end = n * (tile + 1) / tiles;
            let all = ArrayAccessor::<GameEntity>::fetch(ctx, entities.base(), n)?;
            let count = end - begin;
            if count == 0 {
                return Ok(());
            }
            let table_slice = ArrayAccessor::<u32>::fetch(
                ctx,
                candidate_table.element(begin * k, 4)?,
                count * k,
            )?;
            let mut out =
                ArrayAccessor::<GameEntity>::for_output(ctx, entities.addr_of(begin)?, count)?;
            for i in 0..count {
                let mut me = all.get(ctx, begin + i)?;
                let mut candidates = Vec::with_capacity(k as usize);
                for j in 0..k {
                    let idx = table_slice.get(ctx, i * k + j)?;
                    let c = all.get(ctx, idx)?;
                    ctx.compute(config.per_candidate_compute);
                    candidates.push((idx, c.pos, c.health));
                }
                decide(&mut me, begin + i, &candidates);
                ctx.compute(config.think_compute);
                out.set(ctx, i, &me)?;
            }
            out.write_back(ctx)
        })?;
    Ok(report)
}

/// Runs one AI frame as scheduled tiles under an armed fault plan —
/// the E16 workload: [`ai_frame_sched`]'s tile body behind the
/// recovery layer (`retries`/`backoff` per transient fault, dead-lane
/// eviction, host fallback for whatever is left).
///
/// World results still match the fault-free frame bit-for-bit: every
/// retried tile restarts from a clean local-store mark and re-fetches
/// its inputs, and host-fallback tiles run the same body with faults
/// suppressed.
///
/// # Errors
///
/// As for [`ai_frame_sched`]; with the host fallback armed, injected
/// faults never surface as errors.
#[allow(clippy::too_many_arguments)] // an experiment entry point: all knobs are the point
pub fn ai_frame_sched_recovering(
    machine: &mut Machine,
    entities: &EntityArray,
    candidate_table: Addr,
    config: &AiConfig,
    accels: u16,
    tiles: u32,
    policy: SchedPolicy,
    plan: FaultPlan,
    retries: u32,
    backoff: u64,
) -> Result<SchedReport, SimError> {
    if accels == 0 || accels > machine.accel_count() {
        return Err(SimError::BadConfig {
            reason: format!(
                "tiling needs 1..={} accelerators, got {accels}",
                machine.accel_count()
            ),
        });
    }
    let n = entities.len();
    let k = config.candidates;
    let (_, report) = machine
        .offload(0)
        .label("ai tile")
        .faults(plan)
        .sched(policy)
        .accels(accels)
        .retry(retries)
        .backoff(backoff)
        .fallback_host()
        .run_tiles(tiles, |ctx, tile| -> Result<(), SimError> {
            let begin = n * tile / tiles;
            let end = n * (tile + 1) / tiles;
            let all = ArrayAccessor::<GameEntity>::fetch(ctx, entities.base(), n)?;
            let count = end - begin;
            if count == 0 {
                return Ok(());
            }
            let table_slice = ArrayAccessor::<u32>::fetch(
                ctx,
                candidate_table.element(begin * k, 4)?,
                count * k,
            )?;
            let mut out =
                ArrayAccessor::<GameEntity>::for_output(ctx, entities.addr_of(begin)?, count)?;
            for i in 0..count {
                let mut me = all.get(ctx, begin + i)?;
                let mut candidates = Vec::with_capacity(k as usize);
                for j in 0..k {
                    let idx = table_slice.get(ctx, i * k + j)?;
                    let c = all.get(ctx, idx)?;
                    ctx.compute(config.per_candidate_compute);
                    candidates.push((idx, c.pos, c.health));
                }
                decide(&mut me, begin + i, &candidates);
                ctx.compute(config.think_compute);
                out.set(ctx, i, &me)?;
            }
            out.write_back(ctx)
        })?;
    Ok(report)
}

/// Runs one AI frame as recovering scheduled tiles in *double-buffered*
/// form — the access-mode showcase of E16.
///
/// The frame reads `entities_in` and the candidate table, and writes
/// every decision into the separate `out` array (frame N reads, frame
/// N+1 receives — the double-buffered component-array idiom). Each tile
/// also runs a defensive sanitize pass over its candidate-table slice
/// (clamping indices in place) and conservatively flushes the slice at
/// the end, because generic engine code cannot know the pass was a
/// no-op.
///
/// With `declare_modes` the offload declares what it actually does —
/// `entities_in` and the table are `read`, `out` is `write` — and every
/// layer spends the declaration:
///
/// - the conservative table flush is **elided** (the slice is
///   byte-identical to main memory, so the put never issues);
/// - the put journal **skips** pre-image snapshots for `out` (a
///   `write` range is fully rewritten by any retry, so rollback is
///   unnecessary by declaration);
/// - a store outside the declared ranges would be rejected as
///   [`SimError::UndeclaredWrite`] before a byte moved.
///
/// Without it, the same body pays the legacy price: the flush is a real
/// DMA put and every put under a noisy plan journals its pre-image.
/// Both runs produce bit-identical worlds at every fault rate; the
/// declarations change only what the machine has to do to guarantee it.
///
/// # Errors
///
/// As for [`ai_frame_sched_recovering`]; additionally fails if `out`
/// is smaller than `entities_in`.
#[allow(clippy::too_many_arguments)] // an experiment entry point: all knobs are the point
pub fn ai_frame_sched_recovering_buffered(
    machine: &mut Machine,
    entities_in: &EntityArray,
    out: &EntityArray,
    candidate_table: Addr,
    config: &AiConfig,
    accels: u16,
    tiles: u32,
    policy: SchedPolicy,
    plan: FaultPlan,
    retries: u32,
    backoff: u64,
    declare_modes: bool,
) -> Result<SchedReport, SimError> {
    if accels == 0 || accels > machine.accel_count() {
        return Err(SimError::BadConfig {
            reason: format!(
                "tiling needs 1..={} accelerators, got {accels}",
                machine.accel_count()
            ),
        });
    }
    if out.len() < entities_in.len() {
        return Err(SimError::BadConfig {
            reason: format!(
                "output array holds {} entities, input has {}",
                out.len(),
                entities_in.len()
            ),
        });
    }
    let n = entities_in.len();
    let k = config.candidates;
    let mut sched = machine
        .offload(0)
        .label("ai tile")
        .faults(plan)
        .sched(policy)
        .accels(accels)
        .retry(retries)
        .backoff(backoff)
        .fallback_host();
    if declare_modes {
        sched = sched
            .reads(entities_in.base(), n * GameEntity::STRIDE)
            .reads(candidate_table, n * k * 4)
            .writes(out.base(), n * GameEntity::STRIDE);
    }
    let (_, report) = sched.run_tiles(tiles, |ctx, tile| -> Result<(), SimError> {
        let begin = n * tile / tiles;
        let end = n * (tile + 1) / tiles;
        let all = ArrayAccessor::<GameEntity>::fetch(ctx, entities_in.base(), n)?;
        let count = end - begin;
        if count == 0 {
            return Ok(());
        }
        let mut table_slice =
            ArrayAccessor::<u32>::fetch(ctx, candidate_table.element(begin * k, 4)?, count * k)?;
        // Defensive sanitize pass: clamp every candidate index into
        // range. On a valid table this rewrites each slot with the
        // value it already holds — the buffer ends dirty but unchanged.
        for j in 0..count * k {
            let idx = table_slice.get(ctx, j)?;
            table_slice.set(ctx, j, &idx.min(n - 1))?;
        }
        let mut decisions =
            ArrayAccessor::<GameEntity>::for_output(ctx, out.addr_of(begin)?, count)?;
        for i in 0..count {
            let mut me = all.get(ctx, begin + i)?;
            let mut candidates = Vec::with_capacity(k as usize);
            for j in 0..k {
                let idx = table_slice.get(ctx, i * k + j)?;
                let c = all.get(ctx, idx)?;
                ctx.compute(config.per_candidate_compute);
                candidates.push((idx, c.pos, c.health));
            }
            decide(&mut me, begin + i, &candidates);
            ctx.compute(config.think_compute);
            decisions.set(ctx, i, &me)?;
        }
        // Conservative flush: without declarations this is a real put;
        // with `reads(table)` it is elided (and a table that actually
        // changed would be an undeclared write).
        table_slice.write_back(ctx)?;
        decisions.write_back(ctx)
    })?;
    Ok(report)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // building test fixtures field-by-field reads best
mod tests {
    use super::*;
    use crate::workload::WorldGen;
    use simcell::{Machine, MachineConfig};

    fn setup(n: u32, seed: u64) -> (Machine, EntityArray, Addr) {
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let entities = EntityArray::alloc(&mut machine, n).unwrap();
        let mut gen = WorldGen::new(seed);
        gen.populate(&mut machine, &entities, 80.0).unwrap();
        let table = gen
            .candidate_table(&mut machine, n, AiConfig::default().candidates)
            .unwrap();
        (machine, entities, table)
    }

    #[test]
    fn decide_picks_the_nearest_living_candidate() {
        let mut me = GameEntity::default();
        me.pos = Vec3::ZERO;
        me.health = 100.0;
        let candidates = vec![
            (1, Vec3::new(10.0, 0.0, 0.0), 50.0),
            (2, Vec3::new(3.0, 0.0, 0.0), 50.0),
            (3, Vec3::new(1.0, 0.0, 0.0), 0.0), // dead, skipped
        ];
        decide(&mut me, 0, &candidates);
        assert_eq!(me.target, 2);
        assert_eq!(me.state, state::ATTACK, "3 < attack range 5");
        assert!(me.vel.x > 0.0, "moving toward the target");
    }

    #[test]
    fn decide_seeks_when_far_and_flees_when_hurt() {
        let mut me = GameEntity::default();
        me.health = 100.0;
        let far = vec![(1, Vec3::new(50.0, 0.0, 0.0), 50.0)];
        decide(&mut me, 0, &far);
        assert_eq!(me.state, state::SEEK);

        me.health = 10.0;
        decide(&mut me, 0, &far);
        assert_eq!(me.state, state::FLEE);
        assert!(me.vel.x < 0.0, "fleeing away");
    }

    #[test]
    fn decide_idles_without_candidates() {
        let mut me = GameEntity::default();
        me.state = state::SEEK;
        decide(&mut me, 0, &[(0, Vec3::ZERO, 100.0)]); // only itself
        assert_eq!(me.state, state::IDLE);
        assert_eq!(me.vel, Vec3::ZERO);
    }

    #[test]
    fn host_and_offloaded_compute_identical_frames() {
        let config = AiConfig::default();
        let (mut m1, e1, t1) = setup(256, 11);
        ai_frame_host(&mut m1, &e1, t1, &config).unwrap();
        let host_result = e1.snapshot(&m1).unwrap();

        let (mut m2, e2, t2) = setup(256, 11);
        m2.offload(0)
            .run(|ctx| ai_frame_offloaded(ctx, &e2, t2, &config))
            .unwrap()
            .unwrap();
        let offl_result = e2.snapshot(&m2).unwrap();
        assert_eq!(host_result, offl_result);
        assert_eq!(m2.races_detected(), 0);
    }

    #[test]
    fn offloaded_ai_is_faster_by_roughly_the_papers_factor() {
        // The paper reports ~50% performance increase (~1.5x).
        let config = AiConfig::default();
        let (mut m1, e1, t1) = setup(1024, 11);
        let t0 = m1.host_now();
        ai_frame_host(&mut m1, &e1, t1, &config).unwrap();
        let host_cycles = m1.host_now() - t0;

        let (mut m2, e2, t2) = setup(1024, 11);
        let handle = m2
            .offload(0)
            .spawn(|ctx| ai_frame_offloaded(ctx, &e2, t2, &config))
            .unwrap();
        let offl_cycles = handle.elapsed();
        m2.join(handle).unwrap();

        let speedup = host_cycles as f64 / offl_cycles as f64;
        assert!(
            speedup > 1.2 && speedup < 4.0,
            "expected a moderate (paper: ~1.5x) speedup, got {speedup:.2}x \
             ({host_cycles} vs {offl_cycles})"
        );
    }

    #[test]
    fn tiled_ai_matches_single_accelerator_results() {
        let config = AiConfig::default();
        let build = |n: u32| {
            let mut machine = Machine::new(MachineConfig::default()).unwrap();
            let entities = EntityArray::alloc(&mut machine, n).unwrap();
            let mut gen = WorldGen::new(31);
            gen.populate(&mut machine, &entities, 70.0).unwrap();
            let table = gen
                .candidate_table(&mut machine, n, config.candidates)
                .unwrap();
            (machine, entities, table)
        };

        let (mut m1, e1, t1) = build(512);
        m1.offload(0)
            .run(|ctx| ai_frame_offloaded(ctx, &e1, t1, &config))
            .unwrap()
            .unwrap();
        let reference = e1.snapshot(&m1).unwrap();

        for accels in [1u16, 2, 3, 6] {
            let (mut m, e, t) = build(512);
            ai_frame_offloaded_tiled(&mut m, &e, t, &config, accels).unwrap();
            assert_eq!(
                e.snapshot(&m).unwrap(),
                reference,
                "{accels} tiles diverged"
            );
            assert_eq!(m.races_detected(), 0);
        }
    }

    #[test]
    fn tiling_scales_across_accelerators() {
        let config = AiConfig::default();
        let run = |accels: u16| {
            let mut machine = Machine::new(MachineConfig::default()).unwrap();
            let entities = EntityArray::alloc(&mut machine, 1024).unwrap();
            let mut gen = WorldGen::new(32);
            gen.populate(&mut machine, &entities, 70.0).unwrap();
            let table = gen
                .candidate_table(&mut machine, 1024, config.candidates)
                .unwrap();
            ai_frame_offloaded_tiled(&mut machine, &entities, table, &config, accels).unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four * 2 < one,
            "4 accelerators should be >2x faster: {four} vs {one}"
        );
    }

    #[test]
    fn tiling_validates_the_accelerator_count() {
        let config = AiConfig::default();
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let entities = EntityArray::alloc(&mut machine, 16).unwrap();
        let table = WorldGen::new(1)
            .candidate_table(&mut machine, 16, config.candidates)
            .unwrap();
        assert!(ai_frame_offloaded_tiled(&mut machine, &entities, table, &config, 0).is_err());
        assert!(ai_frame_offloaded_tiled(&mut machine, &entities, table, &config, 9).is_err());
    }

    #[test]
    fn recovered_frame_matches_the_faultless_world_bit_for_bit() {
        let config = AiConfig::default();
        let build = |n: u32| {
            let mut machine = Machine::new(MachineConfig::default()).unwrap();
            let entities = EntityArray::alloc(&mut machine, n).unwrap();
            let mut gen = WorldGen::new(47);
            gen.populate(&mut machine, &entities, 70.0).unwrap();
            let table = gen
                .candidate_table(&mut machine, n, config.candidates)
                .unwrap();
            (machine, entities, table)
        };

        let (mut m1, e1, t1) = build(256);
        ai_frame_sched(
            &mut m1,
            &e1,
            t1,
            &config,
            4,
            8,
            SchedPolicy::WorkStealing,
            &[],
        )
        .unwrap();
        let reference = e1.snapshot(&m1).unwrap();

        let (mut m2, e2, t2) = build(256);
        let plan = FaultPlan::new(0xe16)
            .with_dma_corrupt(0.02)
            .with_tag_timeout(0.02)
            .with_accel_death(0.02);
        let report = ai_frame_sched_recovering(
            &mut m2,
            &e2,
            t2,
            &config,
            4,
            8,
            SchedPolicy::WorkStealing,
            plan,
            3,
            1_000,
        )
        .unwrap();
        assert!(
            report.faults > 0,
            "this seed must inject something for the test to mean anything"
        );
        assert_eq!(
            e2.snapshot(&m2).unwrap(),
            reference,
            "recovery must reproduce the faultless world exactly"
        );
        assert_eq!(m2.races_detected(), 0);
    }

    #[test]
    fn buffered_mode_run_matches_undeclared_and_saves_work() {
        let config = AiConfig::default();
        let build = |n: u32| {
            let mut machine = Machine::new(MachineConfig::default()).unwrap();
            let entities = EntityArray::alloc(&mut machine, n).unwrap();
            let out = EntityArray::alloc(&mut machine, n).unwrap();
            let mut gen = WorldGen::new(47);
            gen.populate(&mut machine, &entities, 70.0).unwrap();
            let table = gen
                .candidate_table(&mut machine, n, config.candidates)
                .unwrap();
            (machine, entities, out, table)
        };
        let plan = FaultPlan::uniform(0xe16, 0.05);
        let run = |declare: bool| {
            let (mut m, e, out, t) = build(256);
            let report = ai_frame_sched_recovering_buffered(
                &mut m,
                &e,
                &out,
                t,
                &config,
                4,
                8,
                SchedPolicy::WorkStealing,
                plan,
                3,
                1_000,
                declare,
            )
            .unwrap();
            let world = out.snapshot(&m).unwrap();
            let stats = *m.stats();
            assert_eq!(m.races_detected(), 0, "declare={declare}");
            (report, world, stats)
        };
        let (undeclared, world_u, stats_u) = run(false);
        let (declared, world_d, stats_d) = run(true);
        assert_eq!(world_u, world_d, "modes must not change the world");
        assert!(
            stats_d.dma_writebacks_elided > 0,
            "the conservative table flush must be elided under `reads`"
        );
        assert_eq!(
            stats_u.dma_writebacks_elided, 0,
            "the undeclared run has no licence to elide"
        );
        assert!(
            stats_d.journal_bytes < stats_u.journal_bytes,
            "`write`-declared output must skip journal snapshots: {} vs {}",
            stats_d.journal_bytes,
            stats_u.journal_bytes
        );
        assert!(stats_d.journal_bytes_skipped > 0);
        assert!(
            declared.cycles < undeclared.cycles,
            "eliding the flush puts must make the frame cheaper: {} vs {}",
            declared.cycles,
            undeclared.cycles
        );
    }

    #[test]
    fn ai_only_touches_ai_fields() {
        let config = AiConfig::default();
        let (mut m, e, t) = setup(64, 5);
        let before = e.snapshot(&m).unwrap();
        ai_frame_host(&mut m, &e, t, &config).unwrap();
        let after = e.snapshot(&m).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.pos, a.pos);
            assert_eq!(b.health, a.health);
            assert_eq!(b.radius, a.radius);
            assert_eq!(b.class, a.class);
        }
    }
}
