//! Seeded entity-interaction graph: the irregular-access workload.
//!
//! Game worlds carry graph-shaped state — who aggroed whom, which
//! entities share a squad, which islands of the level connect — and
//! traversing it is the opposite of the streaming loops the rest of
//! `gamekit` models: the frontier of a BFS names an unpredictable,
//! data-dependent set of main-memory locations. On an explicit-transfer
//! machine (paper Sec. 3.2) that pattern is where per-element remote
//! reads hurt most, and where the coalesced
//! [`gather`](simcell::AccelCtx::gather) batch earns its keep.
//!
//! The module provides:
//!
//! - [`InteractionGraph`]: a deterministic CSR adjacency (row offsets +
//!   column indices, both `u32` arrays in main memory) generated from a
//!   seed, mixing short "squad" edges with long-range "aggro" edges so
//!   neighbour lists are genuinely irregular.
//! - Host references [`InteractionGraph::host_bfs`] /
//!   [`InteractionGraph::host_components`] — the oracle every
//!   accelerator variant must reproduce bit-identically.
//! - Offloaded [`run_bfs`] / [`run_components`] parameterised by
//!   [`GraphAccess`]: naive per-edge outer reads, autotuned
//!   software-cache reads, or batched frontier gathers. All three write
//!   the same bytes; only the cycle bill differs (experiment E18).

use memspace::Addr;
use offload_rt::{ArrayAccessor, GatherView, RemoteSlice};
use simcell::{AccelCtx, Machine, SimError};
use softcache::CacheChoice;
use xrng::Rng;

/// Cycles charged per frontier node, identical across access variants
/// so E18's columns differ only by how the adjacency bytes move.
pub const NODE_COST: u64 = 4;

/// Cycles charged per traversed edge, identical across access variants.
pub const EDGE_COST: u64 = 2;

/// The sentinel "not yet visited" label in BFS levels and component
/// arrays.
pub const UNVISITED: u32 = u32::MAX;

/// A seeded entity-interaction graph in CSR form, resident in main
/// memory.
///
/// `row_offsets` holds `nodes + 1` monotonically non-decreasing `u32`
/// offsets; `col_indices` holds `edges` neighbour indices. Edges are
/// symmetric (if `a` interacts with `b`, `b` interacts with `a`), so
/// BFS levels and connected components are well defined.
///
/// # Example
///
/// ```
/// use gamekit::graph::{run_bfs, GraphAccess, InteractionGraph};
/// use simcell::{Machine, MachineConfig};
///
/// # fn main() -> Result<(), simcell::SimError> {
/// let mut machine = Machine::new(MachineConfig::small())?;
/// let graph = InteractionGraph::generate(&mut machine, 64, 4, 7)?;
/// let out = machine.alloc_main_slice::<u32>(graph.nodes())?;
/// run_bfs(&mut machine, &graph, 0, out, &GraphAccess::Gather)?;
/// assert_eq!(machine.host_read_pod::<u32>(out)?, 0); // source is level 0
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InteractionGraph {
    nodes: u32,
    edges: u32,
    row_offsets: Addr,
    col_indices: Addr,
}

impl InteractionGraph {
    /// Generates a graph with `nodes` entities and roughly
    /// `avg_degree` interactions each, writes its CSR arrays into main
    /// memory, and returns the handle.
    ///
    /// Half of each node's edge budget goes to near neighbours (squad
    /// cohesion, index-adjacent), half to uniformly random far nodes
    /// (aggro / cross-map interactions); every edge is mirrored so the
    /// adjacency is symmetric. All randomness flows from `seed`.
    ///
    /// # Errors
    ///
    /// Fails when main memory cannot hold the CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    pub fn generate(
        machine: &mut Machine,
        nodes: u32,
        avg_degree: u32,
        seed: u64,
    ) -> Result<InteractionGraph, SimError> {
        assert!(nodes > 0, "an interaction graph needs at least one node");
        let mut rng = Rng::new(seed);
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); nodes as usize];
        for v in 0..nodes {
            let budget = rng.range_u32(avg_degree / 2, avg_degree + 1);
            for slot in 0..budget {
                let u = if slot % 2 == 0 {
                    // Squad edge: a near neighbour by index.
                    let hop = 1 + rng.below_u32(4);
                    (v + hop) % nodes
                } else {
                    // Aggro edge: anywhere on the map.
                    rng.below_u32(nodes)
                };
                if u == v {
                    continue;
                }
                adjacency[v as usize].push(u);
                adjacency[u as usize].push(v);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }

        let mut rows: Vec<u32> = Vec::with_capacity(nodes as usize + 1);
        let mut cols: Vec<u32> = Vec::new();
        rows.push(0);
        for list in &adjacency {
            cols.extend_from_slice(list);
            cols_len_guard(cols.len());
            rows.push(cols.len() as u32);
        }
        let edges = cols.len() as u32;

        let row_offsets = machine.alloc_main_slice::<u32>(nodes + 1)?;
        machine.main_mut().write_pod_slice(row_offsets, &rows)?;
        // An isolated graph (no edges at all) still needs a valid
        // address; allocate at least one element.
        let col_indices = machine.alloc_main_slice::<u32>(edges.max(1))?;
        if edges > 0 {
            machine.main_mut().write_pod_slice(col_indices, &cols)?;
        }
        Ok(InteractionGraph {
            nodes,
            edges,
            row_offsets,
            col_indices,
        })
    }

    /// Number of entities (nodes).
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of directed CSR entries (twice the interaction count).
    pub fn edges(&self) -> u32 {
        self.edges
    }

    /// Main-memory address of the `nodes + 1` row-offset `u32`s.
    pub fn row_offsets(&self) -> Addr {
        self.row_offsets
    }

    /// Main-memory address of the `edges` column-index `u32`s.
    pub fn col_indices(&self) -> Addr {
        self.col_indices
    }

    fn host_csr(&self, machine: &mut Machine) -> Result<(Vec<u32>, Vec<u32>), SimError> {
        let rows = machine.host_read_slice::<u32>(self.row_offsets, self.nodes + 1)?;
        let cols = if self.edges == 0 {
            Vec::new()
        } else {
            machine.host_read_slice::<u32>(self.col_indices, self.edges)?
        };
        Ok((rows, cols))
    }

    /// Host-side reference BFS from `src`: per-node level, or
    /// [`UNVISITED`] for unreachable nodes.
    ///
    /// # Errors
    ///
    /// Fails on bounds violations reading the CSR arrays.
    pub fn host_bfs(&self, machine: &mut Machine, src: u32) -> Result<Vec<u32>, SimError> {
        let (rows, cols) = self.host_csr(machine)?;
        let mut levels = vec![UNVISITED; self.nodes as usize];
        levels[src as usize] = 0;
        let mut frontier = vec![src];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for j in rows[v as usize]..rows[v as usize + 1] {
                    let u = cols[j as usize];
                    if levels[u as usize] == UNVISITED {
                        levels[u as usize] = depth + 1;
                        next.push(u);
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        Ok(levels)
    }

    /// Host-side reference connected components: each node labelled
    /// with the smallest node index in its component.
    ///
    /// # Errors
    ///
    /// Fails on bounds violations reading the CSR arrays.
    pub fn host_components(&self, machine: &mut Machine) -> Result<Vec<u32>, SimError> {
        let (rows, cols) = self.host_csr(machine)?;
        let mut comp = vec![UNVISITED; self.nodes as usize];
        for root in 0..self.nodes {
            if comp[root as usize] != UNVISITED {
                continue;
            }
            comp[root as usize] = root;
            let mut frontier = vec![root];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &v in &frontier {
                    for j in rows[v as usize]..rows[v as usize + 1] {
                        let u = cols[j as usize];
                        if comp[u as usize] == UNVISITED {
                            comp[u as usize] = root;
                            next.push(u);
                        }
                    }
                }
                frontier = next;
            }
        }
        Ok(comp)
    }
}

fn cols_len_guard(len: usize) {
    assert!(
        u32::try_from(len).is_ok(),
        "CSR column array exceeds u32 addressing"
    );
}

/// How an offloaded traversal reaches the CSR arrays in main memory.
#[derive(Clone, Debug)]
pub enum GraphAccess {
    /// One synchronous outer read per row offset and per edge — the
    /// pointer-chasing baseline (paper Sec. 3.2's worst case).
    Naive,
    /// Per-element reads through a software cache installed from the
    /// given (typically autotuned) choice.
    Tuned(CacheChoice),
    /// Per-level batched frontier gather: row-offset pairs then
    /// neighbour runs, each one coalesced descriptor batch
    /// ([`simcell::GatherPlan`]).
    Gather,
}

impl GraphAccess {
    /// Short column label for tables and traces.
    pub fn label(&self) -> &'static str {
        match self {
            GraphAccess::Naive => "naive",
            GraphAccess::Tuned(_) => "tuned",
            GraphAccess::Gather => "gather",
        }
    }
}

/// The kernel-side access mode (the cache choice, if any, lives in the
/// builder; inside the kernel only the read path matters).
#[derive(Clone, Copy)]
enum ReadPath {
    Outer,
    Cached,
    Gather,
}

impl GraphAccess {
    fn read_path(&self) -> ReadPath {
        match self {
            GraphAccess::Naive => ReadPath::Outer,
            GraphAccess::Tuned(_) => ReadPath::Cached,
            GraphAccess::Gather => ReadPath::Gather,
        }
    }
}

#[derive(Clone, Copy)]
struct CsrDesc {
    rows: Addr,
    cols: Addr,
}

fn read_elem(
    ctx: &mut AccelCtx<'_>,
    base: Addr,
    index: u32,
    path: ReadPath,
) -> Result<u32, SimError> {
    let addr = base.element(index, 4)?;
    match path {
        ReadPath::Outer => ctx.outer_read_pod::<u32>(addr),
        ReadPath::Cached => ctx.tuned_read_pod::<u32>(addr),
        ReadPath::Gather => unreachable!("gather path never reads per element"),
    }
}

/// Expands one BFS frontier: returns the concatenated neighbour lists
/// of `frontier`, charging [`NODE_COST`] per node and [`EDGE_COST`] per
/// edge regardless of access path. This is the function E18 times — the
/// three [`ReadPath`]s move identical bytes through entirely different
/// machinery.
fn frontier_neighbours(
    ctx: &mut AccelCtx<'_>,
    csr: CsrDesc,
    frontier: &[u32],
    path: ReadPath,
) -> Result<Vec<u32>, SimError> {
    match path {
        ReadPath::Outer | ReadPath::Cached => {
            let mut neighbours = Vec::new();
            for &v in frontier {
                ctx.compute(NODE_COST);
                let start = read_elem(ctx, csr.rows, v, path)?;
                let end = read_elem(ctx, csr.rows, v + 1, path)?;
                for j in start..end {
                    ctx.compute(EDGE_COST);
                    neighbours.push(read_elem(ctx, csr.cols, j, path)?);
                }
            }
            Ok(neighbours)
        }
        ReadPath::Gather => {
            // Everything gathered this level is scratch: release it
            // before returning so deep traversals stay within the
            // local store.
            let mark = ctx.local_alloc_mark();
            let result = gather_neighbours(ctx, csr, frontier);
            ctx.local_alloc_restore(mark);
            result
        }
    }
}

fn gather_neighbours(
    ctx: &mut AccelCtx<'_>,
    csr: CsrDesc,
    frontier: &[u32],
) -> Result<Vec<u32>, SimError> {
    // Sort the frontier first: BFS levels and component labels do not
    // depend on expansion order, and a sorted frontier is what makes
    // the descriptor batches coalesce — consecutive nodes share row
    // offsets and have CSR-adjacent neighbour runs.
    let mut sorted = frontier.to_vec();
    sorted.sort_unstable();

    // One batch for the row offsets: the deduplicated union of v and
    // v+1 over the frontier. Runs of consecutive nodes collapse into
    // single ascending index runs, hence single descriptors.
    let mut row_indices: Vec<u32> = Vec::with_capacity(sorted.len() + 1);
    let mut bound_slots: Vec<(usize, usize)> = Vec::with_capacity(sorted.len());
    for &v in &sorted {
        let start = if row_indices.last() == Some(&v) {
            row_indices.len() - 1
        } else {
            row_indices.push(v);
            row_indices.len() - 1
        };
        row_indices.push(v + 1);
        bound_slots.push((start, row_indices.len() - 1));
    }
    let row_view = GatherView::<u32>::fetch(ctx, csr.rows, row_indices)?;
    let bounds = row_view.to_vec(ctx)?;

    // One batch for the neighbour lists: each node's `start..end` run
    // is consecutive, and consecutive nodes' runs are adjacent in the
    // CSR, so a dense stretch of frontier becomes one big descriptor.
    let mut col_indices = Vec::new();
    for slots in &bound_slots {
        ctx.compute(NODE_COST);
        col_indices.extend(bounds[slots.0]..bounds[slots.1]);
    }
    if col_indices.is_empty() {
        return Ok(Vec::new());
    }
    let edge_count = col_indices.len() as u64;
    let col_view = GatherView::<u32>::fetch(ctx, csr.cols, col_indices)?;
    ctx.compute(EDGE_COST * edge_count);
    col_view.to_vec(ctx)
}

fn bfs_levels(
    ctx: &mut AccelCtx<'_>,
    csr: CsrDesc,
    nodes: u32,
    src: u32,
    path: ReadPath,
) -> Result<Vec<u32>, SimError> {
    let mut levels = vec![UNVISITED; nodes as usize];
    levels[src as usize] = 0;
    let mut frontier = vec![src];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        let neighbours = frontier_neighbours(ctx, csr, &frontier, path)?;
        let mut next = Vec::new();
        for u in neighbours {
            if levels[u as usize] == UNVISITED {
                levels[u as usize] = depth + 1;
                next.push(u);
            }
        }
        frontier = next;
        depth += 1;
    }
    Ok(levels)
}

fn write_out(ctx: &mut AccelCtx<'_>, out: Addr, values: &[u32]) -> Result<(), SimError> {
    let mut accessor = ArrayAccessor::<u32>::for_output(ctx, out, values.len() as u32)?;
    accessor.copy_from_slice(ctx, values)?;
    accessor.write_back(ctx)
}

/// Offloads a BFS from `src` over `graph`, writing the `nodes()` level
/// `u32`s to `out` in main memory. All [`GraphAccess`] variants write
/// identical bytes (pinned against [`InteractionGraph::host_bfs`] by
/// tests and by E18's memory-hash gate).
///
/// # Errors
///
/// Fails on local-store exhaustion, bounds violations, or (for
/// [`GraphAccess::Tuned`]) an invalid cache configuration.
pub fn run_bfs(
    machine: &mut Machine,
    graph: &InteractionGraph,
    src: u32,
    out: Addr,
    access: &GraphAccess,
) -> Result<(), SimError> {
    let csr = CsrDesc {
        rows: graph.row_offsets(),
        cols: graph.col_indices(),
    };
    let nodes = graph.nodes();
    let path = access.read_path();
    let mut builder = machine.offload(0).label("graph_bfs");
    if let GraphAccess::Tuned(choice) = access {
        builder = builder.cache(*choice);
    }
    builder.run(move |ctx| -> Result<(), SimError> {
        let levels = bfs_levels(ctx, csr, nodes, src, path)?;
        write_out(ctx, out, &levels)
    })?
}

/// Offloads connected components over `graph`, writing each node's
/// label (the smallest node index in its component) to `out`.
///
/// # Errors
///
/// As for [`run_bfs`].
pub fn run_components(
    machine: &mut Machine,
    graph: &InteractionGraph,
    out: Addr,
    access: &GraphAccess,
) -> Result<(), SimError> {
    let csr = CsrDesc {
        rows: graph.row_offsets(),
        cols: graph.col_indices(),
    };
    let nodes = graph.nodes();
    let path = access.read_path();
    let mut builder = machine.offload(0).label("graph_components");
    if let GraphAccess::Tuned(choice) = access {
        builder = builder.cache(*choice);
    }
    builder.run(move |ctx| -> Result<(), SimError> {
        let mut comp = vec![UNVISITED; nodes as usize];
        for root in 0..nodes {
            if comp[root as usize] != UNVISITED {
                continue;
            }
            comp[root as usize] = root;
            let mut frontier = vec![root];
            while !frontier.is_empty() {
                let neighbours = frontier_neighbours(ctx, csr, &frontier, path)?;
                let mut next = Vec::new();
                for u in neighbours {
                    if comp[u as usize] == UNVISITED {
                        comp[u as usize] = root;
                        next.push(u);
                    }
                }
                frontier = next;
            }
        }
        write_out(ctx, out, &comp)
    })?
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small()).unwrap()
    }

    fn csr_snapshot(machine: &mut Machine, g: &InteractionGraph) -> (Vec<u32>, Vec<u32>) {
        let rows = machine
            .host_read_slice::<u32>(g.row_offsets(), g.nodes() + 1)
            .unwrap();
        let cols = machine
            .host_read_slice::<u32>(g.col_indices(), g.edges())
            .unwrap();
        (rows, cols)
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let mut a = machine();
        let mut b = machine();
        let ga = InteractionGraph::generate(&mut a, 128, 6, 42).unwrap();
        let gb = InteractionGraph::generate(&mut b, 128, 6, 42).unwrap();
        assert_eq!(ga.edges(), gb.edges());
        assert_eq!(csr_snapshot(&mut a, &ga), csr_snapshot(&mut b, &gb));
        let mut c = machine();
        let gc = InteractionGraph::generate(&mut c, 128, 6, 43).unwrap();
        assert_ne!(csr_snapshot(&mut a, &ga), csr_snapshot(&mut c, &gc));
    }

    #[test]
    fn csr_is_well_formed_and_symmetric() {
        let mut m = machine();
        let g = InteractionGraph::generate(&mut m, 96, 5, 7).unwrap();
        let (rows, cols) = csr_snapshot(&mut m, &g);
        assert_eq!(rows.len(), 97);
        assert_eq!(*rows.last().unwrap(), g.edges());
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
        assert!(cols.iter().all(|&u| u < 96));
        // Symmetry: every (v, u) edge has a (u, v) mirror.
        for v in 0..96u32 {
            for j in rows[v as usize]..rows[v as usize + 1] {
                let u = cols[j as usize];
                let back = &cols[rows[u as usize] as usize..rows[u as usize + 1] as usize];
                assert!(back.contains(&v), "edge {v}->{u} has no mirror");
            }
        }
    }

    #[test]
    fn naive_bfs_matches_the_host_reference() {
        let mut m = machine();
        let g = InteractionGraph::generate(&mut m, 128, 4, 11).unwrap();
        let expect = g.host_bfs(&mut m, 3).unwrap();
        let out = m.alloc_main_slice::<u32>(g.nodes()).unwrap();
        run_bfs(&mut m, &g, 3, out, &GraphAccess::Naive).unwrap();
        let got = m.host_read_slice::<u32>(out, g.nodes()).unwrap();
        assert_eq!(got, expect);
        assert_eq!(got[3], 0);
    }

    #[test]
    fn gather_bfs_is_bit_identical_to_naive() {
        let mut m = machine();
        let g = InteractionGraph::generate(&mut m, 160, 5, 23).unwrap();
        let expect = g.host_bfs(&mut m, 0).unwrap();
        let out_naive = m.alloc_main_slice::<u32>(g.nodes()).unwrap();
        let out_gather = m.alloc_main_slice::<u32>(g.nodes()).unwrap();
        run_bfs(&mut m, &g, 0, out_naive, &GraphAccess::Naive).unwrap();
        run_bfs(&mut m, &g, 0, out_gather, &GraphAccess::Gather).unwrap();
        let naive = m.host_read_slice::<u32>(out_naive, g.nodes()).unwrap();
        let gather = m.host_read_slice::<u32>(out_gather, g.nodes()).unwrap();
        assert_eq!(naive, expect);
        assert_eq!(gather, expect);
    }

    #[test]
    fn gather_traversal_is_cheaper_than_naive() {
        let mut m = machine();
        let g = InteractionGraph::generate(&mut m, 256, 6, 5).unwrap();
        let out = m.alloc_main_slice::<u32>(g.nodes()).unwrap();

        m.reset_stats();
        run_bfs(&mut m, &g, 0, out, &GraphAccess::Naive).unwrap();
        let naive = m.stats().accel_busy_cycles;

        m.reset_stats();
        run_bfs(&mut m, &g, 0, out, &GraphAccess::Gather).unwrap();
        let gathers = m.stats().gathers;
        let gather_cycles = m.stats().accel_busy_cycles;
        assert!(gathers > 0, "gather path must use the gather engine");
        assert!(
            gather_cycles * 2 <= naive,
            "batched frontier gather should be at least 2x cheaper: naive {naive}, \
             gather {gather_cycles}"
        );
    }

    #[test]
    fn components_agree_across_variants_and_label_by_min_node() {
        let mut m = machine();
        let g = InteractionGraph::generate(&mut m, 96, 3, 99).unwrap();
        let expect = g.host_components(&mut m).unwrap();
        let out_naive = m.alloc_main_slice::<u32>(g.nodes()).unwrap();
        let out_gather = m.alloc_main_slice::<u32>(g.nodes()).unwrap();
        run_components(&mut m, &g, out_naive, &GraphAccess::Naive).unwrap();
        run_components(&mut m, &g, out_gather, &GraphAccess::Gather).unwrap();
        assert_eq!(
            m.host_read_slice::<u32>(out_naive, g.nodes()).unwrap(),
            expect
        );
        assert_eq!(
            m.host_read_slice::<u32>(out_gather, g.nodes()).unwrap(),
            expect
        );
        // Labels are component minima, so node 0 always labels itself.
        assert_eq!(expect[0], 0);
    }
}
