//! Seeded, deterministic scenario generators.
//!
//! Benchmarks need identical worlds on every run; all randomness flows
//! from one explicit seed.

use memspace::Addr;
use simcell::{Machine, SimError};
use xrng::Rng;

use crate::entity::{state, EntityArray, GameEntity};
use crate::math::Vec3;

/// A deterministic world generator.
///
/// # Example
///
/// ```
/// use gamekit::{EntityArray, WorldGen};
/// use simcell::{Machine, MachineConfig};
///
/// # fn main() -> Result<(), simcell::SimError> {
/// let mut machine = Machine::new(MachineConfig::small())?;
/// let entities = EntityArray::alloc(&mut machine, 64)?;
/// let mut gen = WorldGen::new(7);
/// gen.populate(&mut machine, &entities, 100.0)?;
/// assert!(entities.load(&machine, 0)?.health > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WorldGen {
    rng: Rng,
}

impl WorldGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> WorldGen {
        WorldGen {
            rng: Rng::new(seed),
        }
    }

    fn vec_in_cube(&mut self, half: f32) -> Vec3 {
        Vec3::new(
            self.rng.range_f32(-half, half),
            self.rng.range_f32(-half, half),
            self.rng.range_f32(-half, half),
        )
    }

    /// Fills `entities` with random positions/velocities inside a cube
    /// of side `world_size`, plausible radii and health, idle state, and
    /// random targets. Class headers are left zero; component/class
    /// setups assign them.
    ///
    /// # Errors
    ///
    /// Fails on bounds violations.
    pub fn populate(
        &mut self,
        machine: &mut Machine,
        entities: &EntityArray,
        world_size: f32,
    ) -> Result<(), SimError> {
        let n = entities.len();
        for i in 0..n {
            let entity = GameEntity {
                class: 0,
                pos: self.vec_in_cube(world_size / 2.0),
                vel: self.vec_in_cube(2.0),
                radius: self.rng.range_f32(0.5, 2.0),
                health: self.rng.range_f32(10.0, 100.0),
                state: state::IDLE,
                target: self.rng.below_u32(n),
                pad: [0; 5],
            };
            entities.store(machine, i, &entity)?;
        }
        Ok(())
    }

    /// Builds a per-entity candidate table: `k` random entity indices
    /// for each of `count` entities (the "which entities does my AI
    /// consider" working set), stored as a flat `u32` array in main
    /// memory.
    ///
    /// # Errors
    ///
    /// Fails when main memory is exhausted.
    pub fn candidate_table(
        &mut self,
        machine: &mut Machine,
        count: u32,
        k: u32,
    ) -> Result<Addr, SimError> {
        let table = machine.alloc_main_slice::<u32>(count * k)?;
        let mut values = Vec::with_capacity((count * k) as usize);
        for _ in 0..count * k {
            values.push(self.rng.below_u32(count));
        }
        machine.main_mut().write_pod_slice(table, &values)?;
        Ok(table)
    }

    /// Generates `pair_count` random collision pairs over `count`
    /// entities (distinct indices per pair), stored as a flat `u32`
    /// array of `2 * pair_count` indices.
    ///
    /// # Errors
    ///
    /// Fails when main memory is exhausted.
    pub fn collision_pairs(
        &mut self,
        machine: &mut Machine,
        count: u32,
        pair_count: u32,
    ) -> Result<Addr, SimError> {
        assert!(count >= 2, "pairs need at least two entities");
        let table = machine.alloc_main_slice::<u32>(pair_count * 2)?;
        let mut values = Vec::with_capacity((pair_count * 2) as usize);
        for _ in 0..pair_count {
            let a = self.rng.below_u32(count);
            let mut b = self.rng.below_u32(count);
            while b == a {
                b = self.rng.below_u32(count);
            }
            values.push(a);
            values.push(b);
        }
        machine.main_mut().write_pod_slice(table, &values)?;
        Ok(table)
    }

    /// A random permutation of `0..count` (used to shuffle component
    /// arrays so the monolithic system's types are interleaved, as in
    /// the real game).
    pub fn permutation(&mut self, count: u32) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..count).collect();
        self.rng.shuffle(&mut perm);
        perm
    }

    /// A random value in `[0, bound)`.
    pub fn index(&mut self, bound: u32) -> u32 {
        self.rng.below_u32(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::MachineConfig;

    #[test]
    fn same_seed_same_world() {
        let build = |seed: u64| {
            let mut m = Machine::new(MachineConfig::small()).unwrap();
            let arr = EntityArray::alloc(&mut m, 32).unwrap();
            WorldGen::new(seed).populate(&mut m, &arr, 50.0).unwrap();
            arr.snapshot(&m).unwrap()
        };
        assert_eq!(build(1), build(1));
        assert_ne!(build(1), build(2));
    }

    #[test]
    fn populate_produces_plausible_entities() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let arr = EntityArray::alloc(&mut m, 64).unwrap();
        WorldGen::new(3).populate(&mut m, &arr, 100.0).unwrap();
        for e in arr.snapshot(&m).unwrap() {
            assert!(e.pos.x.abs() <= 50.0);
            assert!((0.5..2.0).contains(&e.radius));
            assert!((10.0..100.0).contains(&e.health));
            assert!(e.target < 64);
            assert_eq!(e.state, state::IDLE);
        }
    }

    #[test]
    fn candidate_table_indices_in_range() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let table = WorldGen::new(5).candidate_table(&mut m, 40, 8).unwrap();
        let values = m.main().read_pod_slice::<u32>(table, 40 * 8).unwrap();
        assert!(values.iter().all(|&v| v < 40));
    }

    #[test]
    fn collision_pairs_are_distinct() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let table = WorldGen::new(5).collision_pairs(&mut m, 30, 100).unwrap();
        let values = m.main().read_pod_slice::<u32>(table, 200).unwrap();
        for pair in values.chunks(2) {
            assert_ne!(pair[0], pair[1]);
            assert!(pair[0] < 30 && pair[1] < 30);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut perm = WorldGen::new(9).permutation(100);
        perm.sort_unstable();
        assert_eq!(perm, (0..100).collect::<Vec<u32>>());
    }
}
