//! The game frame loop of paper Figure 2.
//!
//! ```c++
//! void GameWorld::doFrame(...) {
//!   __offload_handle_t h = __offload {        // AI to the accelerator
//!     this->calculateStrategy(...);
//!   };
//!   this->detectCollisions();                 // host, in parallel
//!   __offload_join(h);
//!   this->updateEntities();
//!   this->renderFrame();
//! }
//! ```
//!
//! [`run_frame`] executes exactly that schedule (or its sequential
//! baseline): AI strategy on the accelerator overlapping host collision
//! detection, then pair response, integration and rendering on the
//! host. Both schedules compute bit-identical world states — the AI
//! task writes only velocity/state/target while collision detection
//! reads only position/radius, the "parallel, distinct tasks" property
//! game code is structured around.

use memspace::Addr;
use simcell::{Machine, SimError};

use crate::ai::{ai_frame_host, ai_frame_offloaded, AiConfig};
use crate::collision::{detect_collisions_host, respond_pairs_host};
use crate::entity::{EntityArray, GameEntity};

/// Cycles of host computation per entity for rendering (visibility,
/// draw-call assembly).
pub const RENDER_COMPUTE_PER_ENTITY: u64 = 30;

/// Cycles of host computation per entity for integration.
pub const INTEGRATE_COMPUTE_PER_ENTITY: u64 = 10;

/// Broad-phase grid cell size used by the frame.
pub const FRAME_CELL_SIZE: f32 = 4.0;

const DT: f32 = 1.0 / 60.0;

/// Which schedule a frame ran under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameSchedule {
    /// Everything on the host, one task after another.
    Sequential,
    /// Figure 2: AI offloaded, overlapping host collision detection.
    Offloaded {
        /// The accelerator running the AI task.
        accel: u16,
    },
}

impl std::fmt::Display for FrameSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameSchedule::Sequential => write!(f, "sequential"),
            FrameSchedule::Offloaded { accel } => write!(f, "offloaded(accel {accel})"),
        }
    }
}

/// What one frame cost and found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameStats {
    /// The schedule used.
    pub schedule_was_offloaded: bool,
    /// Host cycles for the whole frame.
    pub host_cycles: u64,
    /// Collision pairs found by the broad phase.
    pub pairs: u32,
    /// Cycles the AI task occupied its core (host or accelerator).
    pub ai_cycles: u64,
}

/// Integrates positions on the host (`pos += vel * dt` with damping).
fn update_entities(machine: &mut Machine, entities: &EntityArray) -> Result<(), SimError> {
    let n = entities.len();
    let mut all = machine.host_read_slice::<GameEntity>(entities.base(), n)?;
    for e in &mut all {
        e.pos = e.pos.add(e.vel.scale(DT));
        e.vel = e.vel.scale(0.999);
    }
    machine.host_compute(INTEGRATE_COMPUTE_PER_ENTITY * u64::from(n));
    machine.host_write_slice(entities.base(), &all)?;
    Ok(())
}

/// Renders the frame on the host (reads every entity, fixed compute per
/// entity).
fn render_frame(machine: &mut Machine, entities: &EntityArray) -> Result<(), SimError> {
    let n = entities.len();
    let _ = machine.host_read_slice::<GameEntity>(entities.base(), n)?;
    machine.host_compute(RENDER_COMPUTE_PER_ENTITY * u64::from(n));
    Ok(())
}

/// Runs one `doFrame` under the given schedule and reports its cost.
///
/// # Errors
///
/// Fails on memory/transfer errors or if the configured accelerator
/// does not exist.
pub fn run_frame(
    machine: &mut Machine,
    entities: &EntityArray,
    candidate_table: Addr,
    ai_config: &AiConfig,
    schedule: FrameSchedule,
) -> Result<FrameStats, SimError> {
    let t0 = machine.host_now();
    machine.span_start("doFrame");
    let (pairs, ai_cycles) = match schedule {
        FrameSchedule::Sequential => {
            let a0 = machine.host_now();
            machine.span_start("calculateStrategy");
            ai_frame_host(machine, entities, candidate_table, ai_config)?;
            machine.span_end("calculateStrategy");
            let ai_cycles = machine.host_now() - a0;
            machine.span_start("detectCollisions");
            let pairs = detect_collisions_host(machine, entities, FRAME_CELL_SIZE)?;
            machine.span_end("detectCollisions");
            (pairs, ai_cycles)
        }
        FrameSchedule::Offloaded { accel } => {
            // __offload { this->calculateStrategy(...); }
            let handle = machine
                .offload(accel)
                .label("calculateStrategy")
                .spawn(|ctx| ai_frame_offloaded(ctx, entities, candidate_table, ai_config))?;
            let ai_cycles = handle.elapsed();
            // this->detectCollisions();  (host, in parallel)
            machine.span_start("detectCollisions");
            let pairs = detect_collisions_host(machine, entities, FRAME_CELL_SIZE)?;
            machine.span_end("detectCollisions");
            // __offload_join(h);
            machine.join(handle)?;
            (pairs, ai_cycles)
        }
    };
    machine.span_start("respondPairs");
    respond_pairs_host(machine, entities, &pairs)?;
    machine.span_end("respondPairs");
    machine.span_start("updateEntities");
    update_entities(machine, entities)?;
    machine.span_end("updateEntities");
    machine.span_start("renderFrame");
    render_frame(machine, entities)?;
    machine.span_end("renderFrame");
    machine.span_end("doFrame");
    Ok(FrameStats {
        schedule_was_offloaded: matches!(schedule, FrameSchedule::Offloaded { .. }),
        host_cycles: machine.host_now() - t0,
        pairs: pairs.len() as u32,
        ai_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorldGen;
    use simcell::MachineConfig;

    fn setup(n: u32) -> (Machine, EntityArray, Addr) {
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let entities = EntityArray::alloc(&mut machine, n).unwrap();
        let mut gen = WorldGen::new(21);
        gen.populate(&mut machine, &entities, 40.0).unwrap();
        let table = gen
            .candidate_table(&mut machine, n, AiConfig::default().candidates)
            .unwrap();
        (machine, entities, table)
    }

    #[test]
    fn both_schedules_compute_identical_worlds() {
        let config = AiConfig::default();
        let (mut m1, e1, t1) = setup(256);
        run_frame(&mut m1, &e1, t1, &config, FrameSchedule::Sequential).unwrap();
        let w1 = e1.snapshot(&m1).unwrap();

        let (mut m2, e2, t2) = setup(256);
        run_frame(
            &mut m2,
            &e2,
            t2,
            &config,
            FrameSchedule::Offloaded { accel: 0 },
        )
        .unwrap();
        let w2 = e2.snapshot(&m2).unwrap();
        assert_eq!(w1, w2);
        assert_eq!(m2.races_detected(), 0);
    }

    #[test]
    fn offloading_overlaps_ai_with_collision_detection() {
        let config = AiConfig::default();
        let (mut m1, e1, t1) = setup(512);
        let seq = run_frame(&mut m1, &e1, t1, &config, FrameSchedule::Sequential).unwrap();

        let (mut m2, e2, t2) = setup(512);
        let offl = run_frame(
            &mut m2,
            &e2,
            t2,
            &config,
            FrameSchedule::Offloaded { accel: 0 },
        )
        .unwrap();

        assert_eq!(seq.pairs, offl.pairs);
        assert!(
            offl.host_cycles < seq.host_cycles,
            "offloaded frame should be faster: {} vs {}",
            offl.host_cycles,
            seq.host_cycles
        );
    }

    #[test]
    fn frames_advance_the_world() {
        let config = AiConfig::default();
        let (mut m, e, t) = setup(64);
        let before = e.snapshot(&m).unwrap();
        run_frame(&mut m, &e, t, &config, FrameSchedule::Sequential).unwrap();
        let after = e.snapshot(&m).unwrap();
        assert_ne!(before, after, "positions integrate");
    }

    #[test]
    fn multiple_frames_run_back_to_back() {
        let config = AiConfig::default();
        let (mut m, e, t) = setup(128);
        let mut last = 0;
        for _ in 0..3 {
            let stats = run_frame(
                &mut m,
                &e,
                t,
                &config,
                FrameSchedule::Offloaded { accel: 0 },
            )
            .unwrap();
            assert!(stats.host_cycles > 0);
            assert!(m.host_now() > last);
            last = m.host_now();
        }
    }
}
