//! The abstract component system of paper §4.1, before and after the
//! restructuring.
//!
//! The paper: "the game used an abstract component system, performing
//! more than 1300 virtual calls per frame, which we tried to offload in
//! its entirety. […] it was necessary to annotate a portion of offloaded
//! code with upwards of 100 virtual functions. […] We therefore
//! restructured the component system to be type specialised, in 1 day
//! […] We wrote a separate offload for each task, one per component,
//! instead of a single offload for all the distinct components,
//! resulting in 13 separate type-specialised offloads. After the
//! restructuring, the maximum number of virtual functions associated
//! with a portion of offloaded code being shipped in this particular
//! game is 40."
//!
//! This module reproduces both architectures over identical component
//! data:
//!
//! - **Monolithic** ([`ComponentSystem::update_monolithic_offloaded`]):
//!   one offload walks an interleaved array of all 13 component kinds.
//!   Every component is dispatched through one huge domain (106 virtual
//!   functions), and — because the concrete type (and hence size) of the
//!   next component is unknown — nothing can be prefetched: each object
//!   is touched through synchronous outer accesses.
//! - **Type-specialised** ([`ComponentSystem::update_specialised_offloaded`]):
//!   thirteen offloads, one per kind, each with a small domain (max 40)
//!   over a homogeneous array that is bulk-fetched with an accessor.
//!
//! Both paths execute the *same* per-component behaviours, so their
//! results are bit-identical; only schedule and memory traffic differ.

use memspace::{impl_pod, Addr, Pod};
use offload_rt::{
    accel_virtual_dispatch, host_virtual_dispatch, ArrayAccessor, ClassRegistry, Domain,
    DuplicateId, FnAddr, MethodSlot, MethodTable, RemoteSlice,
};
use simcell::{DispatchFault, Machine, SimError};

use crate::workload::WorldGen;

/// Number of component kinds (the paper's 13).
pub const KIND_COUNT: usize = 13;

/// Kind names, for reports.
pub const KIND_NAMES: [&str; KIND_COUNT] = [
    "Transform",
    "Physics",
    "Render",
    "Animation",
    "Ai",
    "Audio",
    "Collision",
    "Particle",
    "Script",
    "Navigation",
    "Input",
    "Network",
    "Debug",
];

/// Virtual-function (subclass) count per kind. Sums to 106 — the paper's
/// "upwards of 100 virtual functions" — with a maximum of 40, the
/// paper's post-restructuring per-offload maximum.
pub const KIND_VARIANTS: [u32; KIND_COUNT] = [40, 12, 10, 8, 8, 6, 5, 4, 4, 3, 2, 2, 2];

/// Cycles of pure computation per component update, by kind.
pub const KIND_COMPUTE: [u64; KIND_COUNT] =
    [80, 120, 60, 90, 150, 40, 70, 50, 100, 110, 30, 45, 35];

/// The dispatch slot of every component's `update` method.
pub const UPDATE_SLOT: MethodSlot = MethodSlot(0);

impl_pod! {
    /// A component instance in simulated memory (32 bytes): class-id
    /// header, owning entity, and six floats of payload.
    #[derive(PartialEq)]
    pub struct Component {
        /// Class id header (offset 0).
        pub class: u32,
        /// Owning entity index.
        pub entity: u32,
        /// Kind-specific payload.
        pub data: [f32; 6],
    }
}

impl Component {
    /// Byte stride in simulated memory.
    pub const STRIDE: u32 = Component::SIZE as u32;
}

/// The behaviour behind one update function: a pure payload transform
/// plus a compute charge.
#[derive(Clone, Copy)]
pub struct ComponentBehavior {
    /// Cycles of pure computation per invocation.
    pub compute: u64,
    /// The payload transform.
    pub transform: fn(&mut [f32; 6]),
}

impl std::fmt::Debug for ComponentBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentBehavior")
            .field("compute", &self.compute)
            .finish()
    }
}

const DT: f32 = 1.0 / 60.0;

fn t_transform(d: &mut [f32; 6]) {
    d[0] += d[3] * DT;
    d[1] += d[4] * DT;
    d[2] += d[5] * DT;
}
fn t_physics(d: &mut [f32; 6]) {
    d[3] *= 0.995;
    d[4] -= 9.81 * DT;
    d[5] *= 0.995;
}
fn t_render(d: &mut [f32; 6]) {
    d[0] = (d[0] + 1.0).min(1024.0);
}
fn t_animation(d: &mut [f32; 6]) {
    d[1] = (d[1] + d[2] * DT) % 1.0;
}
fn t_ai(d: &mut [f32; 6]) {
    d[4] = if d[0] > d[1] { d[2] } else { d[3] };
}
fn t_audio(d: &mut [f32; 6]) {
    d[5] = (d[5] * 0.9 + 0.1).clamp(0.0, 1.0);
}
fn t_collision(d: &mut [f32; 6]) {
    d[2] = (d[0] * d[0] + d[1] * d[1]).sqrt();
}
fn t_particle(d: &mut [f32; 6]) {
    d[2] -= DT;
    if d[2] < 0.0 {
        d[2] = 1.0;
    }
}
fn t_script(d: &mut [f32; 6]) {
    d[3] += d[0] * 0.01;
}
fn t_navigation(d: &mut [f32; 6]) {
    d[4] = (d[4] + 0.125) % 64.0;
}
fn t_input(d: &mut [f32; 6]) {
    d[5] = -d[5];
}
fn t_network(d: &mut [f32; 6]) {
    d[0] = (d[0] + 1.0) % 255.0;
}
fn t_debug(d: &mut [f32; 6]) {
    d[1] += 1.0;
}

/// Per-kind payload transforms.
pub const KIND_TRANSFORMS: [fn(&mut [f32; 6]); KIND_COUNT] = [
    t_transform,
    t_physics,
    t_render,
    t_animation,
    t_ai,
    t_audio,
    t_collision,
    t_particle,
    t_script,
    t_navigation,
    t_input,
    t_network,
    t_debug,
];

/// Which architecture an update ran under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemLayout {
    /// One offload over the interleaved array (pre-restructuring).
    Monolithic,
    /// Thirteen type-specialised offloads (post-restructuring).
    TypeSpecialised,
    /// Host-only baseline.
    Host,
}

impl std::fmt::Display for SystemLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemLayout::Monolithic => write!(f, "monolithic"),
            SystemLayout::TypeSpecialised => write!(f, "type-specialised"),
            SystemLayout::Host => write!(f, "host"),
        }
    }
}

/// What one frame of component updates cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ComponentSystemStats {
    /// The architecture measured.
    pub layout: SystemLayout,
    /// Host cycles end-to-end (launch through final join).
    pub host_cycles: u64,
    /// Virtual dispatches performed.
    pub vcalls: u64,
    /// Number of offload blocks launched.
    pub offloads: u32,
    /// The largest domain annotation any single offload needed.
    pub max_domain_size: usize,
}

/// The component system: classes, behaviours, domains, and both
/// storage layouts over identical data.
pub struct ComponentSystem {
    registry: ClassRegistry,
    behaviors: MethodTable<ComponentBehavior>,
    monolithic: Addr,
    total: u32,
    specialised: [(Addr, u32); KIND_COUNT],
    monolithic_domain: Domain,
    specialised_domains: Vec<Domain>,
}

impl std::fmt::Debug for ComponentSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentSystem")
            .field("total", &self.total)
            .field("monolithic_domain", &self.monolithic_domain.len())
            .finish()
    }
}

impl ComponentSystem {
    /// Builds the class hierarchy, behaviours, domains and both storage
    /// layouts for `entities` entities (one component of each kind per
    /// entity — `13 * entities` components per frame; 100 entities gives
    /// the paper's 1300 virtual calls).
    ///
    /// # Errors
    ///
    /// Fails when main memory is exhausted.
    pub fn build(
        machine: &mut Machine,
        entities: u32,
        seed: u64,
    ) -> Result<ComponentSystem, SimError> {
        let mut registry = ClassRegistry::new();
        let mut behaviors = MethodTable::new();
        let mut monolithic_domain = Domain::new();
        let mut specialised_domains = Vec::with_capacity(KIND_COUNT);
        let mut class_base = [0u32; KIND_COUNT];

        for kind in 0..KIND_COUNT {
            let mut kind_domain = Domain::new();
            let base = registry.register_class(format!("{}Component", KIND_NAMES[kind]), None);
            class_base[kind] = base.0;
            for variant in 0..KIND_VARIANTS[kind] {
                let class = if variant == 0 {
                    base
                } else {
                    registry.register_class(
                        format!("{}Component_{variant}", KIND_NAMES[kind]),
                        Some(base),
                    )
                };
                debug_assert_eq!(class.0, base.0 + variant);
                let global =
                    registry.fresh_fn(format!("{}Component_{variant}::update", KIND_NAMES[kind]));
                let local_outer = registry.fresh_fn(format!(
                    "{}Component_{variant}::update [spu, outer this]",
                    KIND_NAMES[kind]
                ));
                let local_local = registry.fresh_fn(format!(
                    "{}Component_{variant}::update [spu, local this]",
                    KIND_NAMES[kind]
                ));
                registry.define_method(class, UPDATE_SLOT, global);
                // The monolithic offload touches components through outer
                // pointers; the specialised offloads through local ones.
                monolithic_domain.add(global, &[(DuplicateId(0b1), local_outer)]);
                kind_domain.add(global, &[(DuplicateId::ALL_LOCAL, local_local)]);
                let behaviour = ComponentBehavior {
                    compute: KIND_COMPUTE[kind],
                    transform: KIND_TRANSFORMS[kind],
                };
                behaviors.register(global, behaviour);
                behaviors.register(local_outer, behaviour);
                behaviors.register(local_local, behaviour);
            }
            specialised_domains.push(kind_domain);
        }

        // Create the component instances: one of each kind per entity.
        let total = entities * KIND_COUNT as u32;
        let mut gen = WorldGen::new(seed);
        let mut instances = Vec::with_capacity(total as usize);
        for entity in 0..entities {
            for kind in 0..KIND_COUNT {
                let variant = (entity + kind as u32 * 7) % KIND_VARIANTS[kind];
                let mut data = [0f32; 6];
                for (i, d) in data.iter_mut().enumerate() {
                    *d = (gen.index(1000) as f32) / 100.0 + i as f32;
                }
                instances.push(Component {
                    class: class_base[kind] + variant,
                    entity,
                    data,
                });
            }
        }

        // Monolithic layout: the same instances, interleaved/shuffled as
        // they would be behind an array of base-class pointers.
        let perm = gen.permutation(total);
        let monolithic = machine.alloc_main_slice::<Component>(total)?;
        let shuffled: Vec<Component> = perm.iter().map(|&i| instances[i as usize]).collect();
        machine.main_mut().write_pod_slice(monolithic, &shuffled)?;

        // Specialised layout: grouped by kind.
        let mut specialised = [(Addr::null(memspace::SpaceId::MAIN), 0u32); KIND_COUNT];
        for kind in 0..KIND_COUNT {
            let of_kind: Vec<Component> = instances
                .iter()
                .filter(|c| {
                    c.class >= class_base[kind] && c.class < class_base[kind] + KIND_VARIANTS[kind]
                })
                .copied()
                .collect();
            let addr = machine.alloc_main_slice::<Component>(of_kind.len() as u32)?;
            machine.main_mut().write_pod_slice(addr, &of_kind)?;
            specialised[kind] = (addr, of_kind.len() as u32);
        }

        Ok(ComponentSystem {
            registry,
            behaviors,
            monolithic,
            total,
            specialised,
            monolithic_domain,
            specialised_domains,
        })
    }

    /// Total components updated per frame.
    pub fn component_count(&self) -> u32 {
        self.total
    }

    /// The monolithic offload's domain annotation count (the paper's
    /// ">100 virtual functions").
    pub fn monolithic_annotations(&self) -> usize {
        self.monolithic_domain.len()
    }

    /// The largest per-offload annotation count after restructuring
    /// (the paper's "maximum … is 40").
    pub fn max_specialised_annotations(&self) -> usize {
        self.specialised_domains
            .iter()
            .map(Domain::len)
            .max()
            .unwrap_or(0)
    }

    /// The class registry (for examples/diagnostics).
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    fn behaviour_of(&self, addr: FnAddr) -> Result<ComponentBehavior, SimError> {
        self.behaviors
            .get(addr)
            .copied()
            .ok_or(SimError::Dispatch(DispatchFault::NoSuchMethod {
                class: u32::MAX,
                slot: UPDATE_SLOT.0,
            }))
    }

    /// Updates every component on the host (no offloading) — the
    /// baseline the paper's teams started from.
    ///
    /// # Errors
    ///
    /// Fails on dispatch or memory errors.
    pub fn update_host(&self, machine: &mut Machine) -> Result<ComponentSystemStats, SimError> {
        let t0 = machine.host_now();
        let mut vcalls = 0u64;
        for i in 0..self.total {
            let addr = self.monolithic.element(i, Component::STRIDE)?;
            let target = host_virtual_dispatch(machine, &self.registry, addr, UPDATE_SLOT)?;
            let behaviour = self.behaviour_of(target)?;
            let mut comp: Component = machine.host_read_pod(addr)?;
            (behaviour.transform)(&mut comp.data);
            machine.host_compute(behaviour.compute);
            machine.host_write_pod(addr, &comp)?;
            vcalls += 1;
        }
        Ok(ComponentSystemStats {
            layout: SystemLayout::Host,
            host_cycles: machine.host_now() - t0,
            vcalls,
            offloads: 0,
            max_domain_size: 0,
        })
    }

    /// Updates every component through ONE offload over the interleaved
    /// array — the pre-restructuring architecture. Every dispatch pays
    /// an outer header read, a 106-entry domain search, and synchronous
    /// outer accesses for the payload (unknown concrete type ⇒ no
    /// prefetch).
    ///
    /// # Errors
    ///
    /// Fails on dispatch or memory errors.
    pub fn update_monolithic_offloaded(
        &self,
        machine: &mut Machine,
        accel: u16,
    ) -> Result<ComponentSystemStats, SimError> {
        let t0 = machine.host_now();
        let total = self.total;
        let monolithic = self.monolithic;
        let handle = machine
            .offload(accel)
            .spawn(|ctx| -> Result<u64, SimError> {
                let mut vcalls = 0u64;
                for i in 0..total {
                    let addr = monolithic.element(i, Component::STRIDE)?;
                    let local_fn = accel_virtual_dispatch(
                        ctx,
                        &self.registry,
                        &self.monolithic_domain,
                        addr,
                        UPDATE_SLOT,
                        DuplicateId(0b1),
                    )?;
                    let behaviour = self.behaviour_of(local_fn)?;
                    let mut comp: Component = ctx.outer_read_pod(addr)?;
                    (behaviour.transform)(&mut comp.data);
                    ctx.compute(behaviour.compute);
                    ctx.outer_write_pod(addr, &comp)?;
                    vcalls += 1;
                }
                Ok(vcalls)
            })?;
        let vcalls = machine.join(handle)?;
        Ok(ComponentSystemStats {
            layout: SystemLayout::Monolithic,
            host_cycles: machine.host_now() - t0,
            vcalls,
            offloads: 1,
            max_domain_size: self.monolithic_domain.len(),
        })
    }

    /// Updates every component through THIRTEEN type-specialised
    /// offloads — the post-restructuring architecture. Each offload
    /// bulk-fetches its homogeneous array, dispatches through a ≤40
    /// entry domain with local headers, and bulk-writes back.
    ///
    /// # Errors
    ///
    /// Fails on dispatch or memory errors.
    pub fn update_specialised_offloaded(
        &self,
        machine: &mut Machine,
        accel: u16,
    ) -> Result<ComponentSystemStats, SimError> {
        let t0 = machine.host_now();
        let mut vcalls = 0u64;
        for kind in 0..KIND_COUNT {
            let (addr, count) = self.specialised[kind];
            let domain = &self.specialised_domains[kind];
            let handle = machine
                .offload(accel)
                .spawn(|ctx| -> Result<u64, SimError> {
                    let mut local_calls = 0u64;
                    let mut array = ArrayAccessor::<Component>::fetch(ctx, addr, count)?;
                    for i in 0..count {
                        let obj = array.element_addr(i)?;
                        let local_fn = accel_virtual_dispatch(
                            ctx,
                            &self.registry,
                            domain,
                            obj,
                            UPDATE_SLOT,
                            DuplicateId::ALL_LOCAL,
                        )?;
                        let behaviour = self.behaviour_of(local_fn)?;
                        let mut comp = array.get(ctx, i)?;
                        (behaviour.transform)(&mut comp.data);
                        ctx.compute(behaviour.compute);
                        array.set(ctx, i, &comp)?;
                        local_calls += 1;
                    }
                    array.write_back(ctx)?;
                    Ok(local_calls)
                })?;
            vcalls += machine.join(handle)?;
        }
        Ok(ComponentSystemStats {
            layout: SystemLayout::TypeSpecialised,
            host_cycles: machine.host_now() - t0,
            vcalls,
            offloads: KIND_COUNT as u32,
            max_domain_size: self.max_specialised_annotations(),
        })
    }

    /// Reads back all component payloads, keyed and sorted by
    /// `(entity, class)` so the two layouts can be compared.
    ///
    /// # Errors
    ///
    /// Fails on bounds violations.
    pub fn snapshot_canonical(
        &self,
        machine: &Machine,
        layout: SystemLayout,
    ) -> Result<Vec<(u32, u32, [u32; 6])>, SimError> {
        let mut all: Vec<Component> = match layout {
            SystemLayout::Monolithic | SystemLayout::Host => machine
                .main()
                .read_pod_slice::<Component>(self.monolithic, self.total)?,
            SystemLayout::TypeSpecialised => {
                let mut v = Vec::with_capacity(self.total as usize);
                for &(addr, count) in &self.specialised {
                    v.extend(machine.main().read_pod_slice::<Component>(addr, count)?);
                }
                v
            }
        };
        all.sort_by_key(|c| (c.entity, c.class));
        Ok(all
            .into_iter()
            .map(|c| (c.entity, c.class, c.data.map(f32::to_bits)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcell::MachineConfig;

    #[test]
    fn variant_counts_match_the_paper() {
        assert_eq!(KIND_VARIANTS.iter().sum::<u32>(), 106, "paper: >100");
        assert_eq!(*KIND_VARIANTS.iter().max().unwrap(), 40, "paper: max 40");
        assert_eq!(KIND_COUNT, 13, "paper: 13 type-specialised offloads");
    }

    #[test]
    fn component_is_32_bytes() {
        assert_eq!(Component::SIZE, 32);
    }

    fn build(entities: u32) -> (Machine, ComponentSystem) {
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let system = ComponentSystem::build(&mut machine, entities, 99).unwrap();
        (machine, system)
    }

    #[test]
    fn build_reproduces_the_papers_counts() {
        let (_, system) = build(100);
        assert_eq!(system.component_count(), 1300, "paper: ~1300 vcalls/frame");
        assert_eq!(system.monolithic_annotations(), 106);
        assert_eq!(system.max_specialised_annotations(), 40);
    }

    #[test]
    fn host_update_runs_all_vcalls() {
        let (mut machine, system) = build(10);
        let stats = system.update_host(&mut machine).unwrap();
        assert_eq!(stats.vcalls, 130);
        assert!(stats.host_cycles > 0);
        assert_eq!(stats.layout, SystemLayout::Host);
    }

    #[test]
    fn monolithic_and_specialised_compute_identical_results() {
        let (mut m1, s1) = build(20);
        s1.update_monolithic_offloaded(&mut m1, 0).unwrap();
        let r1 = s1
            .snapshot_canonical(&m1, SystemLayout::Monolithic)
            .unwrap();

        let (mut m2, s2) = build(20);
        s2.update_specialised_offloaded(&mut m2, 0).unwrap();
        let r2 = s2
            .snapshot_canonical(&m2, SystemLayout::TypeSpecialised)
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn host_and_monolithic_compute_identical_results() {
        let (mut m1, s1) = build(12);
        s1.update_host(&mut m1).unwrap();
        let r1 = s1.snapshot_canonical(&m1, SystemLayout::Host).unwrap();

        let (mut m2, s2) = build(12);
        s2.update_monolithic_offloaded(&mut m2, 0).unwrap();
        let r2 = s2
            .snapshot_canonical(&m2, SystemLayout::Monolithic)
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn restructuring_wins_despite_13x_launch_overhead() {
        let (mut m1, s1) = build(100);
        let mono = s1.update_monolithic_offloaded(&mut m1, 0).unwrap();
        let (mut m2, s2) = build(100);
        let spec = s2.update_specialised_offloaded(&mut m2, 0).unwrap();

        assert_eq!(mono.vcalls, 1300);
        assert_eq!(spec.vcalls, 1300);
        assert_eq!(spec.offloads, 13);
        assert!(
            spec.host_cycles * 2 < mono.host_cycles,
            "specialised should win big: {} vs {}",
            spec.host_cycles,
            mono.host_cycles
        );
        assert!(spec.max_domain_size < mono.max_domain_size);
    }

    #[test]
    fn updates_are_race_free() {
        let (mut machine, system) = build(20);
        system.update_monolithic_offloaded(&mut machine, 0).unwrap();
        system
            .update_specialised_offloaded(&mut machine, 0)
            .unwrap();
        assert_eq!(machine.races_detected(), 0);
    }

    #[test]
    fn transforms_are_deterministic_and_distinct() {
        let mut a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut b = a;
        t_transform(&mut a);
        t_transform(&mut b);
        assert_eq!(a.map(f32::to_bits), b.map(f32::to_bits));
        // Each kind's transform does something (on a generic payload).
        for (i, t) in KIND_TRANSFORMS.iter().enumerate() {
            let before = [1.5f32, 2.5, 3.5, 4.5, 5.5, 6.5];
            let mut after = before;
            t(&mut after);
            assert_ne!(
                before.map(f32::to_bits),
                after.map(f32::to_bits),
                "kind {} transform is a no-op",
                KIND_NAMES[i]
            );
        }
    }
}
