//! Game-engine workload substrate.
//!
//! The paper draws all of its evidence from AAA game codebases: frame
//! loops of "parallel, distinct tasks with well defined synchronisation
//! points", tasks that perform "complex processing on relatively small
//! numbers of objects (100's – 1000's)" for "animation, AI, collision
//! detection, physics, and rendering", an abstract component system
//! doing ">1300 virtual calls per frame", and collision-pair response
//! code moved by explicit DMA (Figure 1). We cannot ship a AAA game, but
//! every one of those *structural* facts is synthesisable — this crate
//! regenerates them at the stated scale on the simulated machine:
//!
//! - [`math`] / [`entity`]: vector math and the 64-byte `GameEntity`,
//! - [`components`]: the abstract component system in both its
//!   *monolithic* (pre-restructuring) and *type-specialised*
//!   (post-restructuring) forms, with the paper's annotation counts,
//! - [`collision`]: broad-phase pair finding plus the Figure 1 pair
//!   response in blocking / tagged / pipelined DMA styles,
//! - [`ai`]: the offloadable strategy computation of Figure 2,
//! - [`graph`]: the seeded entity-interaction graph (CSR in main
//!   memory) with BFS / connected components three ways — naive remote
//!   derefs, autotuned software cache, batched frontier gather,
//! - [`frame`]: the `GameWorld::doFrame` loop, sequential and offloaded,
//! - [`workload`]: seeded, deterministic scenario generators.
//!
//! # Example
//!
//! ```
//! use gamekit::{run_frame, AiConfig, EntityArray, FrameSchedule, WorldGen};
//! use simcell::{Machine, MachineConfig, SimError};
//!
//! # fn main() -> Result<(), SimError> {
//! let mut machine = Machine::new(MachineConfig::small())?;
//! let entities = EntityArray::alloc(&mut machine, 64)?;
//! let mut gen = WorldGen::new(7);
//! gen.populate(&mut machine, &entities, 40.0)?;
//! let table = gen.candidate_table(&mut machine, 64, AiConfig::default().candidates)?;
//! let stats = run_frame(
//!     &mut machine,
//!     &entities,
//!     table,
//!     &AiConfig::default(),
//!     FrameSchedule::Offloaded { accel: 0 },
//! )?;
//! assert!(stats.schedule_was_offloaded);
//! assert!(stats.host_cycles > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ai;
pub mod collision;
pub mod components;
pub mod entity;
pub mod frame;
pub mod graph;
pub mod math;
pub mod stages;
pub mod workload;

pub use ai::{
    ai_frame_host, ai_frame_offloaded, ai_frame_offloaded_tiled, ai_frame_sched,
    ai_frame_sched_recovering, ai_frame_sched_recovering_buffered, AiConfig,
};
pub use collision::{
    detect_collisions_host, respond_pairs_blocking, respond_pairs_host, respond_pairs_streamed,
    respond_pairs_tagged, CollisionPair,
};
pub use components::{ComponentSystem, ComponentSystemStats, SystemLayout};
pub use entity::{EntityArray, GameEntity};
pub use frame::{run_frame, FrameSchedule, FrameStats};
pub use graph::{run_bfs, run_components, GraphAccess, InteractionGraph};
pub use math::Vec3;
pub use stages::{
    stage_fn, staged_frame_fanout, staged_frame_pipeline, staged_frame_sequential, FrameStage,
    FRAME_STAGES,
};
pub use workload::WorldGen;
