//! Minimal 3D vector math with an explicit simulated-memory layout.

use memspace::impl_pod;

impl_pod! {
    /// A 3-component single-precision vector (12 bytes in simulated
    /// memory, packed little-endian — the layout game code DMAs around).
    #[derive(PartialEq, Default)]
    pub struct Vec3 {
        /// X component.
        pub x: f32,
        /// Y component.
        pub y: f32,
        /// Z component.
        pub z: f32,
    }
}

#[allow(clippy::should_implement_trait)] // `add`/`sub` deliberately mirror the operator impls
impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    pub fn new(x: f32, y: f32, z: f32) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Component-wise addition.
    pub fn add(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }

    /// Component-wise subtraction.
    pub fn sub(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    /// Scalar multiplication.
    pub fn scale(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Squared length (avoids the square root, as game code does in
    /// broad phases).
    pub fn length_sq(self) -> f32 {
        self.dot(self)
    }

    /// Length.
    pub fn length(self) -> f32 {
        self.length_sq().sqrt()
    }

    /// Squared distance to `other`.
    pub fn distance_sq(self, other: Vec3) -> f32 {
        self.sub(other).length_sq()
    }

    /// A unit vector in this direction, or zero for the zero vector.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 1e-12 {
            self.scale(1.0 / len)
        } else {
            Vec3::ZERO
        }
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, other: Vec3) -> Vec3 {
        Vec3::add(self, other)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, other: Vec3) -> Vec3 {
        Vec3::sub(self, other)
    }
}

impl std::ops::Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        self.scale(s)
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memspace::Pod;

    #[test]
    fn pod_layout_is_12_bytes() {
        assert_eq!(Vec3::SIZE, 12);
        let v = Vec3::new(1.0, -2.0, 3.5);
        let mut buf = [0u8; 12];
        v.write_to(&mut buf);
        assert_eq!(Vec3::read_from(&buf), v);
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a.length_sq(), 14.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).length(), 5.0);
        assert_eq!(a.distance_sq(b), 27.0);
    }

    #[test]
    fn normalization() {
        let n = Vec3::new(10.0, 0.0, 0.0).normalized();
        assert!((n.x - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Vec3::ZERO.to_string(), "(0.000, 0.000, 0.000)");
    }
}
