//! The staged frame: skinning → collision → resolve as a pipeline.
//!
//! The paper's frame loop offloads *distinct* tasks; this module carves
//! one task chain into *dependent* per-entity stages so the streaming
//! pipeline ([`offload_rt::pipeline`]) has a game-shaped workload to
//! chew on:
//!
//! 1. **Skinning** ([`FrameStage::Skin`]): advance the pose — integrate
//!    position by velocity and damp the animation blend.
//! 2. **Collision** ([`FrameStage::Collide`]): test the skinned pose
//!    against the world bounds, reflecting velocity and clamping the
//!    position on contact.
//! 3. **Resolve** ([`FrameStage::Resolve`]): apply the contact response
//!    — chip health on impact, settle the AI state.
//!
//! Every stage is an *entity-local* transform (entity `i`'s output
//!  depends only on entity `i`'s input), so any chunking of the entity
//! array — sequential stage-by-stage, tile fan-out with barriers, or
//! the overlapped pipeline — produces the bit-identical world; only the
//! simulated cycle counts differ. That property is what E17 and the
//! pipeline determinism gate in CI assert.
//!
//! Per-entity costs are charged explicitly ([`FrameStage::cost`]),
//! sized like the paper's tasks: complex processing on hundreds to
//! thousands of objects, heavy enough that transfer and launch overhead
//! can actually be hidden behind compute.

use memspace::Pod;
use offload_rt::pipeline::MachinePipelineExt;
use offload_rt::sched::{SchedExt, SchedPolicy};
use offload_rt::stream::{process_stream, StreamConfig};
use offload_rt::{PipeReport, SchedReport};
use simcell::{AccelCtx, Machine, SimError};

use crate::entity::{state, EntityArray, GameEntity};

/// Frame timestep the skinning stage integrates by.
pub const FRAME_DT: f32 = 1.0 / 60.0;

/// Half-extent of the world box the collision stage tests against.
pub const WORLD_HALF: f32 = 50.0;

/// The dependent stages of the staged frame, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameStage {
    /// Pose integration (animation/skinning).
    Skin,
    /// World-bounds collision test and reflection.
    Collide,
    /// Contact response: health and AI state settlement.
    Resolve,
}

/// All stages, in the order the frame runs them.
pub const FRAME_STAGES: [FrameStage; 3] =
    [FrameStage::Skin, FrameStage::Collide, FrameStage::Resolve];

impl FrameStage {
    /// The stage's trace label.
    pub fn name(self) -> &'static str {
        match self {
            FrameStage::Skin => "skin",
            FrameStage::Collide => "collide",
            FrameStage::Resolve => "resolve",
        }
    }

    /// Simulated compute cycles the stage charges per entity (the
    /// "complex processing" the paper's tasks do between transfers).
    pub fn cost(self) -> u64 {
        match self {
            FrameStage::Skin => 220,
            FrameStage::Collide => 180,
            FrameStage::Resolve => 160,
        }
    }

    /// Applies the stage's transform to one entity. Entity-local and
    /// bit-deterministic: fixed-order `f32` arithmetic on this entity
    /// alone, so any chunking/ordering of the array yields the same
    /// world.
    pub fn apply(self, e: &mut GameEntity) {
        match self {
            FrameStage::Skin => {
                e.pos = e.pos.add(e.vel.scale(FRAME_DT));
                // Damp the blend the way an animation mixer settles.
                e.vel = e.vel.scale(0.995);
                e.pad[0] = 0;
            }
            FrameStage::Collide => {
                let mut hit = 0u32;
                let limit = WORLD_HALF - e.radius;
                let axes = [
                    (&mut e.pos.x, &mut e.vel.x),
                    (&mut e.pos.y, &mut e.vel.y),
                    (&mut e.pos.z, &mut e.vel.z),
                ];
                for (p, v) in axes {
                    if *p > limit {
                        *p = limit;
                        *v = -*v;
                        hit += 1;
                    } else if *p < -limit {
                        *p = -limit;
                        *v = -*v;
                        hit += 1;
                    }
                }
                // Stash the contact count for the resolve stage.
                e.pad[0] = hit;
            }
            FrameStage::Resolve => {
                let hits = e.pad[0];
                if hits > 0 {
                    // Impact chip proportional to speed, one per axis hit.
                    let speed_sq = e.vel.length_sq();
                    e.health -= hits as f32 * (0.01 * speed_sq + 0.1);
                    e.state = if e.health < 15.0 {
                        state::FLEE
                    } else {
                        state::SEEK
                    };
                } else if e.state == state::SEEK && e.vel.length_sq() < 0.25 {
                    e.state = state::IDLE;
                }
                e.pad[0] = 0;
            }
        }
    }
}

/// The stage as a streaming closure: applies [`FrameStage::apply`] to
/// every entity in the chunk and charges [`FrameStage::cost`] cycles
/// per entity — the shape both [`process_stream`] and the pipeline
/// builder take.
pub fn stage_fn(
    stage: FrameStage,
) -> impl FnMut(&mut AccelCtx<'_>, u32, &mut [GameEntity]) -> Result<(), SimError> {
    move |ctx, _, chunk| {
        for e in chunk.iter_mut() {
            stage.apply(e);
        }
        ctx.compute(stage.cost() * chunk.len() as u64);
        Ok(())
    }
}

/// Runs the staged frame sequentially: one offload per stage on
/// accelerator 0, each streaming the whole entity array before the
/// next stage starts — the baseline the pipeline's overlap is measured
/// against. Returns the host cycles the frame took.
///
/// # Errors
///
/// Propagates machine and transfer errors.
pub fn staged_frame_sequential(
    machine: &mut Machine,
    entities: &EntityArray,
    chunk_elems: u32,
) -> Result<u64, SimError> {
    let t0 = machine.host_now();
    let (base, len) = (entities.base(), entities.len());
    // Match the pipeline's half-chunk double buffering so the only
    // difference is the overlap, not the transfer schedule.
    let config = StreamConfig {
        chunk_elems: (chunk_elems / 2).max(1),
        write_back: true,
    };
    for stage in FRAME_STAGES {
        machine.offload(0).label(stage.name()).run(|ctx| {
            process_stream::<GameEntity, _>(ctx, base, len, config, stage_fn(stage))
        })??;
    }
    Ok(machine.host_now() - t0)
}

/// Runs the staged frame through the streaming pipeline: stage `k` on
/// accelerator `k`, chunks of `chunk_elems` entities flowing through
/// bounded queues `buffers` deep.
///
/// # Errors
///
/// Propagates machine and transfer errors; [`SimError::BadConfig`] if
/// the machine has fewer than three accelerators.
pub fn staged_frame_pipeline(
    machine: &mut Machine,
    entities: &EntityArray,
    chunk_elems: u32,
    buffers: u32,
) -> Result<PipeReport, SimError> {
    let (base, len) = (entities.base(), entities.len());
    machine
        .pipeline()
        .stage_named(FrameStage::Skin.name(), stage_fn(FrameStage::Skin))
        .stage_named(FrameStage::Collide.name(), stage_fn(FrameStage::Collide))
        .stage_named(FrameStage::Resolve.name(), stage_fn(FrameStage::Resolve))
        .chunk(chunk_elems)
        .buffers(buffers)
        .run(base, len)
}

/// Runs the staged frame as barriered tile fan-outs: each stage is
/// split into one tile per accelerator across *all* lanes, and the
/// next stage starts only after the previous one fully joins (stages
/// are dependent, so the barrier is mandatory). Returns the host
/// cycles plus the last stage's [`SchedReport`].
///
/// # Errors
///
/// Propagates machine and scheduler errors.
pub fn staged_frame_fanout(
    machine: &mut Machine,
    entities: &EntityArray,
    chunk_elems: u32,
) -> Result<(u64, SchedReport), SimError> {
    let t0 = machine.host_now();
    let (base, len) = (entities.base(), entities.len());
    let lanes = u32::from(machine.accel_count());
    let tiles = len.div_ceil(chunk_elems).min(lanes).max(1);
    let per_tile = len.div_ceil(tiles);
    let config = StreamConfig {
        chunk_elems: (chunk_elems / 2).max(1),
        write_back: true,
    };
    let mut last = None;
    for stage in FRAME_STAGES {
        let mut f = stage_fn(stage);
        let (_, report) = machine
            .offload(0)
            .label(stage.name())
            .sched(SchedPolicy::Static)
            .run_tiles(tiles, |ctx, tile| {
                let first = tile * per_tile;
                let n = per_tile.min(len - first);
                let remote = base.element(first, GameEntity::SIZE as u32)?;
                process_stream::<GameEntity, _>(ctx, remote, n, config, |ctx, off, slice| {
                    f(ctx, first + off, slice)
                })
            })?;
        last = Some(report);
    }
    let report = last.expect("FRAME_STAGES is non-empty");
    Ok((machine.host_now() - t0, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorldGen;
    use simcell::MachineConfig;

    fn world(n: u32) -> (Machine, EntityArray) {
        let mut m = Machine::new(MachineConfig::default()).unwrap();
        let arr = EntityArray::alloc(&mut m, n).unwrap();
        WorldGen::new(42)
            .populate(&mut m, &arr, 2.0 * WORLD_HALF)
            .unwrap();
        (m, arr)
    }

    #[test]
    fn all_three_schedules_agree_bit_for_bit() {
        let (mut seq, e1) = world(512);
        staged_frame_sequential(&mut seq, &e1, 64).unwrap();
        let (mut pipe, e2) = world(512);
        staged_frame_pipeline(&mut pipe, &e2, 64, 2).unwrap();
        let (mut fan, e3) = world(512);
        staged_frame_fanout(&mut fan, &e3, 64).unwrap();
        assert_eq!(seq.memory_hash(), pipe.memory_hash());
        assert_eq!(seq.memory_hash(), fan.memory_hash());
        assert_eq!(
            e1.snapshot(&seq).unwrap(),
            e2.snapshot(&pipe).unwrap(),
            "same entities out of the pipeline"
        );
    }

    #[test]
    fn pipeline_overlap_beats_sequential() {
        let (mut seq, e1) = world(1024);
        let seq_cycles = staged_frame_sequential(&mut seq, &e1, 64).unwrap();
        let (mut pipe, e2) = world(1024);
        let report = staged_frame_pipeline(&mut pipe, &e2, 64, 2).unwrap();
        assert!(
            (report.cycles as f64) * 1.3 <= seq_cycles as f64,
            "overlap must win by 1.3x: pipeline {} vs sequential {seq_cycles}",
            report.cycles
        );
    }

    #[test]
    fn stages_actually_do_something() {
        let (mut m, arr) = world(64);
        let before = arr.snapshot(&m).unwrap();
        staged_frame_sequential(&mut m, &arr, 32).unwrap();
        let after = arr.snapshot(&m).unwrap();
        assert_ne!(before, after, "the frame must move the world");
        // Collisions happen in a world populated out to the walls.
        assert!(
            after.iter().any(|e| e.state != state::IDLE),
            "some entity should have settled into a non-idle state"
        );
        assert!(after.iter().all(|e| e.pad[0] == 0), "scratch cleared");
    }

    #[test]
    fn collision_reflects_and_clamps() {
        let mut e = GameEntity {
            pos: crate::math::Vec3::new(WORLD_HALF + 1.0, 0.0, 0.0),
            vel: crate::math::Vec3::new(3.0, 0.0, 0.0),
            radius: 1.0,
            health: 50.0,
            ..GameEntity::default()
        };
        FrameStage::Collide.apply(&mut e);
        assert_eq!(e.pad[0], 1);
        assert_eq!(e.pos.x, WORLD_HALF - 1.0);
        assert_eq!(e.vel.x, -3.0);
        FrameStage::Resolve.apply(&mut e);
        assert!(e.health < 50.0);
        assert_eq!(e.state, state::SEEK);
        assert_eq!(e.pad[0], 0);
    }
}
