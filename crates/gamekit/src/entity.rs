//! Game entities and their main-memory storage.

use memspace::{impl_pod, Addr, Pod};
use simcell::{Machine, SimError};

use crate::math::Vec3;

/// AI states an entity can be in (stored in [`GameEntity::state`]).
pub mod state {
    /// Standing around.
    pub const IDLE: u32 = 0;
    /// Moving towards its target.
    pub const SEEK: u32 = 1;
    /// In range, attacking its target.
    pub const ATTACK: u32 = 2;
    /// Low health, running away.
    pub const FLEE: u32 = 3;
}

impl_pod! {
    /// A game entity as stored in simulated main memory.
    ///
    /// Exactly 64 bytes (one host cache line, four DMA quadwords) — the
    /// size class games actually use for hot per-entity data. The first
    /// field is the class-id header used by the dispatch machinery in
    /// [`offload_rt::domain`].
    #[derive(PartialEq, Default)]
    pub struct GameEntity {
        /// Class id header (offset 0, the "vtable pointer").
        pub class: u32,
        /// World position.
        pub pos: Vec3,
        /// Velocity.
        pub vel: Vec3,
        /// Collision radius.
        pub radius: f32,
        /// Hit points.
        pub health: f32,
        /// AI state (see [`state`]).
        pub state: u32,
        /// Index of the entity's current target.
        pub target: u32,
        /// Padding to 64 bytes (reserved).
        pub pad: [u32; 5],
    }
}

impl GameEntity {
    /// Byte size as a `u32`, for address arithmetic.
    pub const STRIDE: u32 = GameEntity::SIZE as u32;
}

/// A main-memory array of entities plus typed access helpers.
///
/// # Example
///
/// ```
/// use gamekit::{EntityArray, GameEntity};
/// use simcell::{Machine, MachineConfig};
///
/// # fn main() -> Result<(), simcell::SimError> {
/// let mut machine = Machine::new(MachineConfig::small())?;
/// let entities = EntityArray::alloc(&mut machine, 100)?;
/// let mut e = GameEntity::default();
/// e.health = 50.0;
/// entities.store(&mut machine, 7, &e)?;
/// assert_eq!(entities.load(&machine, 7)?.health, 50.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EntityArray {
    base: Addr,
    count: u32,
}

impl EntityArray {
    /// Allocates an array of `count` zeroed entities in main memory.
    ///
    /// # Errors
    ///
    /// Fails when main memory is exhausted.
    pub fn alloc(machine: &mut Machine, count: u32) -> Result<EntityArray, SimError> {
        let base = machine.alloc_main_slice::<GameEntity>(count)?;
        Ok(EntityArray { base, count })
    }

    /// Base address of the array.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of entities.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Address of entity `index`.
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds.
    pub fn addr_of(&self, index: u32) -> Result<Addr, SimError> {
        if index >= self.count {
            return Err(SimError::Memory(memspace::MemError::OutOfBounds {
                space: self.base.space(),
                offset: index,
                len: GameEntity::STRIDE,
                capacity: self.count * GameEntity::STRIDE,
            }));
        }
        Ok(self.base.element(index, GameEntity::STRIDE)?)
    }

    /// Reads entity `index` without charging time (setup/inspection).
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds.
    pub fn load(&self, machine: &Machine, index: u32) -> Result<GameEntity, SimError> {
        Ok(machine.main().read_pod(self.addr_of(index)?)?)
    }

    /// Writes entity `index` without charging time (setup/inspection).
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds.
    pub fn store(
        &self,
        machine: &mut Machine,
        index: u32,
        entity: &GameEntity,
    ) -> Result<(), SimError> {
        Ok(machine.main_mut().write_pod(self.addr_of(index)?, entity)?)
    }

    /// Reads entity `index` on the host, charging host time.
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds.
    pub fn host_load(&self, machine: &mut Machine, index: u32) -> Result<GameEntity, SimError> {
        let addr = self.addr_of(index)?;
        machine.host_read_pod(addr)
    }

    /// Writes entity `index` on the host, charging host time.
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of bounds.
    pub fn host_store(
        &self,
        machine: &mut Machine,
        index: u32,
        entity: &GameEntity,
    ) -> Result<(), SimError> {
        let addr = self.addr_of(index)?;
        machine.host_write_pod(addr, entity)
    }

    /// Reads the whole array without charging time (inspection).
    ///
    /// # Errors
    ///
    /// Fails on bounds violations.
    pub fn snapshot(&self, machine: &Machine) -> Result<Vec<GameEntity>, SimError> {
        Ok(machine.main().read_pod_slice(self.base, self.count)?)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // building test fixtures field-by-field reads best
mod tests {
    use super::*;
    use simcell::MachineConfig;

    #[test]
    fn entity_is_exactly_64_bytes() {
        assert_eq!(GameEntity::SIZE, 64);
        assert_eq!(GameEntity::STRIDE, 64);
    }

    #[test]
    fn entity_roundtrips_through_memory() {
        let e = GameEntity {
            class: 3,
            pos: Vec3::new(1.0, 2.0, 3.0),
            vel: Vec3::new(-1.0, 0.0, 0.5),
            radius: 2.5,
            health: 80.0,
            state: state::SEEK,
            target: 42,
            pad: [0; 5],
        };
        let mut buf = [0u8; 64];
        e.write_to(&mut buf);
        assert_eq!(GameEntity::read_from(&buf), e);
    }

    #[test]
    fn array_store_and_load() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let arr = EntityArray::alloc(&mut m, 10).unwrap();
        assert_eq!(arr.len(), 10);
        assert!(!arr.is_empty());
        let mut e = GameEntity::default();
        e.target = 5;
        arr.store(&mut m, 9, &e).unwrap();
        assert_eq!(arr.load(&m, 9).unwrap().target, 5);
        assert_eq!(arr.load(&m, 0).unwrap(), GameEntity::default());
    }

    #[test]
    fn out_of_bounds_index_is_rejected() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let arr = EntityArray::alloc(&mut m, 10).unwrap();
        assert!(arr.addr_of(10).is_err());
        assert!(arr.load(&m, 11).is_err());
    }

    #[test]
    fn host_access_charges_one_cache_line() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let arr = EntityArray::alloc(&mut m, 4).unwrap();
        let t0 = m.host_now();
        let _ = arr.host_load(&mut m, 0).unwrap();
        assert_eq!(m.host_now() - t0, m.cost().host_mem_access);
    }

    #[test]
    fn snapshot_reads_everything() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let arr = EntityArray::alloc(&mut m, 3).unwrap();
        let mut e = GameEntity::default();
        e.health = 1.0;
        arr.store(&mut m, 2, &e).unwrap();
        let all = arr.snapshot(&m).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].health, 1.0);
    }
}
