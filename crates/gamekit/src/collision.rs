//! Collision detection and the Figure 1 pair-response workload.
//!
//! Figure 1 of the paper is SPE code that pulls the two `GameEntity`s of
//! a collision pair into local store with tagged DMA, runs
//! `do_collision_response`, and writes them back. This module implements
//! that workload in four styles so experiment E1 can compare them:
//!
//! - [`respond_pairs_host`]: host-only baseline,
//! - [`respond_pairs_blocking`]: accelerator, waiting after every
//!   command (what naive code does),
//! - [`respond_pairs_tagged`]: the paper's Figure 1 — both gets under
//!   one tag, one wait, compute, both puts, one wait,
//! - [`respond_pairs_streamed`]: additionally prefetches the next
//!   pair's entities while responding to the current pair.
//!
//! [`detect_collisions_host`] is the broad phase used by the frame loop
//! (host side, as in Figure 2's `detectCollisions`).

use std::collections::HashMap;

use dma::Tag;
use memspace::Addr;
use offload_rt::{ArrayAccessor, RemoteSlice};
use simcell::{AccelCtx, Machine, SimError};

use crate::entity::{EntityArray, GameEntity};

/// Cycles of pure computation per pair response (impulse resolution,
/// a dozen or two FLOPs plus branches).
pub const RESPONSE_COMPUTE: u64 = 60;

/// Cycles per candidate distance test in the broad phase.
pub const BROADPHASE_TEST_COMPUTE: u64 = 8;

/// A pair of entity indices that may be colliding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CollisionPair {
    /// Index of the first entity.
    pub first: u32,
    /// Index of the second entity.
    pub second: u32,
}

/// The pure collision response: separate the entities along their
/// centre line, reflect velocities, and apply a little damage.
///
/// Deterministic so every execution style produces bit-identical
/// results (the correctness check of experiment E1).
pub fn collision_response(a: &mut GameEntity, b: &mut GameEntity) {
    let delta = b.pos.sub(a.pos);
    let dist_sq = delta.length_sq().max(1e-6);
    let normal = delta.scale(1.0 / dist_sq.sqrt());
    // Push apart proportionally to overlap.
    let overlap = (a.radius + b.radius) - dist_sq.sqrt();
    if overlap > 0.0 {
        let push = normal.scale(overlap * 0.5);
        a.pos = a.pos.sub(push);
        b.pos = b.pos.add(push);
    }
    // Exchange the normal components of velocity (equal masses).
    let va = a.vel.dot(normal);
    let vb = b.vel.dot(normal);
    a.vel = a.vel.add(normal.scale(vb - va));
    b.vel = b.vel.add(normal.scale(va - vb));
    // Contact damage.
    a.health -= 0.5;
    b.health -= 0.5;
}

/// Runs the response for every pair on the host, reading and writing
/// entities through the host's (charged) memory path.
///
/// # Errors
///
/// Fails on bounds violations.
pub fn respond_pairs_host(
    machine: &mut Machine,
    entities: &EntityArray,
    pairs: &[CollisionPair],
) -> Result<(), SimError> {
    for pair in pairs {
        let mut a = entities.host_load(machine, pair.first)?;
        let mut b = entities.host_load(machine, pair.second)?;
        collision_response(&mut a, &mut b);
        machine.host_compute(RESPONSE_COMPUTE);
        entities.host_store(machine, pair.first, &a)?;
        entities.host_store(machine, pair.second, &b)?;
    }
    Ok(())
}

/// Reads the pair list (an array of `2 * pair_count` `u32` indices in
/// main memory) into local store with one bulk transfer.
fn fetch_pairs(
    ctx: &mut AccelCtx<'_>,
    pairs_addr: Addr,
    pair_count: u32,
) -> Result<Vec<CollisionPair>, SimError> {
    let accessor = ArrayAccessor::<u32>::fetch(ctx, pairs_addr, pair_count * 2)?;
    let flat = accessor.to_vec(ctx)?;
    Ok(flat
        .chunks(2)
        .map(|c| CollisionPair {
            first: c[0],
            second: c[1],
        })
        .collect())
}

/// Accelerator response, fully blocking: every DMA command is waited on
/// individually before the next is issued.
///
/// # Errors
///
/// Fails on allocation or transfer failures.
pub fn respond_pairs_blocking(
    ctx: &mut AccelCtx<'_>,
    entities: &EntityArray,
    pairs_addr: Addr,
    pair_count: u32,
) -> Result<(), SimError> {
    let pairs = fetch_pairs(ctx, pairs_addr, pair_count)?;
    let buf_a = ctx.alloc_local_pod::<GameEntity>()?;
    let buf_b = ctx.alloc_local_pod::<GameEntity>()?;
    let tag = Tag::new(0).expect("tag 0 is valid");
    for pair in pairs {
        let ra = entities.addr_of(pair.first)?;
        let rb = entities.addr_of(pair.second)?;
        ctx.dma_get(buf_a, ra, GameEntity::STRIDE, tag)?;
        ctx.dma_wait_tag(tag);
        ctx.dma_get(buf_b, rb, GameEntity::STRIDE, tag)?;
        ctx.dma_wait_tag(tag);
        let mut a: GameEntity = ctx.local_read_pod(buf_a)?;
        let mut b: GameEntity = ctx.local_read_pod(buf_b)?;
        collision_response(&mut a, &mut b);
        ctx.compute(RESPONSE_COMPUTE);
        ctx.local_write_pod(buf_a, &a)?;
        ctx.local_write_pod(buf_b, &b)?;
        ctx.dma_put(buf_a, ra, GameEntity::STRIDE, tag)?;
        ctx.dma_wait_tag(tag);
        ctx.dma_put(buf_b, rb, GameEntity::STRIDE, tag)?;
        ctx.dma_wait_tag(tag);
    }
    Ok(())
}

/// Accelerator response in the paper's Figure 1 style: the two gets are
/// issued under one tag and waited once (they proceed in parallel), as
/// are the two puts.
///
/// # Errors
///
/// Fails on allocation or transfer failures.
pub fn respond_pairs_tagged(
    ctx: &mut AccelCtx<'_>,
    entities: &EntityArray,
    pairs_addr: Addr,
    pair_count: u32,
) -> Result<(), SimError> {
    let pairs = fetch_pairs(ctx, pairs_addr, pair_count)?;
    let buf_a = ctx.alloc_local_pod::<GameEntity>()?;
    let buf_b = ctx.alloc_local_pod::<GameEntity>()?;
    let tag = Tag::new(0).expect("tag 0 is valid");
    for pair in pairs {
        let ra = entities.addr_of(pair.first)?;
        let rb = entities.addr_of(pair.second)?;
        // dma_get(&e1, ..., t); dma_get(&e2, ..., t); dma_wait(t);
        ctx.dma_get(buf_a, ra, GameEntity::STRIDE, tag)?;
        ctx.dma_get(buf_b, rb, GameEntity::STRIDE, tag)?;
        ctx.dma_wait_tag(tag);
        let mut a: GameEntity = ctx.local_read_pod(buf_a)?;
        let mut b: GameEntity = ctx.local_read_pod(buf_b)?;
        collision_response(&mut a, &mut b);
        ctx.compute(RESPONSE_COMPUTE);
        ctx.local_write_pod(buf_a, &a)?;
        ctx.local_write_pod(buf_b, &b)?;
        ctx.dma_put(buf_a, ra, GameEntity::STRIDE, tag)?;
        ctx.dma_put(buf_b, rb, GameEntity::STRIDE, tag)?;
        ctx.dma_wait_tag(tag);
    }
    Ok(())
}

/// Accelerator response with pair pipelining: two pair slots alternate
/// so the next pair's entities stream in while the current pair is
/// being resolved.
///
/// When consecutive pairs share an entity the pipeline drains first —
/// overlapping an in-flight put of an entity with a get of the same
/// entity would be a real DMA race (and the checker would say so).
///
/// # Errors
///
/// Fails on allocation or transfer failures.
pub fn respond_pairs_streamed(
    ctx: &mut AccelCtx<'_>,
    entities: &EntityArray,
    pairs_addr: Addr,
    pair_count: u32,
) -> Result<(), SimError> {
    let pairs = fetch_pairs(ctx, pairs_addr, pair_count)?;
    if pairs.is_empty() {
        return Ok(());
    }
    // Two slots, each with buffers for both entities and its own tag.
    let slots = [
        (
            ctx.alloc_local_pod::<GameEntity>()?,
            ctx.alloc_local_pod::<GameEntity>()?,
            Tag::new(0).expect("valid"),
        ),
        (
            ctx.alloc_local_pod::<GameEntity>()?,
            ctx.alloc_local_pod::<GameEntity>()?,
            Tag::new(1).expect("valid"),
        ),
    ];
    let shares_entity = |x: &CollisionPair, y: &CollisionPair| {
        x.first == y.first || x.first == y.second || x.second == y.first || x.second == y.second
    };

    let issue_gets =
        |ctx: &mut AccelCtx<'_>, slot: usize, pair: &CollisionPair| -> Result<(), SimError> {
            let (buf_a, buf_b, tag) = slots[slot];
            ctx.dma_get(
                buf_a,
                entities.addr_of(pair.first)?,
                GameEntity::STRIDE,
                tag,
            )?;
            ctx.dma_get(
                buf_b,
                entities.addr_of(pair.second)?,
                GameEntity::STRIDE,
                tag,
            )?;
            Ok(())
        };

    // Prime slot 0.
    issue_gets(ctx, 0, &pairs[0])?;
    for i in 0..pairs.len() {
        let cur = i % 2;
        let nxt = 1 - cur;
        let (buf_a, buf_b, tag) = slots[cur];
        // Prefetch the next pair into the other slot — but only when it
        // shares no entity with the current pair. Prefetching a shared
        // entity would let this pair's write-back race the prefetch on
        // the entity's bytes in main memory; in that case the fetch is
        // deferred to after the write-back below.
        let next_conflicts = i + 1 < pairs.len() && shares_entity(&pairs[i], &pairs[i + 1]);
        if i + 1 < pairs.len() && !next_conflicts {
            ctx.dma_wait_tag(slots[nxt].2);
            issue_gets(ctx, nxt, &pairs[i + 1])?;
        }
        ctx.dma_wait_tag(tag);
        let mut a: GameEntity = ctx.local_read_pod(buf_a)?;
        let mut b: GameEntity = ctx.local_read_pod(buf_b)?;
        collision_response(&mut a, &mut b);
        ctx.compute(RESPONSE_COMPUTE);
        ctx.local_write_pod(buf_a, &a)?;
        ctx.local_write_pod(buf_b, &b)?;
        ctx.dma_put(
            buf_a,
            entities.addr_of(pairs[i].first)?,
            GameEntity::STRIDE,
            tag,
        )?;
        ctx.dma_put(
            buf_b,
            entities.addr_of(pairs[i].second)?,
            GameEntity::STRIDE,
            tag,
        )?;
        // Not waited here: the puts drain behind the next pair's work.
        if next_conflicts {
            // Deferred, ordered fetch: drain this pair's write-back (and
            // the other slot) before fetching the shared entity.
            ctx.dma_wait_tag(tag);
            ctx.dma_wait_tag(slots[nxt].2);
            issue_gets(ctx, nxt, &pairs[i + 1])?;
        }
    }
    ctx.dma_wait_tag(slots[0].2);
    ctx.dma_wait_tag(slots[1].2);
    Ok(())
}

/// Host broad phase: spatial hashing on a uniform grid, then exact
/// sphere tests within each cell (charged host reads + per-test
/// compute). Returns pairs with `first < second`, each reported once.
///
/// # Errors
///
/// Fails on bounds violations.
pub fn detect_collisions_host(
    machine: &mut Machine,
    entities: &EntityArray,
    cell_size: f32,
) -> Result<Vec<CollisionPair>, SimError> {
    let n = entities.len();
    let all = machine.host_read_slice::<GameEntity>(entities.base(), n)?;
    let key = |v: f32| (v / cell_size).floor() as i32;
    let mut grid: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
    for (i, e) in all.iter().enumerate() {
        machine.host_compute(6); // hash + insert
        grid.entry((key(e.pos.x), key(e.pos.y), key(e.pos.z)))
            .or_default()
            .push(i as u32);
    }
    let mut pairs = Vec::new();
    for bucket in grid.values() {
        for (i, &a) in bucket.iter().enumerate() {
            for &b in &bucket[i + 1..] {
                machine.host_compute(BROADPHASE_TEST_COMPUTE);
                let ea = &all[a as usize];
                let eb = &all[b as usize];
                let r = ea.radius + eb.radius;
                if ea.pos.distance_sq(eb.pos) < r * r {
                    let (first, second) = if a < b { (a, b) } else { (b, a) };
                    pairs.push(CollisionPair { first, second });
                }
            }
        }
    }
    pairs.sort_by_key(|p| (p.first, p.second));
    Ok(pairs)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // building test fixtures field-by-field reads best
mod tests {
    use super::*;
    use crate::math::Vec3;
    use crate::workload::WorldGen;
    use simcell::MachineConfig;

    fn touching_pair() -> (GameEntity, GameEntity) {
        let mut a = GameEntity::default();
        a.pos = Vec3::new(0.0, 0.0, 0.0);
        a.vel = Vec3::new(1.0, 0.0, 0.0);
        a.radius = 1.0;
        a.health = 10.0;
        let mut b = GameEntity::default();
        b.pos = Vec3::new(1.5, 0.0, 0.0);
        b.vel = Vec3::new(-1.0, 0.0, 0.0);
        b.radius = 1.0;
        b.health = 10.0;
        (a, b)
    }

    #[test]
    fn response_separates_and_reflects() {
        let (mut a, mut b) = touching_pair();
        collision_response(&mut a, &mut b);
        assert!(b.pos.x - a.pos.x >= 2.0 - 1e-5, "pushed apart");
        assert!(a.vel.x < 0.0 && b.vel.x > 0.0, "velocities exchanged");
        assert_eq!(a.health, 9.5);
        assert_eq!(b.health, 9.5);
    }

    #[test]
    fn response_is_symmetric_under_momentum() {
        let (mut a, mut b) = touching_pair();
        let before = a.vel.add(b.vel);
        collision_response(&mut a, &mut b);
        let after = a.vel.add(b.vel);
        assert!((before.x - after.x).abs() < 1e-5, "momentum conserved");
    }

    struct Rig {
        machine: Machine,
        entities: EntityArray,
        pairs_addr: Addr,
    }

    fn rig(pair_count: u32) -> Rig {
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let entities = EntityArray::alloc(&mut machine, 256).unwrap();
        let mut gen = WorldGen::new(42);
        gen.populate(&mut machine, &entities, 60.0).unwrap();
        let pairs_addr = gen.collision_pairs(&mut machine, 256, pair_count).unwrap();
        let _ = pair_count;
        Rig {
            machine,
            entities,
            pairs_addr,
        }
    }

    /// Runs one accel style and returns (entity snapshot, accel cycles).
    fn run_style(
        style: fn(&mut AccelCtx<'_>, &EntityArray, Addr, u32) -> Result<(), SimError>,
        pair_count: u32,
    ) -> (Vec<GameEntity>, u64) {
        let mut r = rig(pair_count);
        let entities = r.entities;
        let pairs_addr = r.pairs_addr;
        let handle = r
            .machine
            .offload(0)
            .spawn(move |ctx| style(ctx, &entities, pairs_addr, pair_count))
            .unwrap();
        let elapsed = handle.elapsed();
        r.machine.join(handle).unwrap();
        assert_eq!(r.machine.races_detected(), 0, "style must be race-free");
        (r.entities.snapshot(&r.machine).unwrap(), elapsed)
    }

    #[test]
    fn all_styles_compute_identical_results() {
        // Host reference.
        let mut r = rig(64);
        let flat = r
            .machine
            .main()
            .read_pod_slice::<u32>(r.pairs_addr, 128)
            .unwrap();
        let pairs: Vec<CollisionPair> = flat
            .chunks(2)
            .map(|c| CollisionPair {
                first: c[0],
                second: c[1],
            })
            .collect();
        respond_pairs_host(&mut r.machine, &r.entities, &pairs).unwrap();
        let reference = r.entities.snapshot(&r.machine).unwrap();

        let (blocking, _) = run_style(respond_pairs_blocking, 64);
        let (tagged, _) = run_style(respond_pairs_tagged, 64);
        let (streamed, _) = run_style(respond_pairs_streamed, 64);
        assert_eq!(blocking, reference);
        assert_eq!(tagged, reference);
        assert_eq!(streamed, reference);
    }

    #[test]
    fn tagged_beats_blocking_and_streaming_beats_tagged() {
        let (_, blocking) = run_style(respond_pairs_blocking, 256);
        let (_, tagged) = run_style(respond_pairs_tagged, 256);
        let (_, streamed) = run_style(respond_pairs_streamed, 256);
        assert!(
            tagged < blocking,
            "figure-1 tagging wins: {tagged} vs {blocking}"
        );
        assert!(
            streamed < tagged,
            "pipelining wins further: {streamed} vs {tagged}"
        );
    }

    #[test]
    fn broadphase_finds_exactly_the_overlapping_pairs() {
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let entities = EntityArray::alloc(&mut machine, 4).unwrap();
        let mut place = |i: u32, x: f32, r: f32| {
            let mut e = GameEntity::default();
            e.pos = Vec3::new(x, 0.0, 0.0);
            e.radius = r;
            entities.store(&mut machine, i, &e).unwrap();
        };
        place(0, 0.0, 1.0);
        place(1, 1.5, 1.0); // overlaps 0
        place(2, 10.0, 1.0); // alone
        place(3, 11.0, 1.0); // overlaps 2
        let pairs = detect_collisions_host(&mut machine, &entities, 4.0).unwrap();
        assert_eq!(
            pairs,
            vec![
                CollisionPair {
                    first: 0,
                    second: 1
                },
                CollisionPair {
                    first: 2,
                    second: 3
                }
            ]
        );
    }

    #[test]
    fn broadphase_charges_host_time() {
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let entities = EntityArray::alloc(&mut machine, 128).unwrap();
        WorldGen::new(1)
            .populate(&mut machine, &entities, 30.0)
            .unwrap();
        let t0 = machine.host_now();
        let _ = detect_collisions_host(&mut machine, &entities, 4.0).unwrap();
        assert!(machine.host_now() > t0);
    }

    #[test]
    fn empty_pair_list_is_a_noop() {
        let (snapshot, _) = run_style(respond_pairs_streamed, 0);
        let r = rig(0);
        assert_eq!(snapshot, r.entities.snapshot(&r.machine).unwrap());
    }
}
