//! The farm's central invariant, as a seeded property test: a world's
//! report depends only on its spec — never on how many workers ran the
//! batch or the order the batch was submitted in.

use simfarm::{run_world, Farm, WorldOutput, WorldProgram, WorldSpec};
use xrng::Rng;

/// A mixed bag of specs: plain AI frames, multi-frame worlds, kernel
/// chains, and a faulty world, all derived from `rng`.
fn spec_batch(rng: &mut Rng, count: usize) -> Vec<WorldSpec> {
    (0..count)
        .map(|_| {
            let seed = rng.next_u64();
            let mut spec = WorldSpec::quick(seed);
            match rng.below_u32(4) {
                0 => {
                    if let WorldProgram::AiFrame { ref mut frames, .. } = spec.program {
                        *frames = 2;
                    }
                }
                1 => {
                    spec.program = WorldProgram::KernelChain {
                        kernels: 3 + rng.below_u32(3),
                        compute: 300,
                        payload_words: 16,
                    };
                }
                2 => {
                    spec.faults = Some(simcell::FaultPlan {
                        accel_stall: 0.25,
                        stall_cycles: 50,
                        ..simcell::FaultPlan::new(seed)
                    });
                    spec.retries = 2;
                    spec.backoff = 16;
                }
                _ => {}
            }
            spec
        })
        .collect()
}

fn run_batch(specs: &[WorldSpec], threads: usize) -> Vec<(u64, WorldOutput)> {
    let mut farm = Farm::new(threads).unwrap();
    for spec in specs {
        farm.submit(*spec);
    }
    let mut out: Vec<(u64, WorldOutput)> = farm
        .collect()
        .into_iter()
        .map(|r| (r.seed, r.outcome.expect("batch worlds are well-formed")))
        .collect();
    // Key by seed so differently-shuffled batches compare directly.
    out.sort_by_key(|(seed, _)| *seed);
    out
}

#[test]
fn shuffled_batches_across_worker_counts_are_bit_identical() {
    let mut rng = Rng::new(0x5eed_f00d);
    let specs = spec_batch(&mut rng, 24);

    let reference: Vec<(u64, WorldOutput)> = {
        let mut solo: Vec<(u64, WorldOutput)> = specs
            .iter()
            .map(|s| (s.seed, run_world(s).unwrap()))
            .collect();
        solo.sort_by_key(|(seed, _)| *seed);
        solo
    };

    for threads in [1usize, 2, 4] {
        let mut shuffled = specs.clone();
        rng.shuffle(&mut shuffled);
        let farmed = run_batch(&shuffled, threads);
        assert_eq!(
            farmed, reference,
            "farm output diverged from solo runs at {threads} workers"
        );
    }
}

#[test]
fn resubmitting_the_same_batch_reuses_machines_without_drift() {
    let mut rng = Rng::new(42);
    let specs = spec_batch(&mut rng, 8);
    let mut farm = Farm::new(2).unwrap();
    for spec in &specs {
        farm.submit(*spec);
    }
    let first = farm.collect();
    // Second pass lands on already-warm machines.
    for spec in &specs {
        farm.submit(*spec);
    }
    let second = farm.collect();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.outcome, b.outcome);
    }
}
