//! The worker pool: batch submit, in-order reap.
//!
//! `Farm` follows the FastFlow farm shape — an emitter (the caller,
//! via [`Farm::submit`]), N workers on dedicated OS threads, and a
//! collector (the caller again, via [`Farm::reap`]) — built on the
//! standard library only: `mpsc` injector(s), a results channel, and a
//! reorder buffer keyed by ticket.
//!
//! Two distribution policies, mirroring FastFlow's emitter choices:
//!
//! - [`Farm::new`] — **greedy**: one shared injector, each idle worker
//!   pulls the next job. Best when worlds vary in cost, since a slow
//!   world never blocks the queue behind it.
//! - [`Farm::round_robin`] — **static round-robin**: per-worker
//!   queues, world *k* goes to worker *k mod N*. For uniform batches
//!   this pins the per-worker split exactly, which is what the farm
//!   scaling bench measures — greedy pulling on a box with fewer CPUs
//!   than workers turns bursty (a worker drains many jobs per
//!   timeslice), skewing per-worker totals without being a real
//!   imbalance.
//!
//! Each worker owns one [`Machine`] and recycles it between worlds
//! with [`Machine::reset_for_seed`]; a worker only rebuilds its
//! machine when a spec asks for a different [`MachineConfig`] (or
//! after a world panicked, since a half-run machine is unsalvageable).
//! Because every world runs through [`run_world_in`], the report for a
//! given spec is bit-identical whichever worker picks it up — policy,
//! order, and thread count can only change *when* a world runs, never
//! *what* it computes.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use simcell::{Machine, MachineConfig, SimError};

use crate::cputime::thread_cpu_nanos;
use crate::spec::{run_world_in, WorldOutput, WorldSpec};

/// Receipt for a submitted world; reports come back in ticket order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// Zero-based submission index of the world.
    pub fn index(self) -> u64 {
        self.0
    }
}

/// A finished world, as reaped from the farm.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldReport {
    /// The ticket [`Farm::submit`] returned for this world.
    pub ticket: Ticket,
    /// The seed the world was submitted with.
    pub seed: u64,
    /// The world's output, or the error that stopped it. A panicking
    /// world surfaces as [`SimError::BadConfig`] with the panic text;
    /// it never takes the farm down.
    pub outcome: Result<WorldOutput, SimError>,
    /// Which worker ran the world (0-based). Informational only — the
    /// outcome is worker-independent.
    pub worker: usize,
}

struct Job {
    ticket: u64,
    spec: WorldSpec,
}

/// What a worker blocks on: the shared greedy injector or its own
/// round-robin queue.
enum JobSource {
    Shared(Arc<Mutex<Receiver<Job>>>),
    Own(Receiver<Job>),
}

impl JobSource {
    fn next(&self) -> Option<Job> {
        match self {
            JobSource::Shared(shared) => shared
                .lock()
                .expect("a poisoned injector means a bug")
                .recv()
                .ok(),
            JobSource::Own(queue) => queue.recv().ok(),
        }
    }
}

/// A fixed pool of OS threads executing [`WorldSpec`]s.
///
/// See the crate docs for the model, the two distribution policies,
/// and an example. Dropping the farm closes the injectors and joins
/// every worker; undelivered reports are discarded.
pub struct Farm {
    injectors: Vec<Sender<Job>>,
    results: Receiver<(u64, WorldReport)>,
    workers: Vec<JoinHandle<()>>,
    busy_ns: Arc<Vec<AtomicU64>>,
    next_ticket: u64,
    next_reap: u64,
    pending: BTreeMap<u64, WorldReport>,
}

impl Farm {
    /// Spins up `threads` workers pulling greedily from one shared
    /// queue — the default policy; prefer it whenever world costs vary.
    ///
    /// # Errors
    ///
    /// Rejects a zero-thread farm.
    pub fn new(threads: usize) -> Result<Farm, SimError> {
        Farm::build(threads, false)
    }

    /// Spins up `threads` workers with static round-robin
    /// distribution: submission `k` runs on worker `k % threads`.
    /// Deterministic per-worker assignment for uniform batches (the
    /// scaling bench's policy — see the module docs).
    ///
    /// # Errors
    ///
    /// Rejects a zero-thread farm.
    pub fn round_robin(threads: usize) -> Result<Farm, SimError> {
        Farm::build(threads, true)
    }

    fn build(threads: usize, round_robin: bool) -> Result<Farm, SimError> {
        if threads == 0 {
            return Err(SimError::BadConfig {
                reason: "a farm needs at least one worker thread".into(),
            });
        }
        let mut injectors = Vec::new();
        let mut sources = Vec::new();
        if round_robin {
            for _ in 0..threads {
                let (tx, rx) = channel::<Job>();
                injectors.push(tx);
                sources.push(JobSource::Own(rx));
            }
        } else {
            let (tx, rx) = channel::<Job>();
            let shared = Arc::new(Mutex::new(rx));
            injectors.push(tx);
            for _ in 0..threads {
                sources.push(JobSource::Shared(Arc::clone(&shared)));
            }
        }
        let (report_tx, results) = channel();
        let busy_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let mut workers = Vec::with_capacity(threads);
        for (index, source) in sources.into_iter().enumerate() {
            let report_tx: Sender<(u64, WorldReport)> = report_tx.clone();
            let busy_ns = Arc::clone(&busy_ns);
            let handle = std::thread::Builder::new()
                .name(format!("simfarm-{index}"))
                .spawn(move || worker_loop(index, &source, &report_tx, &busy_ns[index]))
                .map_err(|e| SimError::BadConfig {
                    reason: format!("failed to spawn farm worker: {e}"),
                })?;
            workers.push(handle);
        }
        Ok(Farm {
            injectors,
            results,
            workers,
            busy_ns,
            next_ticket: 0,
            next_reap: 0,
            pending: BTreeMap::new(),
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Worlds submitted but not yet reaped.
    pub fn outstanding(&self) -> u64 {
        self.next_ticket - self.next_reap
    }

    /// Queues `spec` for execution and returns its ticket.
    pub fn submit(&mut self, spec: WorldSpec) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let lane = ticket as usize % self.injectors.len();
        self.injectors[lane]
            .send(Job { ticket, spec })
            .expect("workers outlive the farm handle");
        Ticket(ticket)
    }

    /// Blocks until the next report *in submission order* is ready and
    /// returns it; `None` when every submitted world has been reaped.
    pub fn reap(&mut self) -> Option<WorldReport> {
        if self.next_reap == self.next_ticket {
            return None;
        }
        loop {
            if let Some(report) = self.pending.remove(&self.next_reap) {
                self.next_reap += 1;
                return Some(report);
            }
            let (ticket, report) = self
                .results
                .recv()
                .expect("workers outlive the farm handle");
            self.pending.insert(ticket, report);
        }
    }

    /// Reaps every outstanding world, in submission order.
    pub fn collect(&mut self) -> Vec<WorldReport> {
        let mut reports = Vec::new();
        while let Some(report) = self.reap() {
            reports.push(report);
        }
        reports
    }

    /// Cumulative CPU nanoseconds each worker has spent *executing
    /// worlds* (queue idling excluded), indexed by worker. Falls back
    /// to wall-clock deltas on platforms without per-thread CPU
    /// counters. This is the ingredient of the farm bench's
    /// critical-path scaling metric — see [`crate::cputime`].
    pub fn worker_busy_nanos(&self) -> Vec<u64> {
        self.busy_ns
            .iter()
            .map(|ns| ns.load(Ordering::Relaxed))
            .collect()
    }
}

impl Drop for Farm {
    fn drop(&mut self) {
        // Closing the injectors ends every worker's recv loop.
        self.injectors.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    index: usize,
    jobs: &JobSource,
    reports: &Sender<(u64, WorldReport)>,
    busy_ns: &AtomicU64,
) {
    // The worker's arena: one machine, recycled between worlds.
    let mut slot: Option<Machine> = None;
    let mut slot_config: Option<MachineConfig> = None;
    loop {
        let Some(job) = jobs.next() else {
            return; // farm dropped; drain out
        };
        let cpu_before = thread_cpu_nanos();
        let wall_before = Instant::now();
        let outcome = run_job(&mut slot, &mut slot_config, &job.spec);
        let spent = match (cpu_before, thread_cpu_nanos()) {
            (Some(before), Some(after)) => after.saturating_sub(before),
            _ => wall_before.elapsed().as_nanos() as u64,
        };
        busy_ns.fetch_add(spent, Ordering::Relaxed);
        let report = WorldReport {
            ticket: Ticket(job.ticket),
            seed: job.spec.seed,
            outcome,
            worker: index,
        };
        if reports.send((job.ticket, report)).is_err() {
            return; // collector gone; no one to report to
        }
    }
}

fn run_job(
    slot: &mut Option<Machine>,
    slot_config: &mut Option<MachineConfig>,
    spec: &WorldSpec,
) -> Result<WorldOutput, SimError> {
    if slot.is_none() || *slot_config != Some(spec.config) {
        *slot = Some(Machine::new(spec.config)?);
        *slot_config = Some(spec.config);
    }
    let machine = slot.as_mut().expect("slot was just filled");
    let result = catch_unwind(AssertUnwindSafe(|| run_world_in(machine, spec)));
    match result {
        Ok(outcome) => outcome,
        Err(panic) => {
            // A panicked world leaves the machine in an unknown state;
            // throw the arena away so the next world starts clean.
            *slot = None;
            *slot_config = None;
            let text = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(SimError::BadConfig {
                reason: format!("world {} panicked: {text}", spec.seed),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::run_world;

    #[test]
    fn farm_reports_come_back_in_submission_order() {
        let mut farm = Farm::new(3).unwrap();
        let tickets: Vec<Ticket> = (0..16).map(|i| farm.submit(WorldSpec::quick(i))).collect();
        let reports = farm.collect();
        assert_eq!(reports.len(), 16);
        for (i, (ticket, report)) in tickets.iter().zip(&reports).enumerate() {
            assert_eq!(report.ticket, *ticket);
            assert_eq!(report.ticket.index(), i as u64);
            assert_eq!(report.seed, i as u64);
        }
    }

    #[test]
    fn farm_worlds_match_their_solo_twins() {
        let mut farm = Farm::new(2).unwrap();
        for seed in 0..8 {
            farm.submit(WorldSpec::quick(seed * 11));
        }
        for report in farm.collect() {
            let solo = run_world(&WorldSpec::quick(report.seed)).unwrap();
            assert_eq!(report.outcome.as_ref().unwrap(), &solo);
        }
    }

    #[test]
    fn reap_returns_none_when_drained() {
        let mut farm = Farm::new(1).unwrap();
        assert!(farm.reap().is_none());
        farm.submit(WorldSpec::quick(1));
        assert!(farm.reap().is_some());
        assert!(farm.reap().is_none());
    }

    #[test]
    fn zero_threads_is_rejected() {
        assert!(matches!(Farm::new(0), Err(SimError::BadConfig { .. })));
    }

    #[test]
    fn a_failing_world_does_not_poison_the_farm() {
        let mut farm = Farm::new(1).unwrap();
        let mut bad = WorldSpec::quick(1);
        // More lanes than the machine has accelerators: a clean error.
        if let crate::spec::WorldProgram::AiFrame { ref mut accels, .. } = bad.program {
            *accels = 5;
        }
        farm.submit(bad);
        farm.submit(WorldSpec::quick(2));
        let reports = farm.collect();
        assert!(reports[0].outcome.is_err());
        let good = reports[1].outcome.as_ref().unwrap();
        assert_eq!(
            good.world_hash,
            run_world(&WorldSpec::quick(2)).unwrap().world_hash
        );
    }

    #[test]
    fn round_robin_assignment_is_deterministic_and_bit_identical() {
        let mut farm = Farm::round_robin(2).unwrap();
        for seed in 0..6 {
            farm.submit(WorldSpec::quick(seed * 3));
        }
        let reports = farm.collect();
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.worker, i % 2);
            let solo = run_world(&WorldSpec::quick(report.seed)).unwrap();
            assert_eq!(report.outcome.as_ref().unwrap(), &solo);
        }
    }

    #[test]
    fn workers_account_busy_time() {
        let mut farm = Farm::new(2).unwrap();
        for seed in 0..6 {
            farm.submit(WorldSpec::quick(seed));
        }
        farm.collect();
        let busy = farm.worker_busy_nanos();
        assert_eq!(busy.len(), 2);
        assert!(busy.iter().sum::<u64>() > 0);
    }
}
