//! Per-thread CPU time, for honest scaling numbers on shared boxes.
//!
//! A farm bench that only reads the wall clock can under-report scaling
//! badly on CI runners and containers that expose fewer cores than the
//! farm has workers (the extreme case: a 1-CPU cgroup, where four
//! workers are time-sliced onto one core and wall time cannot improve
//! at all). The quantity that *is* meaningful there is the worker
//! critical path — the largest per-worker CPU time — which is what the
//! `bench_throughput --farm` lane divides into total work. This module
//! supplies the raw ingredient: cumulative CPU nanoseconds consumed by
//! the calling thread.

/// Cumulative CPU time consumed by the calling thread, in nanoseconds.
///
/// On Linux this reads `/proc/thread-self/schedstat` (nanosecond
/// resolution, maintained by the scheduler for every kernel config the
/// workspace targets) and falls back to `utime + stime` from
/// `/proc/thread-self/stat` (coarse 10 ms ticks) when schedstat is
/// absent. Returns `None` when neither source exists — callers fall
/// back to wall-clock deltas.
///
/// The scheduler only flushes a running thread's `sum_exec_runtime` on
/// scheduling events, so a thread that has monopolised its CPU since
/// the last tick reads a stale counter. Yielding first forces a pass
/// through the scheduler (`update_curr`), making the sample current —
/// one cheap syscall, paid only at sampling points.
pub fn thread_cpu_nanos() -> Option<u64> {
    std::thread::yield_now();
    imp::thread_cpu_nanos()
}

#[cfg(target_os = "linux")]
mod imp {
    pub(super) fn thread_cpu_nanos() -> Option<u64> {
        from_schedstat().or_else(from_stat)
    }

    /// `/proc/thread-self/schedstat`: "<run_ns> <wait_ns> <slices>".
    fn from_schedstat() -> Option<u64> {
        let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
        text.split_whitespace().next()?.parse().ok()
    }

    /// `/proc/thread-self/stat` fields 14 and 15 (utime, stime) in
    /// clock ticks. USER_HZ has been fixed at 100 on every Linux ABI
    /// this workspace builds for, so a tick is 10 ms.
    fn from_stat() -> Option<u64> {
        const NANOS_PER_TICK: u64 = 1_000_000_000 / 100;
        let text = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
        // The comm field is parenthesised and may contain spaces;
        // everything after the final ')' is safely space-separated.
        let after_comm = &text[text.rfind(')')? + 1..];
        let mut fields = after_comm.split_whitespace();
        // after_comm starts at field 3 (state); utime/stime are fields
        // 14/15 of the full line, i.e. indexes 11/12 here.
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        Some((utime + stime) * NANOS_PER_TICK)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub(super) fn thread_cpu_nanos() -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn cpu_time_is_monotone_and_advances_under_load() {
        let before = thread_cpu_nanos().expect("linux exposes thread CPU time");
        // Burn enough CPU to be visible at schedstat resolution.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let after = thread_cpu_nanos().expect("linux exposes thread CPU time");
        assert!(after >= before);
        assert!(after > 0);
    }
}
