//! # simfarm — fleet execution of deterministic worlds
//!
//! The rest of the workspace runs exactly one [`simcell::Machine`] on
//! one thread. This crate is the layer that turns that sequential
//! runtime into a scalable one, following the farm pattern FastFlow
//! popularised for self-offloading runtimes (PAPERS.md, arXiv
//! 1002.4668): a fixed pool of OS worker threads fed by a submit
//! queue, draining into a reap queue.
//!
//! - [`WorldSpec`] describes one world: a seed, a machine shape, a
//!   [`WorldProgram`], and an optional fault plan. A spec is plain
//!   `Copy` data — the *description* of a run, never the run itself —
//!   which is what makes a farm world bit-identical to its solo twin.
//! - [`Farm::new`]`(threads)` spins up the pool. [`Farm::submit`]
//!   returns a [`Ticket`]; [`Farm::reap`] / [`Farm::collect`] yield
//!   [`WorldReport`]s **in submission order** regardless of which
//!   worker finished first.
//! - Each worker owns its `Machine` outright (`Machine` is `Send` by
//!   compile-time assertion) and recycles it between worlds through
//!   [`simcell::Machine::reset_for_seed`] — zero per-world allocation
//!   churn once every worker has warmed up.
//! - [`run_world`] is the solo entry point. It shares the
//!   [`run_world_in`] code path with the workers, so "farm output ==
//!   solo output" is a structural guarantee, pinned by the CI
//!   determinism gate rather than hoped for.
//!
//! ```
//! use simfarm::{Farm, WorldSpec, run_world};
//!
//! let mut farm = Farm::new(2).unwrap();
//! let spec = WorldSpec::quick(42);
//! farm.submit(spec);
//! let report = farm.reap().unwrap();
//! let solo = run_world(&spec).unwrap();
//! assert_eq!(report.outcome.unwrap().world_hash, solo.world_hash);
//! ```

pub mod cputime;
pub mod farm;
pub mod spec;

pub use cputime::thread_cpu_nanos;
pub use farm::{Farm, Ticket, WorldReport};
pub use spec::{run_world, run_world_in, WorldOutput, WorldProgram, WorldSpec};
