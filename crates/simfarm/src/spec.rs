//! World descriptions and the single world-running code path.
//!
//! A [`WorldSpec`] is plain `Copy` data: everything a run needs and
//! nothing it produces. Both the solo entry point ([`run_world`]) and
//! every farm worker execute specs through the same [`run_world_in`],
//! so a world's observable result cannot depend on *where* it ran —
//! the bit-identity invariant the determinism gate pins.

use gamekit::ai::{ai_frame_sched, ai_frame_sched_recovering, AiConfig};
use gamekit::{EntityArray, WorldGen};
use offload_rt::sched::SchedReport;
use offload_rt::SchedPolicy;
use simcell::fault::FaultPlan;
use simcell::trace::MachineStats;
use simcell::{Machine, MachineConfig, SimError};

/// What a world computes.
///
/// Variants are scalar-only so a [`WorldSpec`] stays `Copy` and
/// comparable; the workload data itself is generated deterministically
/// from the spec's seed on whichever machine runs it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorldProgram {
    /// The gamekit AI frame driven through the offload-rt tile
    /// scheduler: seeded entities, a candidate table, and `frames`
    /// scheduled dispatches across `accels` accelerators.
    AiFrame {
        /// Entities in the world.
        entities: u32,
        /// Tiles per scheduled frame.
        tiles: u32,
        /// Accelerator lanes the scheduler may use.
        accels: u16,
        /// Tile-placement policy.
        policy: SchedPolicy,
        /// Frames to simulate.
        frames: u32,
    },
    /// A chain of labelled offload-builder kernels: each kernel reads
    /// the seeded payload through outer accesses, folds it with
    /// `compute` cycles of work, and writes its digest back to main
    /// memory for the next kernel to observe.
    KernelChain {
        /// Kernels to launch, round-robined over the accelerators.
        kernels: u32,
        /// Pure compute cycles per kernel.
        compute: u64,
        /// Payload length in 64-bit words.
        payload_words: u32,
    },
}

/// A complete, self-contained description of one world run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorldSpec {
    /// World seed: drives entity placement, candidate tables, and
    /// payload contents.
    pub seed: u64,
    /// Machine shape the world runs on.
    pub config: MachineConfig,
    /// The workload.
    pub program: WorldProgram,
    /// Optional deterministic fault plan, armed before the workload.
    pub faults: Option<FaultPlan>,
    /// Per-tile retry budget when `faults` is set (see
    /// [`gamekit::ai::ai_frame_sched_recovering`]).
    pub retries: u32,
    /// Retry backoff in cycles when `faults` is set.
    pub backoff: u64,
    /// Capture the event log and return it as a Chrome trace.
    pub capture_trace: bool,
}

impl WorldSpec {
    /// A small, fast AI-frame world — the default unit for examples,
    /// tests, and the farm bench lanes. Two accelerators keep the
    /// scheduler honest without paying for a full six-lane machine,
    /// and the memories are sized so a whole *fleet* of these machines
    /// stays cache-resident: a worker's arena (main + local stores) is
    /// ~384 KiB, so even 4–8 time-sliced workers fit in a typical L2/L3
    /// instead of evicting each other every switch.
    pub fn quick(seed: u64) -> WorldSpec {
        WorldSpec {
            seed,
            config: MachineConfig {
                accel_count: 2,
                main_capacity: 256 * 1024,
                local_store_size: 64 * 1024,
                ..MachineConfig::default()
            },
            program: WorldProgram::AiFrame {
                entities: 64,
                tiles: 8,
                accels: 2,
                policy: SchedPolicy::ShortestQueue,
                frames: 1,
            },
            faults: None,
            retries: 0,
            backoff: 0,
            capture_trace: false,
        }
    }
}

/// Everything a finished world reports back.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldOutput {
    /// The seed the world ran with.
    pub seed: u64,
    /// FNV-1a digest of the machine's observable end state (see
    /// [`simcell::Machine::world_hash`]).
    pub world_hash: u64,
    /// The machine's counter block at the end of the run.
    pub stats: MachineStats,
    /// Simulated host cycles the world took end to end.
    pub sim_cycles: u64,
    /// The last frame's scheduler report, for `AiFrame` programs.
    pub sched: Option<SchedReport>,
    /// Chrome trace JSON, when the spec asked for capture.
    pub trace_json: Option<String>,
}

/// Runs `spec` on a machine built for the occasion. The solo twin of a
/// farm submission: same code path, same bits.
///
/// # Errors
///
/// Propagates machine construction and workload errors.
pub fn run_world(spec: &WorldSpec) -> Result<WorldOutput, SimError> {
    let mut machine = Machine::new(spec.config)?;
    run_world_in(&mut machine, spec)
}

/// Runs `spec` on `machine`, resetting it first.
///
/// This is *the* world-running code path: farm workers call it with
/// their recycled machines, [`run_world`] calls it with a fresh one,
/// and because [`simcell::Machine::reset_for_seed`] restores the
/// as-constructed state exactly, both produce identical output.
///
/// # Errors
///
/// Rejects a machine whose configuration differs from the spec's
/// (recycling across shapes would silently change the world); then as
/// for the workload.
pub fn run_world_in(machine: &mut Machine, spec: &WorldSpec) -> Result<WorldOutput, SimError> {
    if *machine.config() != spec.config {
        return Err(SimError::BadConfig {
            reason: "machine configuration does not match the world spec".into(),
        });
    }
    machine.reset_for_seed(spec.seed);
    if spec.capture_trace {
        machine.events_mut().set_enabled(true);
    }
    let sched = match spec.program {
        WorldProgram::AiFrame {
            entities,
            tiles,
            accels,
            policy,
            frames,
        } => run_ai_frames(machine, spec, entities, tiles, accels, policy, frames)?,
        WorldProgram::KernelChain {
            kernels,
            compute,
            payload_words,
        } => {
            run_kernel_chain(machine, spec.seed, kernels, compute, payload_words)?;
            None
        }
    };
    let trace_json = spec
        .capture_trace
        .then(|| simcell::trace::chrome_trace_json(machine.events()));
    Ok(WorldOutput {
        seed: spec.seed,
        world_hash: machine.world_hash(),
        stats: *machine.stats(),
        sim_cycles: machine.host_now(),
        sched,
        trace_json,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_ai_frames(
    machine: &mut Machine,
    spec: &WorldSpec,
    entities: u32,
    tiles: u32,
    accels: u16,
    policy: SchedPolicy,
    frames: u32,
) -> Result<Option<SchedReport>, SimError> {
    let config = AiConfig::default();
    let array = EntityArray::alloc(machine, entities)?;
    let mut gen = WorldGen::new(spec.seed);
    gen.populate(machine, &array, 100.0)?;
    let table = gen.candidate_table(machine, entities, config.candidates)?;
    let mut last = None;
    for _ in 0..frames {
        let report = match spec.faults {
            Some(plan) => ai_frame_sched_recovering(
                machine,
                &array,
                table,
                &config,
                accels,
                tiles,
                policy,
                plan,
                spec.retries,
                spec.backoff,
            )?,
            None => ai_frame_sched(machine, &array, table, &config, accels, tiles, policy, &[])?,
        };
        last = Some(report);
    }
    Ok(last)
}

fn run_kernel_chain(
    machine: &mut Machine,
    seed: u64,
    kernels: u32,
    compute: u64,
    payload_words: u32,
) -> Result<(), SimError> {
    let payload = machine.alloc_main_slice::<u64>(payload_words.max(1))?;
    let fill: Vec<u64> = (0..u64::from(payload_words.max(1)))
        .map(|i| {
            seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        })
        .collect();
    machine.host_write_slice(payload, &fill)?;
    let accel_count = machine.accel_count();
    for k in 0..kernels {
        let accel = (k % u32::from(accel_count)) as u16;
        let words = payload_words.max(1);
        let digest = machine.offload(accel).label("farm_kernel").run(|ctx| {
            ctx.compute(compute);
            let mut acc = 0u64;
            for i in 0..words {
                let word: u64 = ctx.outer_read_pod(payload.offset_by(i * 8)?)?;
                acc = acc.rotate_left(7) ^ word;
            }
            Ok::<u64, SimError>(acc)
        })??;
        // Feed the digest back so the chain (and the world hash)
        // observes every kernel.
        machine.host_write_pod(payload, &digest)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_runs_are_reproducible() {
        let spec = WorldSpec::quick(77);
        let a = run_world(&spec).unwrap();
        let b = run_world(&spec).unwrap();
        assert_eq!(a, b);
        assert!(a.sim_cycles > 0);
        assert!(a.sched.is_some());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_world(&WorldSpec::quick(1)).unwrap();
        let b = run_world(&WorldSpec::quick(2)).unwrap();
        assert_ne!(a.world_hash, b.world_hash);
    }

    #[test]
    fn recycled_machine_matches_fresh_machine() {
        let warm = WorldSpec::quick(5);
        let target = WorldSpec::quick(6);
        let mut machine = Machine::new(warm.config).unwrap();
        run_world_in(&mut machine, &warm).unwrap();
        let reused = run_world_in(&mut machine, &target).unwrap();
        let fresh = run_world(&target).unwrap();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn kernel_chain_runs_and_depends_on_every_kernel() {
        let mut spec = WorldSpec::quick(9);
        spec.program = WorldProgram::KernelChain {
            kernels: 4,
            compute: 200,
            payload_words: 16,
        };
        let four = run_world(&spec).unwrap();
        spec.program = WorldProgram::KernelChain {
            kernels: 3,
            compute: 200,
            payload_words: 16,
        };
        let three = run_world(&spec).unwrap();
        assert_ne!(four.world_hash, three.world_hash);
        assert!(four.sim_cycles > three.sim_cycles);
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let spec = WorldSpec::quick(3);
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let err = run_world_in(&mut machine, &spec).unwrap_err();
        assert!(matches!(err, SimError::BadConfig { .. }));
    }

    #[test]
    fn trace_capture_round_trips() {
        let mut spec = WorldSpec::quick(11);
        spec.capture_trace = true;
        let out = run_world(&spec).unwrap();
        let json = out.trace_json.expect("trace requested");
        let events = simcell::trace::parse_chrome_trace(&json).unwrap();
        assert!(!events.is_empty());
        // Capture must not perturb the simulation itself.
        let mut quiet = spec;
        quiet.capture_trace = false;
        let silent = run_world(&quiet).unwrap();
        assert_eq!(out.world_hash, silent.world_hash);
        assert_eq!(out.sim_cycles, silent.sim_cycles);
    }

    #[test]
    fn faulty_worlds_are_deterministic_too() {
        let mut spec = WorldSpec::quick(13);
        spec.faults = Some(FaultPlan {
            accel_stall: 0.3,
            stall_cycles: 64,
            ..FaultPlan::new(13)
        });
        spec.retries = 2;
        spec.backoff = 32;
        let a = run_world(&spec).unwrap();
        let b = run_world(&spec).unwrap();
        assert_eq!(a, b);
    }
}
