//! Space-tagged addresses.

use std::fmt;

use crate::error::MemError;
use crate::space::SpaceId;

/// An address that knows which memory space it points into.
///
/// On a machine with disjoint memory spaces a bare integer address is
/// meaningless — the same offset exists in main memory and in every local
/// store. `Addr` pairs the offset with a [`SpaceId`], which is exactly the
/// information the Offload C++ type system tracks with its `__outer`
/// qualifier (paper §3): the compiler must know, for every pointer,
/// *which* memory it dereferences into.
///
/// Offsets are 32-bit, matching the simulated machine's address range.
///
/// # Example
///
/// ```
/// use memspace::{Addr, SpaceId};
///
/// let a = Addr::new(SpaceId::MAIN, 0x100);
/// let b = a.offset_by(16)?;
/// assert_eq!(b.offset(), 0x110);
/// assert_eq!(b.space(), SpaceId::MAIN);
/// # Ok::<(), memspace::MemError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    space: SpaceId,
    offset: u32,
}

impl Addr {
    /// Creates an address at `offset` within `space`.
    #[inline]
    pub fn new(space: SpaceId, offset: u32) -> Addr {
        Addr { space, offset }
    }

    /// The null address of a space (offset zero is reserved by convention
    /// and never handed out by allocators).
    pub fn null(space: SpaceId) -> Addr {
        Addr { space, offset: 0 }
    }

    /// Whether this is the null address of its space.
    #[inline]
    pub fn is_null(self) -> bool {
        self.offset == 0
    }

    /// The memory space this address points into.
    #[inline]
    pub fn space(self) -> SpaceId {
        self.space
    }

    /// The byte offset within the space.
    #[inline]
    pub fn offset(self) -> u32 {
        self.offset
    }

    /// Returns the address `delta` bytes past this one.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOverflow`] if the sum exceeds the 32-bit
    /// simulated address range.
    #[inline]
    pub fn offset_by(self, delta: u32) -> Result<Addr, MemError> {
        match self.offset.checked_add(delta) {
            Some(offset) => Ok(Addr {
                space: self.space,
                offset,
            }),
            None => Err(MemError::AddressOverflow {
                space: self.space,
                offset: self.offset,
                delta,
            }),
        }
    }

    /// Returns the address of element `index` in an array of `stride`-byte
    /// elements starting at this address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOverflow`] if the computation exceeds
    /// the 32-bit simulated address range.
    pub fn element(self, index: u32, stride: u32) -> Result<Addr, MemError> {
        let delta = index.checked_mul(stride).ok_or(MemError::AddressOverflow {
            space: self.space,
            offset: self.offset,
            delta: u32::MAX,
        })?;
        self.offset_by(delta)
    }

    /// Whether this address is aligned to `align` bytes. An alignment of
    /// zero or one is always satisfied.
    pub fn is_aligned_to(self, align: u32) -> bool {
        crate::layout::is_aligned(self.offset, align)
    }

    /// Byte distance from `other` to `self`, if both lie in the same space
    /// and `self >= other`.
    pub fn distance_from(self, other: Addr) -> Option<u32> {
        if self.space != other.space {
            return None;
        }
        self.offset.checked_sub(other.offset)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({}:{:#x})", self.space, self.offset)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.space, self.offset)
    }
}

/// A half-open range of addresses within a single space.
///
/// Used by the DMA engine and race checker to reason about transfer
/// overlap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AddrRange {
    start: Addr,
    len: u32,
}

impl AddrRange {
    /// Creates the range `[start, start + len)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOverflow`] if the end would overflow.
    pub fn new(start: Addr, len: u32) -> Result<AddrRange, MemError> {
        // Validate that the end is representable.
        start.offset_by(len)?;
        Ok(AddrRange { start, len })
    }

    /// Start address.
    pub fn start(self) -> Addr {
        self.start
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// One-past-the-end offset.
    pub fn end_offset(self) -> u32 {
        self.start.offset() + self.len
    }

    /// Whether two ranges overlap (they never overlap across spaces, and
    /// empty ranges overlap nothing).
    pub fn overlaps(self, other: AddrRange) -> bool {
        if self.space() != other.space() || self.is_empty() || other.is_empty() {
            return false;
        }
        self.start.offset() < other.end_offset() && other.start.offset() < self.end_offset()
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(self, addr: Addr) -> bool {
        addr.space() == self.space()
            && addr.offset() >= self.start.offset()
            && addr.offset() < self.end_offset()
    }

    /// The space the range lies in.
    pub fn space(self) -> SpaceId {
        self.start.space()
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:[{:#x}, {:#x})",
            self.space(),
            self.start.offset(),
            self.end_offset()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn main_addr(offset: u32) -> Addr {
        Addr::new(SpaceId::MAIN, offset)
    }

    #[test]
    fn offset_by_advances_within_space() {
        let a = main_addr(0x10);
        let b = a.offset_by(0x20).unwrap();
        assert_eq!(b.offset(), 0x30);
        assert_eq!(b.space(), SpaceId::MAIN);
    }

    #[test]
    fn offset_by_detects_overflow() {
        let a = main_addr(u32::MAX - 1);
        let err = a.offset_by(2).unwrap_err();
        assert!(matches!(err, MemError::AddressOverflow { .. }));
    }

    #[test]
    fn element_addressing() {
        let base = main_addr(0x100);
        assert_eq!(base.element(0, 12).unwrap().offset(), 0x100);
        assert_eq!(base.element(3, 12).unwrap().offset(), 0x100 + 36);
    }

    #[test]
    fn element_detects_multiplication_overflow() {
        let base = main_addr(0);
        assert!(base.element(u32::MAX, 16).is_err());
    }

    #[test]
    fn alignment_checks() {
        assert!(main_addr(0x40).is_aligned_to(16));
        assert!(!main_addr(0x41).is_aligned_to(16));
        assert!(main_addr(0x41).is_aligned_to(1));
        assert!(main_addr(0x41).is_aligned_to(0));
    }

    #[test]
    fn null_address() {
        let n = Addr::null(SpaceId::local_store(0));
        assert!(n.is_null());
        assert!(!main_addr(4).is_null());
    }

    #[test]
    fn distance_requires_same_space() {
        let a = main_addr(0x100);
        let b = main_addr(0x40);
        assert_eq!(a.distance_from(b), Some(0xc0));
        assert_eq!(b.distance_from(a), None); // would be negative
        let c = Addr::new(SpaceId::local_store(0), 0x40);
        assert_eq!(a.distance_from(c), None);
    }

    #[test]
    fn range_overlap_same_space() {
        let r1 = AddrRange::new(main_addr(0x100), 0x40).unwrap();
        let r2 = AddrRange::new(main_addr(0x120), 0x40).unwrap();
        let r3 = AddrRange::new(main_addr(0x140), 0x40).unwrap();
        assert!(r1.overlaps(r2));
        assert!(r2.overlaps(r1));
        assert!(!r1.overlaps(r3));
        assert!(r2.overlaps(r3));
    }

    #[test]
    fn range_overlap_never_across_spaces() {
        let r1 = AddrRange::new(main_addr(0x100), 0x40).unwrap();
        let r2 = AddrRange::new(Addr::new(SpaceId::local_store(0), 0x100), 0x40).unwrap();
        assert!(!r1.overlaps(r2));
    }

    #[test]
    fn empty_ranges_overlap_nothing() {
        let r1 = AddrRange::new(main_addr(0x100), 0).unwrap();
        let r2 = AddrRange::new(main_addr(0x100), 0x10).unwrap();
        assert!(!r1.overlaps(r2));
        assert!(!r2.overlaps(r1));
        assert!(r1.is_empty());
    }

    #[test]
    fn range_contains() {
        let r = AddrRange::new(main_addr(0x100), 0x10).unwrap();
        assert!(r.contains(main_addr(0x100)));
        assert!(r.contains(main_addr(0x10f)));
        assert!(!r.contains(main_addr(0x110)));
        assert!(!r.contains(Addr::new(SpaceId::local_store(0), 0x100)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(main_addr(0x20).to_string(), "main:0x20");
        let r = AddrRange::new(main_addr(0x20), 0x10).unwrap();
        assert_eq!(r.to_string(), "main:[0x20, 0x30)");
    }
}
