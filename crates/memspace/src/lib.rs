//! Memory-space model for the Offload reproduction.
//!
//! The paper (Russell et al., MSPC/PLDI 2011) is about software running on
//! machines with *multiple, disjoint, non-cache-coherent memory spaces* —
//! concretely a Cell-BE-like machine with a host core addressing a large
//! main memory and accelerator cores each owning a small, fast scratch-pad
//! *local store*. This crate provides the vocabulary every other crate in
//! the workspace builds on:
//!
//! - [`SpaceId`] / [`SpaceKind`]: identity of a memory space,
//! - [`Addr`]: an address that knows which space it points into,
//! - [`MemoryRegion`]: a bounds-checked simulated memory (a byte array),
//! - [`Pod`]: safe, explicit byte-level layout for typed values,
//! - [`AddressingMode`]: byte- vs word-addressed memories (paper §5).
//!
//! Nothing in this crate models *time*; cycle accounting lives in
//! `simcell`. Nothing here is `unsafe`.
//!
//! # Example
//!
//! ```
//! use memspace::{Addr, MemoryRegion, Pod, SpaceId, SpaceKind};
//!
//! # fn main() -> Result<(), memspace::MemError> {
//! let main_id = SpaceId::MAIN;
//! let mut main = MemoryRegion::new(main_id, SpaceKind::Main, 1024);
//! let addr = Addr::new(main_id, 64);
//! main.write_pod(addr, &42u32)?;
//! assert_eq!(main.read_pod::<u32>(addr)?, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod error;
pub mod layout;
pub mod mode;
pub mod pod;
pub mod region;
pub mod space;

pub use addr::{Addr, AddrRange};
pub use error::MemError;
pub use layout::{align_up, checked_align_up, is_aligned, AddressingMode};
pub use mode::{AccessMode, ModeDecl, ModeSet};
pub use pod::Pod;
pub use region::{copy_between, MemoryRegion};
pub use space::{SpaceId, SpaceKind};

/// Size of an accelerator local store, in bytes (256 KiB, as on the Cell
/// BE SPEs the paper targets).
pub const LOCAL_STORE_SIZE: u32 = 256 * 1024;

/// Preferred DMA transfer alignment, in bytes (Cell MFC transfers are most
/// efficient at 16-byte — quadword — alignment).
pub const DMA_ALIGN: u32 = 16;
