//! Alignment arithmetic and addressing modes.
//!
//! Paper §5 discusses *indexed addressing*: memory systems whose native
//! addressing unit is a word or vector rather than a byte (TigerSHARC,
//! the PlayStation 2 vector units). [`AddressingMode`] captures the unit;
//! the `offload-lang` type checker uses it to implement the paper's
//! hybrid word/byte pointer discipline.

use crate::error::MemError;
use crate::space::SpaceId;

/// Rounds `offset` up to the next multiple of `align`.
///
/// An `align` of zero or one returns `offset` unchanged. `align` need not
/// be a power of two, though all alignments used in the workspace are.
///
/// # Example
///
/// ```
/// use memspace::align_up;
///
/// assert_eq!(align_up(13, 16), 16);
/// assert_eq!(align_up(16, 16), 16);
/// assert_eq!(align_up(0, 16), 0);
/// assert_eq!(align_up(5, 1), 5);
/// ```
pub fn align_up(offset: u32, align: u32) -> u32 {
    if align <= 1 {
        return offset;
    }
    let rem = offset % align;
    if rem == 0 {
        offset
    } else {
        offset + (align - rem)
    }
}

/// Checked version of [`align_up`] that reports overflow.
///
/// # Errors
///
/// Returns [`MemError::AddressOverflow`] if rounding up would exceed
/// `u32::MAX`.
pub fn checked_align_up(space: SpaceId, offset: u32, align: u32) -> Result<u32, MemError> {
    if align <= 1 {
        return Ok(offset);
    }
    let rem = offset % align;
    if rem == 0 {
        return Ok(offset);
    }
    offset
        .checked_add(align - rem)
        .ok_or(MemError::AddressOverflow {
            space,
            offset,
            delta: align - rem,
        })
}

/// Whether `offset` is a multiple of `align` (zero and one always are).
pub fn is_aligned(offset: u32, align: u32) -> bool {
    align <= 1 || offset.is_multiple_of(align)
}

/// The native addressing unit of a memory system (paper §5).
///
/// In a byte-addressed system, adding 1 to an address moves one byte; in
/// a word-addressed system it moves one *word*. Software that assumes
/// byte addressing (virtually all modern C/C++ code) either breaks or
/// pays an emulation tax on word-addressed systems — the paper's hybrid
/// pointer-typing scheme exists to manage exactly this.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AddressingMode {
    /// Conventional byte addressing.
    Byte,
    /// Word addressing with the given word size in bytes (e.g. 4 for
    /// TigerSHARC-style 32-bit words, 16 for PS2 VU-style vectors).
    Word {
        /// Word size in bytes; always at least 2.
        bytes: u8,
    },
}

impl AddressingMode {
    /// Word addressing with 4-byte words.
    pub const WORD4: AddressingMode = AddressingMode::Word { bytes: 4 };

    /// Vector addressing with 16-byte units (PS2-VU-like).
    pub const VECTOR16: AddressingMode = AddressingMode::Word { bytes: 16 };

    /// Size in bytes of the native addressing unit.
    pub fn unit_bytes(self) -> u32 {
        match self {
            AddressingMode::Byte => 1,
            AddressingMode::Word { bytes } => u32::from(bytes),
        }
    }

    /// Whether this mode is word-oriented (unit larger than a byte).
    pub fn is_word_addressed(self) -> bool {
        self.unit_bytes() > 1
    }

    /// Splits a byte offset into `(unit_index, byte_within_unit)`.
    ///
    /// For byte addressing the second component is always zero.
    pub fn split(self, byte_offset: u32) -> (u32, u32) {
        let unit = self.unit_bytes();
        (byte_offset / unit, byte_offset % unit)
    }

    /// Whether a byte offset is expressible as a whole number of units.
    pub fn is_unit_aligned(self, byte_offset: u32) -> bool {
        byte_offset.is_multiple_of(self.unit_bytes())
    }
}

impl std::fmt::Display for AddressingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddressingMode::Byte => write!(f, "byte-addressed"),
            AddressingMode::Word { bytes } => write!(f, "word-addressed ({bytes}-byte units)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(15, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 16), 32);
        assert_eq!(align_up(100, 0), 100);
        assert_eq!(align_up(100, 1), 100);
    }

    #[test]
    fn align_up_non_power_of_two() {
        assert_eq!(align_up(10, 12), 12);
        assert_eq!(align_up(24, 12), 24);
    }

    #[test]
    fn checked_align_up_overflow() {
        let err = checked_align_up(SpaceId::MAIN, u32::MAX - 2, 16).unwrap_err();
        assert!(matches!(err, MemError::AddressOverflow { .. }));
        assert_eq!(checked_align_up(SpaceId::MAIN, 17, 16).unwrap(), 32);
        assert_eq!(
            checked_align_up(SpaceId::MAIN, u32::MAX, 1).unwrap(),
            u32::MAX
        );
    }

    #[test]
    fn is_aligned_basics() {
        assert!(is_aligned(32, 16));
        assert!(!is_aligned(33, 16));
        assert!(is_aligned(33, 1));
        assert!(is_aligned(33, 0));
    }

    #[test]
    fn addressing_mode_units() {
        assert_eq!(AddressingMode::Byte.unit_bytes(), 1);
        assert_eq!(AddressingMode::WORD4.unit_bytes(), 4);
        assert_eq!(AddressingMode::VECTOR16.unit_bytes(), 16);
        assert!(!AddressingMode::Byte.is_word_addressed());
        assert!(AddressingMode::WORD4.is_word_addressed());
    }

    #[test]
    fn addressing_mode_split() {
        assert_eq!(AddressingMode::WORD4.split(13), (3, 1));
        assert_eq!(AddressingMode::WORD4.split(12), (3, 0));
        assert_eq!(AddressingMode::Byte.split(13), (13, 0));
        assert!(AddressingMode::WORD4.is_unit_aligned(8));
        assert!(!AddressingMode::WORD4.is_unit_aligned(9));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AddressingMode::Byte.to_string(), "byte-addressed");
        assert_eq!(
            AddressingMode::WORD4.to_string(),
            "word-addressed (4-byte units)"
        );
    }
}
