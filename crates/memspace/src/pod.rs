//! Safe, explicit byte-level layout for typed values.
//!
//! Simulated memories are byte arrays; game data and language values must
//! be marshalled into and out of them. Rather than transmuting (which
//! would require `unsafe` and entangle simulated layout with host layout),
//! [`Pod`] types define an explicit, packed, little-endian wire layout.
//! The [`impl_pod!`](crate::impl_pod) macro derives the implementation
//! for plain structs of `Pod` fields, mirroring how real engine code
//! declares DMA-able PODs.

/// A plain-old-data value with an explicit simulated-memory layout.
///
/// The layout contract:
///
/// - a value occupies exactly [`Pod::SIZE`] bytes, packed (no padding),
/// - multi-byte integers and floats are little-endian,
/// - [`Pod::ALIGN`] is the *preferred* placement alignment (used by
///   allocators and the DMA cost model), not a correctness requirement.
///
/// # Panics
///
/// `write_to` and `read_from` panic if the provided buffer is shorter
/// than [`Pod::SIZE`]; callers (memory regions, accessors) always check
/// bounds first and pass exactly-sized slices.
///
/// # Example
///
/// ```
/// use memspace::Pod;
///
/// let mut buf = [0u8; 4];
/// 0xdead_beef_u32.write_to(&mut buf);
/// assert_eq!(u32::read_from(&buf), 0xdead_beef);
/// ```
pub trait Pod: Sized + Copy {
    /// Size of the value in simulated memory, in bytes.
    const SIZE: usize;
    /// Preferred placement alignment in simulated memory, in bytes.
    const ALIGN: usize;

    /// Serialises `self` into the first [`Pod::SIZE`] bytes of `out`.
    fn write_to(&self, out: &mut [u8]);

    /// Deserialises a value from the first [`Pod::SIZE`] bytes of `buf`.
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($ty:ty),*) => {
        $(
            impl Pod for $ty {
                const SIZE: usize = std::mem::size_of::<$ty>();
                const ALIGN: usize = std::mem::size_of::<$ty>();

                fn write_to(&self, out: &mut [u8]) {
                    out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
                }

                fn read_from(buf: &[u8]) -> Self {
                    let mut bytes = [0u8; std::mem::size_of::<$ty>()];
                    bytes.copy_from_slice(&buf[..Self::SIZE]);
                    <$ty>::from_le_bytes(bytes)
                }
            }
        )*
    };
}

impl_pod_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Pod for bool {
    const SIZE: usize = 1;
    const ALIGN: usize = 1;

    fn write_to(&self, out: &mut [u8]) {
        out[0] = u8::from(*self);
    }

    fn read_from(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

impl<T: Pod, const N: usize> Pod for [T; N] {
    const SIZE: usize = T::SIZE * N;
    const ALIGN: usize = T::ALIGN;

    fn write_to(&self, out: &mut [u8]) {
        for (i, item) in self.iter().enumerate() {
            item.write_to(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&buf[i * T::SIZE..(i + 1) * T::SIZE]))
    }
}

/// Maximum of two usizes, usable in const context (for `impl_pod!`).
#[doc(hidden)]
pub const fn const_max(a: usize, b: usize) -> usize {
    if a > b {
        a
    } else {
        b
    }
}

/// Derives [`Pod`] for a struct whose fields are all `Pod`.
///
/// The struct is declared by the macro itself so field order (and hence
/// the packed layout) is unambiguous. Attributes and visibility pass
/// through.
///
/// # Example
///
/// ```
/// use memspace::{impl_pod, Pod};
///
/// impl_pod! {
///     /// A 3-vector as stored in simulated memory.
///     #[derive(PartialEq)]
///     pub struct Vec3f {
///         pub x: f32,
///         pub y: f32,
///         pub z: f32,
///     }
/// }
///
/// assert_eq!(Vec3f::SIZE, 12);
/// let v = Vec3f { x: 1.0, y: 2.0, z: 3.0 };
/// let mut buf = [0u8; 12];
/// v.write_to(&mut buf);
/// assert_eq!(Vec3f::read_from(&buf), v);
/// ```
#[macro_export]
macro_rules! impl_pod {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $fty:ty ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $fty, )*
        }

        impl $crate::Pod for $name {
            const SIZE: usize = 0 $( + <$fty as $crate::Pod>::SIZE )*;
            const ALIGN: usize = {
                #[allow(unused_mut)]
                let mut align = 1usize;
                $( align = $crate::pod::const_max(align, <$fty as $crate::Pod>::ALIGN); )*
                align
            };

            fn write_to(&self, out: &mut [u8]) {
                let _ = &out;
                #[allow(unused_mut)]
                let mut at = 0usize;
                $(
                    <$fty as $crate::Pod>::write_to(
                        &self.$field,
                        &mut out[at..at + <$fty as $crate::Pod>::SIZE],
                    );
                    at += <$fty as $crate::Pod>::SIZE;
                )*
                let _ = at;
            }

            fn read_from(buf: &[u8]) -> Self {
                let _ = &buf;
                #[allow(unused_mut)]
                let mut at = 0usize;
                $(
                    let $field = <$fty as $crate::Pod>::read_from(
                        &buf[at..at + <$fty as $crate::Pod>::SIZE],
                    );
                    at += <$fty as $crate::Pod>::SIZE;
                )*
                let _ = at;
                Self { $( $field, )* }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = [0u8; 8];
        0x0123_4567_89ab_cdef_u64.write_to(&mut buf);
        assert_eq!(u64::read_from(&buf), 0x0123_4567_89ab_cdef);
        assert_eq!(buf[0], 0xef, "layout is little-endian");

        (-5i16).write_to(&mut buf);
        assert_eq!(i16::read_from(&buf), -5);

        1.5f32.write_to(&mut buf);
        assert_eq!(f32::read_from(&buf), 1.5);

        true.write_to(&mut buf);
        assert!(bool::read_from(&buf));
        false.write_to(&mut buf);
        assert!(!bool::read_from(&buf));
    }

    #[test]
    fn array_roundtrip() {
        let arr = [1u16, 2, 3, 4];
        let mut buf = [0u8; 8];
        arr.write_to(&mut buf);
        assert_eq!(<[u16; 4]>::read_from(&buf), arr);
        assert_eq!(<[u16; 4]>::SIZE, 8);
    }

    impl_pod! {
        /// Test struct with mixed field sizes.
        #[derive(PartialEq)]
        struct Mixed {
            a: u8,
            b: u32,
            c: i16,
            d: [f32; 2],
        }
    }

    #[test]
    fn struct_layout_is_packed() {
        assert_eq!(Mixed::SIZE, 1 + 4 + 2 + 8);
        assert_eq!(Mixed::ALIGN, 4);
    }

    #[test]
    fn struct_roundtrip() {
        let m = Mixed {
            a: 7,
            b: 0xdead_beef,
            c: -300,
            d: [1.0, -2.0],
        };
        let mut buf = vec![0u8; Mixed::SIZE];
        m.write_to(&mut buf);
        assert_eq!(Mixed::read_from(&buf), m);
        // The first field lands at offset 0, packed.
        assert_eq!(buf[0], 7);
        assert_eq!(&buf[1..5], &0xdead_beef_u32.to_le_bytes());
    }

    impl_pod! {
        struct Empty {}
    }

    #[test]
    fn empty_struct_is_zero_sized() {
        assert_eq!(Empty::SIZE, 0);
        assert_eq!(Empty::ALIGN, 1);
        let e = Empty {};
        e.write_to(&mut []);
        let _ = Empty::read_from(&[]);
    }

    #[test]
    #[should_panic]
    fn short_buffer_panics() {
        let mut buf = [0u8; 2];
        0u32.write_to(&mut buf);
    }
}
