//! Safe, explicit byte-level layout for typed values.
//!
//! Simulated memories are byte arrays; game data and language values must
//! be marshalled into and out of them. Rather than transmuting (which
//! would require `unsafe` and entangle simulated layout with host layout),
//! [`Pod`] types define an explicit, packed, little-endian wire layout.
//! The [`impl_pod!`](crate::impl_pod) macro derives the implementation
//! for plain structs of `Pod` fields, mirroring how real engine code
//! declares DMA-able PODs.

/// A plain-old-data value with an explicit simulated-memory layout.
///
/// The layout contract:
///
/// - a value occupies exactly [`Pod::SIZE`] bytes, packed (no padding),
/// - multi-byte integers and floats are little-endian,
/// - [`Pod::ALIGN`] is the *preferred* placement alignment (used by
///   allocators and the DMA cost model), not a correctness requirement.
///
/// # Panics
///
/// `write_to` and `read_from` panic if the provided buffer is shorter
/// than [`Pod::SIZE`]; callers (memory regions, accessors) always check
/// bounds first and pass exactly-sized slices.
///
/// # Example
///
/// ```
/// use memspace::Pod;
///
/// let mut buf = [0u8; 4];
/// 0xdead_beef_u32.write_to(&mut buf);
/// assert_eq!(u32::read_from(&buf), 0xdead_beef);
/// ```
pub trait Pod: Sized + Copy {
    /// Size of the value in simulated memory, in bytes.
    const SIZE: usize;
    /// Preferred placement alignment in simulated memory, in bytes.
    const ALIGN: usize;

    /// Serialises `self` into the first [`Pod::SIZE`] bytes of `out`.
    fn write_to(&self, out: &mut [u8]);

    /// Deserialises a value from the first [`Pod::SIZE`] bytes of `buf`.
    fn read_from(buf: &[u8]) -> Self;

    /// Serialises a whole slice of values into `out` (packed, in order).
    ///
    /// The default walks the slice element by element; types whose wire
    /// layout coincides with a raw byte copy (notably `u8`) override it
    /// with a single `copy_from_slice` so bulk transfers take one memcpy
    /// instead of a per-element loop.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `values.len() * SIZE`.
    fn write_slice_to(values: &[Self], out: &mut [u8]) {
        if Self::SIZE == 0 {
            return;
        }
        for (value, chunk) in values.iter().zip(out.chunks_exact_mut(Self::SIZE)) {
            value.write_to(chunk);
        }
    }

    /// Deserialises `count` values from `buf`, appending them to `out`.
    ///
    /// The default walks the buffer element by element; `u8` overrides it
    /// with a single `extend_from_slice`. Appending (rather than
    /// returning a fresh `Vec`) lets callers reuse scratch buffers across
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than `count * SIZE`.
    fn read_slice_into(buf: &[u8], count: usize, out: &mut Vec<Self>) {
        out.reserve(count);
        if Self::SIZE == 0 {
            for _ in 0..count {
                out.push(Self::read_from(&[]));
            }
            return;
        }
        for chunk in buf.chunks_exact(Self::SIZE).take(count) {
            out.push(Self::read_from(chunk));
        }
    }
}

macro_rules! impl_pod_int {
    ($($ty:ty),*) => {
        $(
            impl Pod for $ty {
                const SIZE: usize = std::mem::size_of::<$ty>();
                const ALIGN: usize = std::mem::size_of::<$ty>();

                fn write_to(&self, out: &mut [u8]) {
                    out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
                }

                fn read_from(buf: &[u8]) -> Self {
                    let mut bytes = [0u8; std::mem::size_of::<$ty>()];
                    bytes.copy_from_slice(&buf[..Self::SIZE]);
                    <$ty>::from_le_bytes(bytes)
                }
            }
        )*
    };
}

impl_pod_int!(u16, u32, u64, i8, i16, i32, i64, f32, f64);

// `u8` gets a hand-written impl so the slice paths become single
// memcpys — the wire layout of a `u8` slice IS the byte slice. This is
// the bulk fast lane every byte-level transfer (DMA staging, cache
// fills, accessor fetches) bottoms out in.
impl Pod for u8 {
    const SIZE: usize = 1;
    const ALIGN: usize = 1;

    fn write_to(&self, out: &mut [u8]) {
        out[0] = *self;
    }

    fn read_from(buf: &[u8]) -> Self {
        buf[0]
    }

    fn write_slice_to(values: &[Self], out: &mut [u8]) {
        out[..values.len()].copy_from_slice(values);
    }

    fn read_slice_into(buf: &[u8], count: usize, out: &mut Vec<Self>) {
        out.extend_from_slice(&buf[..count]);
    }
}

impl Pod for bool {
    const SIZE: usize = 1;
    const ALIGN: usize = 1;

    fn write_to(&self, out: &mut [u8]) {
        out[0] = u8::from(*self);
    }

    fn read_from(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

impl<T: Pod, const N: usize> Pod for [T; N] {
    const SIZE: usize = T::SIZE * N;
    const ALIGN: usize = T::ALIGN;

    fn write_to(&self, out: &mut [u8]) {
        for (i, item) in self.iter().enumerate() {
            item.write_to(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&buf[i * T::SIZE..(i + 1) * T::SIZE]))
    }
}

/// Maximum of two usizes, usable in const context (for `impl_pod!`).
#[doc(hidden)]
pub const fn const_max(a: usize, b: usize) -> usize {
    if a > b {
        a
    } else {
        b
    }
}

/// Derives [`Pod`] for a struct whose fields are all `Pod`.
///
/// The struct is declared by the macro itself so field order (and hence
/// the packed layout) is unambiguous. Attributes and visibility pass
/// through.
///
/// # Example
///
/// ```
/// use memspace::{impl_pod, Pod};
///
/// impl_pod! {
///     /// A 3-vector as stored in simulated memory.
///     #[derive(PartialEq)]
///     pub struct Vec3f {
///         pub x: f32,
///         pub y: f32,
///         pub z: f32,
///     }
/// }
///
/// assert_eq!(Vec3f::SIZE, 12);
/// let v = Vec3f { x: 1.0, y: 2.0, z: 3.0 };
/// let mut buf = [0u8; 12];
/// v.write_to(&mut buf);
/// assert_eq!(Vec3f::read_from(&buf), v);
/// ```
#[macro_export]
macro_rules! impl_pod {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $fty:ty ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $fty, )*
        }

        impl $crate::Pod for $name {
            const SIZE: usize = 0 $( + <$fty as $crate::Pod>::SIZE )*;
            const ALIGN: usize = {
                #[allow(unused_mut)]
                let mut align = 1usize;
                $( align = $crate::pod::const_max(align, <$fty as $crate::Pod>::ALIGN); )*
                align
            };

            fn write_to(&self, out: &mut [u8]) {
                let _ = &out;
                #[allow(unused_mut)]
                let mut at = 0usize;
                $(
                    <$fty as $crate::Pod>::write_to(
                        &self.$field,
                        &mut out[at..at + <$fty as $crate::Pod>::SIZE],
                    );
                    at += <$fty as $crate::Pod>::SIZE;
                )*
                let _ = at;
            }

            fn read_from(buf: &[u8]) -> Self {
                let _ = &buf;
                #[allow(unused_mut)]
                let mut at = 0usize;
                $(
                    let $field = <$fty as $crate::Pod>::read_from(
                        &buf[at..at + <$fty as $crate::Pod>::SIZE],
                    );
                    at += <$fty as $crate::Pod>::SIZE;
                )*
                let _ = at;
                Self { $( $field, )* }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = [0u8; 8];
        0x0123_4567_89ab_cdef_u64.write_to(&mut buf);
        assert_eq!(u64::read_from(&buf), 0x0123_4567_89ab_cdef);
        assert_eq!(buf[0], 0xef, "layout is little-endian");

        (-5i16).write_to(&mut buf);
        assert_eq!(i16::read_from(&buf), -5);

        1.5f32.write_to(&mut buf);
        assert_eq!(f32::read_from(&buf), 1.5);

        true.write_to(&mut buf);
        assert!(bool::read_from(&buf));
        false.write_to(&mut buf);
        assert!(!bool::read_from(&buf));
    }

    #[test]
    fn array_roundtrip() {
        let arr = [1u16, 2, 3, 4];
        let mut buf = [0u8; 8];
        arr.write_to(&mut buf);
        assert_eq!(<[u16; 4]>::read_from(&buf), arr);
        assert_eq!(<[u16; 4]>::SIZE, 8);
    }

    impl_pod! {
        /// Test struct with mixed field sizes.
        #[derive(PartialEq)]
        struct Mixed {
            a: u8,
            b: u32,
            c: i16,
            d: [f32; 2],
        }
    }

    #[test]
    fn struct_layout_is_packed() {
        assert_eq!(Mixed::SIZE, 1 + 4 + 2 + 8);
        assert_eq!(Mixed::ALIGN, 4);
    }

    #[test]
    fn struct_roundtrip() {
        let m = Mixed {
            a: 7,
            b: 0xdead_beef,
            c: -300,
            d: [1.0, -2.0],
        };
        let mut buf = vec![0u8; Mixed::SIZE];
        m.write_to(&mut buf);
        assert_eq!(Mixed::read_from(&buf), m);
        // The first field lands at offset 0, packed.
        assert_eq!(buf[0], 7);
        assert_eq!(&buf[1..5], &0xdead_beef_u32.to_le_bytes());
    }

    impl_pod! {
        struct Empty {}
    }

    #[test]
    fn empty_struct_is_zero_sized() {
        assert_eq!(Empty::SIZE, 0);
        assert_eq!(Empty::ALIGN, 1);
        let e = Empty {};
        e.write_to(&mut []);
        let _ = Empty::read_from(&[]);
    }

    #[test]
    #[should_panic]
    fn short_buffer_panics() {
        let mut buf = [0u8; 2];
        0u32.write_to(&mut buf);
    }

    #[test]
    fn slice_paths_match_element_paths() {
        let values = [0x1122u16, 0x3344, 0x5566];
        let mut bulk = [0u8; 6];
        u16::write_slice_to(&values, &mut bulk);
        let mut by_element = [0u8; 6];
        for (i, v) in values.iter().enumerate() {
            v.write_to(&mut by_element[i * 2..i * 2 + 2]);
        }
        assert_eq!(bulk, by_element);

        let mut back = Vec::new();
        u16::read_slice_into(&bulk, 3, &mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn u8_slice_paths_are_plain_copies() {
        let bytes = [9u8, 8, 7, 6];
        let mut out = [0u8; 4];
        u8::write_slice_to(&bytes, &mut out);
        assert_eq!(out, bytes);
        let mut back = vec![1u8]; // appends, does not clear
        u8::read_slice_into(&out, 3, &mut back);
        assert_eq!(back, [1, 9, 8, 7]);
    }

    #[test]
    fn zero_sized_pod_slices_are_safe() {
        let values = [Empty {}, Empty {}];
        Empty::write_slice_to(&values, &mut []);
        let mut out = Vec::new();
        Empty::read_slice_into(&[], 2, &mut out);
        assert_eq!(out.len(), 2);
    }
}
