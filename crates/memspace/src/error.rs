//! Error type for memory operations.

use std::error::Error;
use std::fmt;

use crate::space::SpaceId;

/// Errors raised by simulated-memory operations.
///
/// Every fallible operation in this crate (and the crates layered on it)
/// reports one of these. The variants carry enough context to produce the
/// kind of actionable diagnostics the paper argues developers need when
/// working against multiple memory spaces.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemError {
    /// An access fell outside the bounds of its memory region.
    OutOfBounds {
        /// Space the access targeted.
        space: SpaceId,
        /// Byte offset of the access.
        offset: u32,
        /// Length of the access in bytes.
        len: u32,
        /// Capacity of the region in bytes.
        capacity: u32,
    },
    /// An access violated an alignment requirement.
    Misaligned {
        /// Space the access targeted.
        space: SpaceId,
        /// Byte offset of the access.
        offset: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// An address for one space was presented to a different space.
    SpaceMismatch {
        /// Space the address named.
        expected: SpaceId,
        /// Space the operation was performed on.
        actual: SpaceId,
    },
    /// Address arithmetic overflowed the 32-bit simulated address range.
    AddressOverflow {
        /// Space of the address being advanced.
        space: SpaceId,
        /// Base offset.
        offset: u32,
        /// Amount added.
        delta: u32,
    },
    /// An allocation request could not be satisfied.
    OutOfMemory {
        /// Space the allocation targeted.
        space: SpaceId,
        /// Bytes requested.
        requested: u32,
        /// Bytes available.
        available: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds {
                space,
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access of {len} bytes at offset {offset:#x} is out of bounds for space {space} of {capacity} bytes"
            ),
            MemError::Misaligned {
                space,
                offset,
                align,
            } => write!(
                f,
                "access at offset {offset:#x} in space {space} violates {align}-byte alignment"
            ),
            MemError::SpaceMismatch { expected, actual } => write!(
                f,
                "address names space {expected} but was used with space {actual}"
            ),
            MemError::AddressOverflow {
                space,
                offset,
                delta,
            } => write!(
                f,
                "address arithmetic {offset:#x} + {delta:#x} overflows space {space}"
            ),
            MemError::OutOfMemory {
                space,
                requested,
                available,
            } => write!(
                f,
                "allocation of {requested} bytes in space {space} exceeds {available} available bytes"
            ),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = MemError::OutOfBounds {
            space: SpaceId::MAIN,
            offset: 0x100,
            len: 4,
            capacity: 16,
        };
        let text = err.to_string();
        assert!(text.contains("out of bounds"));
        assert!(text.contains("main"));

        let err = MemError::Misaligned {
            space: SpaceId::local_store(0),
            offset: 3,
            align: 16,
        };
        assert!(err.to_string().contains("alignment"));

        let err = MemError::SpaceMismatch {
            expected: SpaceId::MAIN,
            actual: SpaceId::local_store(1),
        };
        assert!(err.to_string().contains("ls1"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MemError>();
    }
}
