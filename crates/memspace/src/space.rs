//! Memory-space identity.
//!
//! A *memory space* is a region of storage with its own address range,
//! disjoint from every other space: pointers into different spaces are
//! incomparable, and moving data between spaces requires an explicit
//! transfer (DMA on the simulated machine). This mirrors the paper's
//! setting, where host (outer) memory and each accelerator's local store
//! are separate spaces.

use std::fmt;

/// Identifier of a memory space.
///
/// `SpaceId` is a small, cheap, `Copy` handle. The conventional layout
/// used throughout the workspace is: id 0 is main (host) memory, and ids
/// `1..=n` are the local stores of accelerators `0..n-1`. Helper
/// constructors encode that convention; nothing stops other layouts.
///
/// # Example
///
/// ```
/// use memspace::SpaceId;
///
/// assert_eq!(SpaceId::MAIN.index(), 0);
/// assert_eq!(SpaceId::local_store(2).index(), 3);
/// assert!(SpaceId::local_store(0).is_local_store());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpaceId(u16);

impl SpaceId {
    /// The main (host / outer) memory space.
    pub const MAIN: SpaceId = SpaceId(0);

    /// Creates a space id from a raw index.
    #[inline]
    pub fn from_index(index: u16) -> SpaceId {
        SpaceId(index)
    }

    /// The space id of accelerator `accel`'s local store, under the
    /// conventional layout.
    pub fn local_store(accel: u16) -> SpaceId {
        SpaceId(accel + 1)
    }

    /// Raw index of this space.
    #[inline]
    pub fn index(self) -> u16 {
        self.0
    }

    /// Whether this is the main memory space (under the conventional
    /// layout).
    #[inline]
    pub fn is_main(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a local-store space (under the conventional
    /// layout).
    #[inline]
    pub fn is_local_store(self) -> bool {
        self.0 != 0
    }

    /// The accelerator index owning this local store, or `None` for main
    /// memory.
    pub fn accel_index(self) -> Option<u16> {
        if self.is_local_store() {
            Some(self.0 - 1)
        } else {
            None
        }
    }
}

impl fmt::Debug for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_main() {
            write!(f, "SpaceId(main)")
        } else {
            write!(f, "SpaceId(ls{})", self.0 - 1)
        }
    }
}

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_main() {
            write!(f, "main")
        } else {
            write!(f, "ls{}", self.0 - 1)
        }
    }
}

/// The kind of a memory space, determining its rough performance class
/// and capacity expectations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpaceKind {
    /// Large, high-latency (from an accelerator's perspective) main
    /// memory, shared by the host and all accelerators.
    Main,
    /// A small, fast scratch-pad local store private to one accelerator.
    LocalStore {
        /// Index of the owning accelerator.
        accel: u16,
    },
}

impl SpaceKind {
    /// Whether this kind is a local store.
    pub fn is_local_store(self) -> bool {
        matches!(self, SpaceKind::LocalStore { .. })
    }
}

impl fmt::Display for SpaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceKind::Main => write!(f, "main memory"),
            SpaceKind::LocalStore { accel } => write!(f, "local store of accelerator {accel}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_space_convention() {
        assert!(SpaceId::MAIN.is_main());
        assert!(!SpaceId::MAIN.is_local_store());
        assert_eq!(SpaceId::MAIN.accel_index(), None);
    }

    #[test]
    fn local_store_convention() {
        for accel in 0..8 {
            let id = SpaceId::local_store(accel);
            assert!(id.is_local_store());
            assert!(!id.is_main());
            assert_eq!(id.accel_index(), Some(accel));
            assert_eq!(id.index(), accel + 1);
        }
    }

    #[test]
    fn space_ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SpaceId::MAIN);
        set.insert(SpaceId::local_store(0));
        set.insert(SpaceId::local_store(0));
        assert_eq!(set.len(), 2);
        assert!(SpaceId::MAIN < SpaceId::local_store(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SpaceId::MAIN.to_string(), "main");
        assert_eq!(SpaceId::local_store(3).to_string(), "ls3");
        assert_eq!(SpaceKind::Main.to_string(), "main memory");
        assert_eq!(
            SpaceKind::LocalStore { accel: 1 }.to_string(),
            "local store of accelerator 1"
        );
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", SpaceId::MAIN).is_empty());
        assert!(!format!("{:?}", SpaceKind::Main).is_empty());
    }
}
