//! Simulated memory regions.

use std::fmt;

use crate::addr::{Addr, AddrRange};
use crate::error::MemError;
use crate::layout::checked_align_up;
use crate::pod::Pod;
use crate::space::{SpaceId, SpaceKind};

/// A bounds-checked simulated memory: one memory space's storage.
///
/// A region is a flat byte array tagged with its [`SpaceId`]. All access
/// is bounds-checked and space-checked: presenting an address minted for
/// a different space is an error, which is precisely the class of bug the
/// Offload C++ type system exists to rule out statically (paper §3).
///
/// Regions also carry a simple bump allocator ([`MemoryRegion::alloc`])
/// so runtimes can place data without an external allocator; offset 0 is
/// reserved as the null address.
///
/// # Example
///
/// ```
/// use memspace::{Addr, MemoryRegion, SpaceId, SpaceKind};
///
/// # fn main() -> Result<(), memspace::MemError> {
/// let mut m = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
/// let addr = m.alloc(64, 16)?;
/// m.write_pod(addr, &1.25f32)?;
/// assert_eq!(m.read_pod::<f32>(addr)?, 1.25);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct MemoryRegion {
    id: SpaceId,
    kind: SpaceKind,
    bytes: Vec<u8>,
    next_free: u32,
    high_water: u32,
    /// One past the highest byte ever written (not merely allocated).
    /// Everything at or above this offset is still zero from
    /// construction, so [`MemoryRegion::reset`] only has to clear the
    /// dirty prefix — the difference between recycling a 16 MiB machine
    /// in microseconds and re-zeroing it wholesale.
    dirty_high: u32,
}

impl MemoryRegion {
    /// Creates a zero-initialised region of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a memory space must exist to be
    /// addressed.
    pub fn new(id: SpaceId, kind: SpaceKind, capacity: u32) -> MemoryRegion {
        assert!(capacity > 0, "memory region capacity must be non-zero");
        MemoryRegion {
            id,
            kind,
            bytes: vec![0; capacity as usize],
            // Offset 0 is the null address; start allocating past it at
            // a DMA-friendly boundary.
            next_free: crate::DMA_ALIGN,
            high_water: crate::DMA_ALIGN,
            dirty_high: 0,
        }
    }

    /// Notes that bytes up to offset `end` (exclusive) may now be
    /// non-zero. Every mutation path funnels through this.
    #[inline]
    fn mark_dirty(&mut self, end: usize) {
        self.dirty_high = self.dirty_high.max(end as u32);
    }

    /// The space this region implements.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// The kind of this region.
    pub fn kind(&self) -> SpaceKind {
        self.kind
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Bytes not yet handed out by the bump allocator.
    pub fn bytes_free(&self) -> u32 {
        self.capacity().saturating_sub(self.next_free)
    }

    #[inline]
    fn check(&self, addr: Addr, len: u32) -> Result<usize, MemError> {
        if addr.space() != self.id {
            return Err(MemError::SpaceMismatch {
                expected: addr.space(),
                actual: self.id,
            });
        }
        let end = addr
            .offset()
            .checked_add(len)
            .ok_or(MemError::AddressOverflow {
                space: self.id,
                offset: addr.offset(),
                delta: len,
            })?;
        if end > self.capacity() {
            return Err(MemError::OutOfBounds {
                space: self.id,
                offset: addr.offset(),
                len,
                capacity: self.capacity(),
            });
        }
        Ok(addr.offset() as usize)
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SpaceMismatch`] for a foreign address and
    /// [`MemError::OutOfBounds`] for an out-of-range access.
    pub fn read_bytes(&self, addr: Addr, len: u32) -> Result<&[u8], MemError> {
        let at = self.check(addr, len)?;
        Ok(&self.bytes[at..at + len as usize])
    }

    /// Copies bytes starting at `addr` into `out`.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    #[inline]
    pub fn read_into(&self, addr: Addr, out: &mut [u8]) -> Result<(), MemError> {
        let at = self.check(addr, out.len() as u32)?;
        out.copy_from_slice(&self.bytes[at..at + out.len()]);
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    #[inline]
    pub fn write_bytes(&mut self, addr: Addr, data: &[u8]) -> Result<(), MemError> {
        let at = self.check(addr, data.len() as u32)?;
        self.bytes[at..at + data.len()].copy_from_slice(data);
        self.mark_dirty(at + data.len());
        Ok(())
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    pub fn fill(&mut self, addr: Addr, len: u32, value: u8) -> Result<(), MemError> {
        let at = self.check(addr, len)?;
        self.bytes[at..at + len as usize].fill(value);
        self.mark_dirty(at + len as usize);
        Ok(())
    }

    /// Reads a typed value at `addr`.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    pub fn read_pod<T: Pod>(&self, addr: Addr) -> Result<T, MemError> {
        let at = self.check(addr, T::SIZE as u32)?;
        Ok(T::read_from(&self.bytes[at..at + T::SIZE]))
    }

    /// Writes a typed value at `addr`.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    pub fn write_pod<T: Pod>(&mut self, addr: Addr, value: &T) -> Result<(), MemError> {
        let at = self.check(addr, T::SIZE as u32)?;
        value.write_to(&mut self.bytes[at..at + T::SIZE]);
        self.mark_dirty(at + T::SIZE);
        Ok(())
    }

    /// Reads `count` consecutive typed values starting at `addr`.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    pub fn read_pod_slice<T: Pod>(&self, addr: Addr, count: u32) -> Result<Vec<T>, MemError> {
        let mut out = Vec::with_capacity(count as usize);
        self.read_pod_slice_into(addr, count, &mut out)?;
        Ok(out)
    }

    /// Reads `count` consecutive typed values starting at `addr`,
    /// appending them to `out`. Lets hot loops reuse one scratch `Vec`
    /// (clear + refill) instead of allocating a fresh one per call.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    pub fn read_pod_slice_into<T: Pod>(
        &self,
        addr: Addr,
        count: u32,
        out: &mut Vec<T>,
    ) -> Result<(), MemError> {
        let total = (T::SIZE as u32)
            .checked_mul(count)
            .ok_or(MemError::AddressOverflow {
                space: self.id,
                offset: addr.offset(),
                delta: u32::MAX,
            })?;
        let at = self.check(addr, total)?;
        T::read_slice_into(&self.bytes[at..at + total as usize], count as usize, out);
        Ok(())
    }

    /// Writes consecutive typed values starting at `addr`.
    ///
    /// One bounds check, then the type's bulk serialiser — a single
    /// `copy_from_slice` for byte-layout types rather than a
    /// per-element loop.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::read_bytes`].
    pub fn write_pod_slice<T: Pod>(&mut self, addr: Addr, values: &[T]) -> Result<(), MemError> {
        let total = (T::SIZE * values.len()) as u32;
        let at = self.check(addr, total)?;
        T::write_slice_to(values, &mut self.bytes[at..at + total as usize]);
        self.mark_dirty(at + total as usize);
        Ok(())
    }

    /// Bump-allocates `size` bytes at the given alignment and returns the
    /// address of the block.
    ///
    /// This is intentionally a simple arena: the paper's workloads
    /// allocate task data once per frame region and reset wholesale,
    /// which [`MemoryRegion::reset_allocator`] models.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self, size: u32, align: u32) -> Result<Addr, MemError> {
        let start = checked_align_up(self.id, self.next_free, align)?;
        let end = start.checked_add(size).ok_or(MemError::AddressOverflow {
            space: self.id,
            offset: start,
            delta: size,
        })?;
        if end > self.capacity() {
            return Err(MemError::OutOfMemory {
                space: self.id,
                requested: size,
                available: self.bytes_free(),
            });
        }
        self.next_free = end;
        self.high_water = self.high_water.max(end);
        Ok(Addr::new(self.id, start))
    }

    /// Allocates room for a single `T` at its preferred alignment.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::alloc`].
    pub fn alloc_pod<T: Pod>(&mut self) -> Result<Addr, MemError> {
        self.alloc(T::SIZE as u32, T::ALIGN as u32)
    }

    /// Allocates room for `count` consecutive `T`s at `T`'s preferred
    /// alignment.
    ///
    /// # Errors
    ///
    /// As for [`MemoryRegion::alloc`].
    pub fn alloc_pod_slice<T: Pod>(&mut self, count: u32) -> Result<Addr, MemError> {
        let size = (T::SIZE as u32)
            .checked_mul(count)
            .ok_or(MemError::OutOfMemory {
                space: self.id,
                requested: u32::MAX,
                available: self.bytes_free(),
            })?;
        self.alloc(size, T::ALIGN as u32)
    }

    /// Resets the bump allocator, making the whole region (minus the null
    /// page) available again. Contents are left in place.
    pub fn reset_allocator(&mut self) {
        self.next_free = crate::DMA_ALIGN;
    }

    /// Restores the region to its as-constructed state: every byte is
    /// zeroed and the bump allocator (including the high-water mark)
    /// restarts past the null page. The backing storage is reused, so a
    /// reset allocates nothing — this is the arena-reuse primitive the
    /// sim farm's per-world `Machine` recycling is built on.
    pub fn reset(&mut self) {
        // Bytes at or above `dirty_high` were never written, so they are
        // still zero from construction (or the previous reset): clearing
        // the dirty prefix restores the exact as-constructed contents
        // without touching the untouched tail.
        self.bytes[..self.dirty_high as usize].fill(0);
        self.dirty_high = 0;
        self.next_free = crate::DMA_ALIGN;
        self.high_water = crate::DMA_ALIGN;
    }

    /// Returns the current allocator position, to be restored later with
    /// [`MemoryRegion::restore_alloc`]. Used to scope allocations to an
    /// offload block: data declared inside the block dies with it.
    pub fn save_alloc(&self) -> u32 {
        self.next_free
    }

    /// Restores a previously saved allocator position, releasing every
    /// allocation made since [`MemoryRegion::save_alloc`].
    ///
    /// # Panics
    ///
    /// Panics if `mark` is ahead of the current position (restoring a
    /// mark from a different region or a stale frame).
    pub fn restore_alloc(&mut self, mark: u32) {
        assert!(
            mark <= self.next_free,
            "allocator mark {mark} is ahead of the current position {}",
            self.next_free
        );
        self.next_free = mark;
    }

    /// Peak allocator position ever reached, in bytes — the region's
    /// allocation high-water mark. Unlike [`MemoryRegion::save_alloc`],
    /// this survives `restore_alloc`/`reset_allocator`, so it reports
    /// the worst-case local-store footprint across scoped offload
    /// blocks (the number an SPE programmer budgets against).
    pub fn alloc_high_water(&self) -> u32 {
        self.high_water
    }

    /// The full addressable range of the region.
    pub fn range(&self) -> AddrRange {
        AddrRange::new(Addr::new(self.id, 0), self.capacity())
            .expect("region range is always representable")
    }
}

/// Copies `len` bytes from `src_addr` in `src` to `dst_addr` in `dst`.
///
/// This is the primitive the DMA engine uses to move data between memory
/// spaces; it lives here because it needs simultaneous access to two
/// regions.
///
/// # Errors
///
/// Propagates bounds/space errors from either side.
pub fn copy_between(
    src: &MemoryRegion,
    src_addr: Addr,
    dst: &mut MemoryRegion,
    dst_addr: Addr,
    len: u32,
) -> Result<(), MemError> {
    // Check both sides first, then copy directly region-to-region: this
    // runs on every simulated DMA transfer, so it must not bounce the
    // payload through a temporary allocation.
    let src_at = src.check(src_addr, len)?;
    let dst_at = dst.check(dst_addr, len)?;
    dst.bytes[dst_at..dst_at + len as usize]
        .copy_from_slice(&src.bytes[src_at..src_at + len as usize]);
    dst.mark_dirty(dst_at + len as usize);
    Ok(())
}

impl fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("capacity", &self.capacity())
            .field("next_free", &self.next_free)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> MemoryRegion {
        MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 1024)
    }

    #[test]
    fn read_write_bytes_roundtrip() {
        let mut m = region();
        let addr = Addr::new(SpaceId::MAIN, 100);
        m.write_bytes(addr, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(addr, 4).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn fresh_region_is_zeroed() {
        let m = region();
        assert_eq!(
            m.read_bytes(Addr::new(SpaceId::MAIN, 0), 16).unwrap(),
            &[0; 16]
        );
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let m = region();
        let err = m.read_bytes(Addr::new(SpaceId::MAIN, 1020), 8).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { len: 8, .. }));
    }

    #[test]
    fn end_of_region_access_is_allowed() {
        let mut m = region();
        let addr = Addr::new(SpaceId::MAIN, 1020);
        m.write_bytes(addr, &[9, 9, 9, 9]).unwrap();
        assert_eq!(m.read_bytes(addr, 4).unwrap(), &[9, 9, 9, 9]);
    }

    #[test]
    fn space_mismatch_is_reported() {
        let m = region();
        let foreign = Addr::new(SpaceId::local_store(0), 0);
        let err = m.read_bytes(foreign, 4).unwrap_err();
        assert!(matches!(err, MemError::SpaceMismatch { .. }));
    }

    #[test]
    fn overflowing_access_is_reported() {
        let m = region();
        let err = m
            .read_bytes(Addr::new(SpaceId::MAIN, u32::MAX - 1), 4)
            .unwrap_err();
        assert!(matches!(err, MemError::AddressOverflow { .. }));
    }

    #[test]
    fn pod_roundtrip() {
        let mut m = region();
        let addr = Addr::new(SpaceId::MAIN, 64);
        m.write_pod(addr, &0x1234_5678_u32).unwrap();
        assert_eq!(m.read_pod::<u32>(addr).unwrap(), 0x1234_5678);
    }

    #[test]
    fn pod_slice_roundtrip() {
        let mut m = region();
        let addr = Addr::new(SpaceId::MAIN, 64);
        let values = [1.0f32, 2.0, 3.0, 4.0];
        m.write_pod_slice(addr, &values).unwrap();
        assert_eq!(m.read_pod_slice::<f32>(addr, 4).unwrap(), values);
    }

    #[test]
    fn pod_slice_into_reuses_scratch() {
        let mut m = region();
        let addr = Addr::new(SpaceId::MAIN, 64);
        m.write_pod_slice(addr, &[10u32, 20, 30]).unwrap();
        let mut scratch: Vec<u32> = Vec::with_capacity(8);
        m.read_pod_slice_into(addr, 3, &mut scratch).unwrap();
        assert_eq!(scratch, [10, 20, 30]);
        scratch.clear();
        m.read_pod_slice_into(addr, 2, &mut scratch).unwrap();
        assert_eq!(scratch, [10, 20]);
    }

    #[test]
    fn alloc_respects_alignment_and_null() {
        let mut m = region();
        let a = m.alloc(10, 16).unwrap();
        assert!(a.offset() >= crate::DMA_ALIGN, "null page is reserved");
        assert!(a.is_aligned_to(16));
        let b = m.alloc(10, 16).unwrap();
        assert!(b.offset() >= a.offset() + 10);
        assert!(b.is_aligned_to(16));
    }

    #[test]
    fn alloc_exhaustion() {
        let mut m = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64);
        assert!(m.alloc(32, 1).is_ok());
        let err = m.alloc(64, 1).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
    }

    #[test]
    fn reset_allocator_reclaims() {
        let mut m = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64);
        m.alloc(32, 1).unwrap();
        m.reset_allocator();
        assert!(m.alloc(32, 1).is_ok());
    }

    #[test]
    fn fill_works() {
        let mut m = region();
        let addr = Addr::new(SpaceId::MAIN, 10);
        m.fill(addr, 6, 0xab).unwrap();
        assert_eq!(m.read_bytes(addr, 6).unwrap(), &[0xab; 6]);
        assert_eq!(m.read_bytes(Addr::new(SpaceId::MAIN, 16), 1).unwrap(), &[0]);
    }

    #[test]
    fn copy_between_regions() {
        let mut src = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 256);
        let mut dst = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            256,
        );
        let s = Addr::new(SpaceId::MAIN, 32);
        let d = Addr::new(SpaceId::local_store(0), 64);
        src.write_bytes(s, &[5, 6, 7, 8]).unwrap();
        copy_between(&src, s, &mut dst, d, 4).unwrap();
        assert_eq!(dst.read_bytes(d, 4).unwrap(), &[5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 0);
    }

    #[test]
    fn reset_restores_the_as_constructed_state() {
        let mut m = region();
        let a = m.alloc(64, 16).unwrap();
        m.write_bytes(a, &[9; 64]).unwrap();
        let _ = m.alloc(256, 16).unwrap();
        m.reset();
        // Same allocation sequence, same addresses, zeroed contents.
        let fresh = region();
        assert_eq!(m.bytes_free(), fresh.bytes_free());
        assert_eq!(m.alloc_high_water(), fresh.alloc_high_water());
        let b = m.alloc(64, 16).unwrap();
        assert_eq!(b, a, "reset replays the allocation sequence");
        assert_eq!(m.read_bytes(b, 64).unwrap(), &[0u8; 64][..]);
    }

    #[test]
    fn read_into_buffer() {
        let mut m = region();
        let addr = Addr::new(SpaceId::MAIN, 8);
        m.write_bytes(addr, &[1, 2, 3]).unwrap();
        let mut out = [0u8; 3];
        m.read_into(addr, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
    }
}
