//! Declared access modes for offloaded buffers.
//!
//! The Henrio/Kessler/Li line of work (arXiv 1910.11110) shows that a
//! three-valued access declaration — *read*, *write*, or *update* — is
//! enough information to drive coherence and transfer optimisation on
//! heterogeneous memory systems. This module provides the vocabulary:
//! an [`AccessMode`] for one buffer and a [`ModeSet`] collecting the
//! declarations an offload made about the main-memory ranges it touches.
//!
//! The set is deliberately *permissive when empty*: an offload that
//! declares nothing keeps today's conservative behaviour (every store
//! is journalled and written back). As soon as at least one range is
//! declared, the contract tightens — stores outside any declared
//! writable range become errors, and the runtime is licensed to skip
//! rollback snapshots for `Write` ranges and write-back transfers for
//! `Read` ranges.

use crate::addr::Addr;

/// How an offloaded kernel accesses a declared buffer.
///
/// Mirrors the read / write / readwrite triple of arXiv 1910.11110:
///
/// | Mode | Kernel may read | Kernel may store | Runtime licence |
/// |------|-----------------|------------------|-----------------|
/// | [`Read`](AccessMode::Read) | yes | no | elide write-back DMA, skip put journal |
/// | [`Write`](AccessMode::Write) | no (pre-image) | yes, fully | skip put-journal pre-image snapshot |
/// | [`Update`](AccessMode::Update) | yes | yes | none — conservative journal + write-back |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// The kernel only loads from this range; it never stores to it.
    Read,
    /// The kernel fully overwrites this range and never depends on its
    /// pre-image. A retried or host-fallback attempt rewrites every
    /// byte, so rollback snapshots are unnecessary.
    Write,
    /// The kernel both reads and stores this range (read-modify-write).
    /// Recovery still needs pre-image snapshots.
    Update,
}

impl core::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AccessMode::Read => write!(f, "read"),
            AccessMode::Write => write!(f, "write"),
            AccessMode::Update => write!(f, "update"),
        }
    }
}

/// One declared range: a start address, a byte length and the mode the
/// kernel promised for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModeDecl {
    /// First byte of the declared range.
    pub addr: Addr,
    /// Length of the range in bytes.
    pub len: u32,
    /// The declared access mode.
    pub mode: AccessMode,
}

/// The set of access-mode declarations attached to one offload (or one
/// pipeline stage).
///
/// An **empty** set means *undeclared*: the legacy permissive contract
/// where every store is treated as [`AccessMode::Update`]. A non-empty
/// set is strict: a store whose target range is not fully contained in
/// a declared `Write` or `Update` range is an undeclared write and is
/// rejected by the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct ModeSet {
    decls: Vec<ModeDecl>,
}

impl ModeSet {
    /// An empty (permissive, legacy) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing was declared — the permissive legacy contract.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Number of declared ranges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Declares `len` bytes starting at `addr` with the given mode.
    /// Later declarations win on exact overlap lookups, but declaring
    /// overlapping ranges with different modes is a programming error
    /// the engine resolves in favour of the *last* covering declaration.
    pub fn declare(&mut self, addr: Addr, len: u32, mode: AccessMode) {
        self.decls.push(ModeDecl { addr, len, mode });
    }

    /// Builder-style [`declare`](Self::declare).
    pub fn with(mut self, addr: Addr, len: u32, mode: AccessMode) -> Self {
        self.declare(addr, len, mode);
        self
    }

    /// The declared ranges, in declaration order.
    #[must_use]
    pub fn decls(&self) -> &[ModeDecl] {
        &self.decls
    }

    /// The mode covering the `len` bytes at `addr`, if the whole span
    /// is contained in a single declared range (the last such range
    /// wins). `None` means the span is (at least partially) undeclared.
    #[must_use]
    pub fn mode_for(&self, addr: Addr, len: u32) -> Option<AccessMode> {
        let start = u64::from(addr.offset());
        let end = start + u64::from(len);
        self.decls
            .iter()
            .rev()
            .find(|d| {
                d.addr.space() == addr.space()
                    && u64::from(d.addr.offset()) <= start
                    && end <= u64::from(d.addr.offset()) + u64::from(d.len)
            })
            .map(|d| d.mode)
    }

    /// True when every declared range is [`AccessMode::Read`] (and at
    /// least one range is declared) — the whole working set is
    /// read-only, so caches can drop dirty-line bookkeeping entirely.
    #[must_use]
    pub fn all_read_only(&self) -> bool {
        !self.decls.is_empty() && self.decls.iter().all(|d| d.mode == AccessMode::Read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceId;

    fn main_addr(off: u32) -> Addr {
        Addr::new(SpaceId::MAIN, off)
    }

    #[test]
    fn empty_set_is_permissive() {
        let set = ModeSet::new();
        assert!(set.is_empty());
        assert_eq!(set.mode_for(main_addr(0), 64), None);
        assert!(!set.all_read_only());
    }

    #[test]
    fn containment_lookup() {
        let set = ModeSet::new()
            .with(main_addr(0), 256, AccessMode::Read)
            .with(main_addr(256), 128, AccessMode::Write);
        assert_eq!(set.mode_for(main_addr(0), 256), Some(AccessMode::Read));
        assert_eq!(set.mode_for(main_addr(64), 64), Some(AccessMode::Read));
        assert_eq!(set.mode_for(main_addr(256), 128), Some(AccessMode::Write));
        // Straddles the Read/Write boundary: no single covering range.
        assert_eq!(set.mode_for(main_addr(192), 128), None);
        // Entirely outside.
        assert_eq!(set.mode_for(main_addr(512), 16), None);
    }

    #[test]
    fn last_covering_declaration_wins() {
        let set = ModeSet::new()
            .with(main_addr(0), 256, AccessMode::Read)
            .with(main_addr(0), 256, AccessMode::Update);
        assert_eq!(set.mode_for(main_addr(16), 16), Some(AccessMode::Update));
    }

    #[test]
    fn lookup_is_space_aware() {
        let set = ModeSet::new().with(main_addr(0), 256, AccessMode::Write);
        let local = Addr::new(SpaceId::local_store(0), 0);
        assert_eq!(set.mode_for(local, 16), None);
    }

    #[test]
    fn no_overflow_at_the_top_of_the_space() {
        let set = ModeSet::new().with(main_addr(u32::MAX - 15), 16, AccessMode::Write);
        assert_eq!(
            set.mode_for(main_addr(u32::MAX - 15), 16),
            Some(AccessMode::Write)
        );
        assert_eq!(set.mode_for(main_addr(u32::MAX - 15), 17), None);
    }

    #[test]
    fn all_read_only_requires_uniform_reads() {
        let mut set = ModeSet::new().with(main_addr(0), 64, AccessMode::Read);
        assert!(set.all_read_only());
        set.declare(main_addr(64), 64, AccessMode::Update);
        assert!(!set.all_read_only());
    }

    #[test]
    fn display_names() {
        assert_eq!(AccessMode::Read.to_string(), "read");
        assert_eq!(AccessMode::Write.to_string(), "write");
        assert_eq!(AccessMode::Update.to_string(), "update");
    }
}
