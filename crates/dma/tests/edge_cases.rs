//! Edge cases of the per-tag-ring DMA bookkeeping.
//!
//! The engine's in-flight ledger is a FIFO ring per tag plus a counter;
//! these tests pin down the behaviours that representation must
//! preserve from the seed's flat list: empty-group waits are free, tags
//! are fully reusable after retirement, retirement order does not
//! confuse the race checker, and overlap reports survive the
//! reorganisation.

use dma::{DmaEngine, RaceKind, Tag, TagMask};
use memspace::{Addr, MemoryRegion, SpaceId, SpaceKind};

fn setup() -> (MemoryRegion, MemoryRegion, DmaEngine) {
    let main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
    let ls = MemoryRegion::new(
        SpaceId::local_store(0),
        SpaceKind::LocalStore { accel: 0 },
        64 * 1024,
    );
    let engine = DmaEngine::new(SpaceId::local_store(0));
    (main, ls, engine)
}

fn tag(n: u8) -> Tag {
    Tag::new(n).unwrap()
}

fn local(off: u32) -> Addr {
    Addr::new(SpaceId::local_store(0), off)
}

fn remote(off: u32) -> Addr {
    Addr::new(SpaceId::MAIN, off)
}

#[test]
fn wait_on_empty_tag_group_returns_now_with_zero_stall() {
    let (_, _, mut engine) = setup();
    // Nothing in flight anywhere: every mask is a no-op wait.
    assert_eq!(engine.wait(tag(0).mask(), 77), 77);
    assert_eq!(engine.wait(TagMask::ALL, 1234), 1234);
    assert_eq!(engine.wait(TagMask::from_bits(0), 99), 99);
    assert_eq!(engine.stats().stall_cycles, 0);
    assert_eq!(engine.inflight_len(), 0);
}

#[test]
fn wait_on_idle_tag_ignores_other_tags_in_flight() {
    let (mut main, mut ls, mut engine) = setup();
    engine
        .get(
            0,
            local(0x100),
            remote(0x1000),
            64,
            tag(3),
            &mut main,
            &mut ls,
        )
        .unwrap();
    // Tag 5's ring is empty: waiting on it must not block on tag 3.
    assert_eq!(engine.wait(tag(5).mask(), 10), 10);
    assert_eq!(engine.stats().stall_cycles, 0);
    assert!(engine.tag_busy(tag(3)));
    assert_eq!(engine.inflight_len(), 1);
}

#[test]
fn tag_is_fully_reusable_after_retirement() {
    let (mut main, mut ls, mut engine) = setup();
    let t = tag(7);
    let mut now = 0;
    for round in 0..50u32 {
        now = engine
            .get(
                now,
                local(0x100),
                remote(0x1000),
                128,
                t,
                &mut main,
                &mut ls,
            )
            .unwrap();
        now = engine.wait(t.mask(), now);
        assert!(!engine.tag_busy(t), "round {round}: tag drained");
        assert_eq!(engine.inflight_len(), 0, "round {round}: ledger empty");
    }
    assert_eq!(engine.stats().gets, 50);
    assert_eq!(engine.race_checker().detected(), 0);
}

#[test]
fn wait_returns_latest_completion_in_the_group() {
    let (mut main, mut ls, mut engine) = setup();
    let t = tag(2);
    // Two commands on the same tag: the engine streams them serially,
    // so the second completes strictly later than the first.
    engine
        .get(0, local(0x100), remote(0x1000), 4096, t, &mut main, &mut ls)
        .unwrap();
    engine
        .get(
            0,
            local(0x2100),
            remote(0x3000),
            4096,
            t,
            &mut main,
            &mut ls,
        )
        .unwrap();
    let one_cmd = {
        let (mut main2, mut ls2, mut engine2) = setup();
        engine2
            .get(
                0,
                local(0x100),
                remote(0x1000),
                4096,
                t,
                &mut main2,
                &mut ls2,
            )
            .unwrap();
        engine2.wait(t.mask(), 0)
    };
    let both = engine.wait(t.mask(), 0);
    assert!(
        both > one_cmd,
        "group wait covers the serially-later command: {both} vs {one_cmd}"
    );
    assert_eq!(engine.inflight_len(), 0);
}

#[test]
fn mixed_tag_retirement_keeps_counts_consistent() {
    let (mut main, mut ls, mut engine) = setup();
    // Interleave commands across four tags, then retire them in an
    // order unrelated to issue order.
    for i in 0..12u32 {
        let t = tag((i % 4) as u8);
        engine
            .get(
                0,
                local(0x100 + i * 0x200),
                remote(0x1000 + i * 0x200),
                64,
                t,
                &mut main,
                &mut ls,
            )
            .unwrap();
    }
    assert_eq!(engine.inflight_len(), 12);
    engine.wait(tag(2).mask(), 0);
    assert_eq!(engine.inflight_len(), 9);
    assert!(!engine.tag_busy(tag(2)));
    assert!(engine.tag_busy(tag(0)));
    engine.wait(tag(0).mask().union(tag(3).mask()), 0);
    assert_eq!(engine.inflight_len(), 3);
    assert!(engine.tag_busy(tag(1)));
    engine.wait_all(0);
    assert_eq!(engine.inflight_len(), 0);
    assert_eq!(engine.race_checker().detected(), 0);
}

#[test]
fn overlapping_puts_still_report_a_remote_race() {
    let (mut main, mut ls, mut engine) = setup();
    // Two un-waited puts writing overlapping remote bytes: a write/write
    // transfer overlap on the remote side.
    engine
        .put(
            0,
            local(0x100),
            remote(0x1000),
            256,
            tag(1),
            &mut main,
            &mut ls,
        )
        .unwrap();
    engine
        .put(
            0,
            local(0x800),
            remote(0x1080),
            256,
            tag(2),
            &mut main,
            &mut ls,
        )
        .unwrap();
    assert_eq!(engine.race_checker().detected(), 1);
    let reports = engine.take_race_reports();
    assert_eq!(reports.len(), 1);
    match reports[0].kind {
        RaceKind::TransferOverlap {
            first,
            second,
            in_local_store,
        } => {
            assert!(first < second, "ids are issue-ordered");
            assert!(!in_local_store, "the overlap is in remote memory");
        }
        other => panic!("expected TransferOverlap, got {other:?}"),
    }
}

#[test]
fn waited_put_does_not_race_with_a_later_overlapping_put() {
    let (mut main, mut ls, mut engine) = setup();
    let mut now = 0;
    now = engine
        .put(
            now,
            local(0x100),
            remote(0x1000),
            256,
            tag(1),
            &mut main,
            &mut ls,
        )
        .unwrap();
    now = engine.wait(tag(1).mask(), now);
    // The first put retired; the same remote range is free to reuse.
    engine
        .put(
            now,
            local(0x800),
            remote(0x1080),
            256,
            tag(2),
            &mut main,
            &mut ls,
        )
        .unwrap();
    assert_eq!(engine.race_checker().detected(), 0);
}
