//! Dynamic DMA race detection.
//!
//! Modelled on the Cell BE Race Check Library the paper cites (IBM,
//! 2008): every issued command and every direct core access to the local
//! store is reported to a [`RaceChecker`], which flags combinations that
//! would observe or corrupt in-transit data on real hardware.
//!
//! The workspace's execution model moves bytes eagerly at issue time, so
//! a program with a missing `dma_wait` still *computes* the right answer
//! in simulation — exactly the situation that makes these bugs "hard to
//! reproduce and fix" on real machines, where timing decides. The checker
//! exists so the bug is caught anyway.

use std::fmt;

use memspace::AddrRange;

use crate::engine::{DmaDirection, DmaRequest};

/// The kind of a direct core access to the local store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// What the checker does when it detects a race.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RaceMode {
    /// Drop reports (count them only).
    Ignore,
    /// Record reports for later inspection (the default).
    #[default]
    Record,
    /// Panic immediately with a diagnostic — the "fail loudly in
    /// development builds" configuration.
    Panic,
}

/// Classification of a detected race.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceKind {
    /// Two in-flight transfers touch overlapping bytes and at least one
    /// of them writes those bytes. `in_local_store` says which side of
    /// the transfers overlapped.
    TransferOverlap {
        /// Id of the earlier transfer.
        first: u64,
        /// Id of the later transfer.
        second: u64,
        /// Whether the overlap is in the local store (else remote memory).
        in_local_store: bool,
    },
    /// A core accessed local-store bytes still targeted by an un-waited
    /// transfer: reading or writing a `get` destination, or writing a
    /// `put` source.
    UnsyncedLocalAccess {
        /// Id of the conflicting in-flight transfer.
        transfer: u64,
        /// The core access kind.
        access: AccessKind,
        /// Direction of the conflicting transfer.
        direction: DmaDirection,
    },
    /// A put targeted a remote range the offload's access-mode
    /// declarations do not cover writably: either inside a range
    /// declared read-only (`read_only` true) or outside every declared
    /// range. Only raised for mode-annotated offloads — an offload
    /// that declares nothing keeps the permissive legacy contract.
    UndeclaredWrite {
        /// Whether the range was declared read-only (else undeclared).
        read_only: bool,
    },
}

/// A single detected race.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RaceReport {
    /// What went wrong.
    pub kind: RaceKind,
    /// The overlapping/conflicting byte range.
    pub range: AddrRange,
    /// Cycle at which the race was observed.
    pub at: u64,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RaceKind::TransferOverlap {
                first,
                second,
                in_local_store,
            } => write!(
                f,
                "DMA race at cycle {}: transfers #{first} and #{second} overlap on {} in {}",
                self.at,
                self.range,
                if in_local_store {
                    "the local store"
                } else {
                    "remote memory"
                }
            ),
            RaceKind::UnsyncedLocalAccess {
                transfer,
                access,
                direction,
            } => write!(
                f,
                "DMA race at cycle {}: core {access} of {} while {direction} #{transfer} is in flight (missing dma_wait?)",
                self.at, self.range,
            ),
            RaceKind::UndeclaredWrite { read_only } => write!(
                f,
                "undeclared write at cycle {}: put of {} {} the offload's access-mode declarations",
                self.at,
                self.range,
                if read_only {
                    "targets a range declared read-only by"
                } else {
                    "is outside every range declared by"
                },
            ),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Tracked {
    id: u64,
    local: AddrRange,
    remote: AddrRange,
    direction: DmaDirection,
}

/// Dynamic race checker attached to a [`crate::DmaEngine`].
///
/// # Example
///
/// ```
/// use dma::{AccessKind, RaceChecker, RaceMode};
/// use memspace::{Addr, AddrRange, SpaceId};
///
/// let mut checker = RaceChecker::new(RaceMode::Record);
/// // (normally fed by the engine; see DmaEngine::note_local_access)
/// let range = AddrRange::new(Addr::new(SpaceId::local_store(0), 0), 16).unwrap();
/// checker.note_access(range, AccessKind::Read, 0);
/// assert!(checker.reports().is_empty(), "no transfers in flight");
/// ```
#[derive(Debug)]
pub struct RaceChecker {
    mode: RaceMode,
    tracked: Vec<Tracked>,
    reports: Vec<RaceReport>,
    detected: u64,
}

impl RaceChecker {
    /// Creates a checker in the given mode.
    pub fn new(mode: RaceMode) -> RaceChecker {
        RaceChecker {
            mode,
            tracked: Vec::new(),
            reports: Vec::new(),
            detected: 0,
        }
    }

    /// Changes the reporting mode.
    pub fn set_mode(&mut self, mode: RaceMode) {
        self.mode = mode;
    }

    /// Forgets every tracked transfer, recorded report, and the
    /// detection count, keeping the mode and the backing capacity. Part
    /// of [`crate::DmaEngine::reset`].
    pub fn reset(&mut self) {
        self.tracked.clear();
        self.reports.clear();
        self.detected = 0;
    }

    /// Races detected so far (including ignored ones).
    pub fn detected(&self) -> u64 {
        self.detected
    }

    /// Recorded reports (empty in [`RaceMode::Ignore`]).
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Removes and returns the recorded reports.
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports)
    }

    fn emit(&mut self, report: RaceReport) {
        self.detected += 1;
        match self.mode {
            RaceMode::Ignore => {}
            RaceMode::Record => self.reports.push(report),
            RaceMode::Panic => panic!("{report}"),
        }
    }

    /// Registers a newly issued transfer and checks it against every
    /// transfer still in flight.
    ///
    /// # Panics
    ///
    /// Panics on detection in [`RaceMode::Panic`].
    pub fn note_issue(&mut self, id: u64, request: &DmaRequest, now: u64) {
        let entry = Self::entry_for(id, request);
        self.scan_against_inflight(&entry, now);
        self.tracked.push(entry);
    }

    /// Checks a transfer that is issued and retired in one step — a
    /// synchronous staging round trip whose tag queue is idle — against
    /// every transfer still in flight, without tracking it. Because an
    /// issue immediately followed by a retire leaves `tracked`
    /// unchanged and nothing else can observe the transient entry, this
    /// is report-for-report identical to `note_issue` + `note_retire`.
    ///
    /// # Panics
    ///
    /// Panics on detection in [`RaceMode::Panic`].
    #[inline]
    pub fn note_sync(&mut self, id: u64, request: &DmaRequest, now: u64) {
        // Nothing in flight, nothing to overlap with: skip even the
        // range construction (the common case on the outer-access path).
        if self.tracked.is_empty() {
            return;
        }
        let entry = Self::entry_for(id, request);
        self.scan_against_inflight(&entry, now);
    }

    fn entry_for(id: u64, request: &DmaRequest) -> Tracked {
        let local =
            AddrRange::new(request.local, request.size).expect("engine validated the local range");
        let remote = AddrRange::new(request.remote, request.size)
            .expect("engine validated the remote range");
        Tracked {
            id,
            local,
            remote,
            direction: request.direction,
        }
    }

    fn scan_against_inflight(&mut self, entry: &Tracked, now: u64) {
        let (id, local, remote) = (entry.id, entry.local, entry.remote);
        let mut found = Vec::new();
        for other in &self.tracked {
            // Local store side: a get writes its local range, a put reads
            // it. Conflict if the ranges overlap and at least one writes.
            if other.local.overlaps(local)
                && (other.direction == DmaDirection::Get || entry.direction == DmaDirection::Get)
            {
                found.push(RaceReport {
                    kind: RaceKind::TransferOverlap {
                        first: other.id,
                        second: id,
                        in_local_store: true,
                    },
                    range: overlap_of(other.local, local),
                    at: now,
                });
            }
            // Remote side: a put writes its remote range, a get reads it.
            if other.remote.overlaps(remote)
                && (other.direction == DmaDirection::Put || entry.direction == DmaDirection::Put)
            {
                found.push(RaceReport {
                    kind: RaceKind::TransferOverlap {
                        first: other.id,
                        second: id,
                        in_local_store: false,
                    },
                    range: overlap_of(other.remote, remote),
                    at: now,
                });
            }
        }
        for report in found {
            self.emit(report);
        }
    }

    /// Retires a transfer (its tag group was waited on).
    pub fn note_retire(&mut self, id: u64) {
        self.tracked.retain(|t| t.id != id);
    }

    /// Checks a direct core access to the local store against in-flight
    /// transfers.
    ///
    /// Reading or writing an un-waited `get` destination, or writing an
    /// un-waited `put` source, is a race. Reading a `put` source is safe.
    ///
    /// # Panics
    ///
    /// Panics on detection in [`RaceMode::Panic`].
    pub fn note_access(&mut self, range: AddrRange, kind: AccessKind, now: u64) {
        let mut found = Vec::new();
        for t in &self.tracked {
            if !t.local.overlaps(range) {
                continue;
            }
            let races = match (t.direction, kind) {
                (DmaDirection::Get, _) => true,
                (DmaDirection::Put, AccessKind::Write) => true,
                (DmaDirection::Put, AccessKind::Read) => false,
            };
            if races {
                found.push(RaceReport {
                    kind: RaceKind::UnsyncedLocalAccess {
                        transfer: t.id,
                        access: kind,
                        direction: t.direction,
                    },
                    range: overlap_of(t.local, range),
                    at: now,
                });
            }
        }
        for report in found {
            self.emit(report);
        }
    }

    /// Reports a put whose remote range a mode-annotated offload never
    /// declared writable. Called by the engine-owning runtime *before*
    /// it rejects the transfer, so the violation shows up in the race
    /// reports alongside timing races.
    ///
    /// # Panics
    ///
    /// Panics on detection in [`RaceMode::Panic`].
    pub fn note_undeclared_write(&mut self, range: AddrRange, read_only: bool, now: u64) {
        self.emit(RaceReport {
            kind: RaceKind::UndeclaredWrite { read_only },
            range,
            at: now,
        });
    }

    /// Number of transfers currently tracked as in flight.
    pub fn inflight_len(&self) -> usize {
        self.tracked.len()
    }
}

fn overlap_of(a: AddrRange, b: AddrRange) -> AddrRange {
    let start = a.start().offset().max(b.start().offset());
    let end = a.end_offset().min(b.end_offset());
    AddrRange::new(
        memspace::Addr::new(a.space(), start),
        end.saturating_sub(start),
    )
    .expect("overlap of valid ranges is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memspace::{Addr, SpaceId};

    fn ls_range(offset: u32, len: u32) -> AddrRange {
        AddrRange::new(Addr::new(SpaceId::local_store(0), offset), len).unwrap()
    }

    fn main_range(offset: u32, len: u32) -> AddrRange {
        AddrRange::new(Addr::new(SpaceId::MAIN, offset), len).unwrap()
    }

    fn request(local: u32, remote: u32, size: u32, direction: DmaDirection) -> DmaRequest {
        DmaRequest {
            local: Addr::new(SpaceId::local_store(0), local),
            remote: Addr::new(SpaceId::MAIN, remote),
            size,
            tag: crate::Tag::new(0).unwrap(),
            direction,
        }
    }

    #[test]
    fn read_of_pending_get_destination_is_a_race() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_access(ls_range(0x120, 4), AccessKind::Read, 10);
        assert_eq!(c.reports().len(), 1);
        assert!(matches!(
            c.reports()[0].kind,
            RaceKind::UnsyncedLocalAccess {
                transfer: 1,
                access: AccessKind::Read,
                direction: DmaDirection::Get,
            }
        ));
    }

    #[test]
    fn access_after_retire_is_clean() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_retire(1);
        c.note_access(ls_range(0x120, 4), AccessKind::Read, 10);
        assert!(c.reports().is_empty());
        assert_eq!(c.detected(), 0);
    }

    #[test]
    fn read_of_pending_put_source_is_safe_but_write_races() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Put), 0);
        c.note_access(ls_range(0x100, 4), AccessKind::Read, 5);
        assert!(c.reports().is_empty());
        c.note_access(ls_range(0x100, 4), AccessKind::Write, 6);
        assert_eq!(c.reports().len(), 1);
        assert!(matches!(
            c.reports()[0].kind,
            RaceKind::UnsyncedLocalAccess {
                access: AccessKind::Write,
                direction: DmaDirection::Put,
                ..
            }
        ));
    }

    #[test]
    fn disjoint_access_is_clean() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_access(ls_range(0x200, 64), AccessKind::Write, 5);
        assert!(c.reports().is_empty());
    }

    #[test]
    fn overlapping_gets_race_in_local_store() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_issue(2, &request(0x120, 0x2000, 64, DmaDirection::Get), 1);
        assert_eq!(c.reports().len(), 1);
        assert!(matches!(
            c.reports()[0].kind,
            RaceKind::TransferOverlap {
                first: 1,
                second: 2,
                in_local_store: true
            }
        ));
        // The reported range is the actual overlap.
        assert_eq!(c.reports()[0].range, ls_range(0x120, 0x40 - 0x20));
    }

    #[test]
    fn overlapping_puts_race_in_remote_memory() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Put), 0);
        c.note_issue(2, &request(0x200, 0x1020, 64, DmaDirection::Put), 1);
        assert_eq!(c.reports().len(), 1);
        assert!(matches!(
            c.reports()[0].kind,
            RaceKind::TransferOverlap {
                in_local_store: false,
                ..
            }
        ));
        assert_eq!(c.reports()[0].range, main_range(0x1020, 0x40 - 0x20));
    }

    #[test]
    fn get_overlapping_put_source_races_locally() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Put), 0);
        c.note_issue(2, &request(0x100, 0x2000, 64, DmaDirection::Get), 1);
        assert_eq!(c.reports().len(), 1);
    }

    #[test]
    fn overlapping_put_reads_do_not_race_locally() {
        // Two puts reading overlapping local bytes to disjoint remote
        // destinations: read/read, no race anywhere.
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Put), 0);
        c.note_issue(2, &request(0x100, 0x2000, 64, DmaDirection::Put), 1);
        assert!(c.reports().is_empty());
    }

    #[test]
    fn overlapping_get_reads_do_not_race_remotely() {
        // Two gets from the same main-memory bytes into disjoint local
        // buffers: remote side is read/read.
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_issue(2, &request(0x200, 0x1000, 64, DmaDirection::Get), 1);
        assert!(c.reports().is_empty());
    }

    #[test]
    fn ignore_mode_counts_without_recording() {
        let mut c = RaceChecker::new(RaceMode::Ignore);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_access(ls_range(0x100, 4), AccessKind::Read, 5);
        assert!(c.reports().is_empty());
        assert_eq!(c.detected(), 1);
    }

    #[test]
    #[should_panic(expected = "DMA race")]
    fn panic_mode_panics() {
        let mut c = RaceChecker::new(RaceMode::Panic);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_access(ls_range(0x100, 4), AccessKind::Read, 5);
    }

    #[test]
    fn report_display_mentions_wait() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_access(ls_range(0x100, 4), AccessKind::Read, 5);
        let text = c.reports()[0].to_string();
        assert!(text.contains("missing dma_wait"));
        assert!(text.contains("get #1"));
    }

    #[test]
    fn take_reports_drains() {
        let mut c = RaceChecker::new(RaceMode::Record);
        c.note_issue(1, &request(0x100, 0x1000, 64, DmaDirection::Get), 0);
        c.note_access(ls_range(0x100, 4), AccessKind::Read, 5);
        assert_eq!(c.take_reports().len(), 1);
        assert!(c.reports().is_empty());
        assert_eq!(c.detected(), 1);
    }
}
