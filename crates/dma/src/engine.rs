//! The per-accelerator DMA engine and its timing model.

use std::error::Error;
use std::fmt;

use memspace::{copy_between, Addr, AddrRange, MemError, MemoryRegion, DMA_ALIGN};

use crate::race::{RaceChecker, RaceMode};
use crate::MAX_TRANSFER;

/// A DMA tag group identifier, `0..=31` as on the Cell MFC.
///
/// Commands issued under the same tag can be waited on collectively; the
/// engine imposes no ordering between commands of the same tag (the
/// source of many of the races the checkers catch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tag(u8);

impl Tag {
    /// Number of distinct tags.
    pub const COUNT: u8 = 32;

    /// Creates a tag.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError::InvalidTag`] if `raw` is 32 or more.
    pub fn new(raw: u8) -> Result<Tag, DmaError> {
        if raw < Tag::COUNT {
            Ok(Tag(raw))
        } else {
            Err(DmaError::InvalidTag { raw })
        }
    }

    /// The raw tag number.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// The single-tag mask for this tag.
    pub fn mask(self) -> TagMask {
        TagMask(1 << self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// A set of tags, one bit per tag (as in the MFC tag-status mask).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TagMask(u32);

impl TagMask {
    /// The empty mask.
    pub const EMPTY: TagMask = TagMask(0);
    /// The mask containing every tag.
    pub const ALL: TagMask = TagMask(u32::MAX);

    /// Creates a mask from raw bits.
    pub fn from_bits(bits: u32) -> TagMask {
        TagMask(bits)
    }

    /// Raw bits of the mask.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Whether `tag` is in the mask.
    pub fn contains(self, tag: Tag) -> bool {
        self.0 & (1 << tag.raw()) != 0
    }

    /// Returns the union of two masks.
    pub fn union(self, other: TagMask) -> TagMask {
        TagMask(self.0 | other.0)
    }

    /// Whether the mask is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the tags in the mask.
    pub fn iter(self) -> impl Iterator<Item = Tag> {
        (0..Tag::COUNT).filter_map(move |raw| {
            if self.0 & (1 << raw) != 0 {
                Some(Tag(raw))
            } else {
                None
            }
        })
    }
}

impl fmt::Debug for TagMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TagMask({:#010x})", self.0)
    }
}

impl From<Tag> for TagMask {
    fn from(tag: Tag) -> TagMask {
        tag.mask()
    }
}

/// Direction of a transfer, from the issuing accelerator's viewpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DmaDirection {
    /// `dma_get`: remote (main) memory into the local store.
    Get,
    /// `dma_put`: local store out to remote (main) memory.
    Put,
}

impl fmt::Display for DmaDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaDirection::Get => write!(f, "get"),
            DmaDirection::Put => write!(f, "put"),
        }
    }
}

/// A transfer request, before timing.
///
/// `local` must lie in the engine's local store and `remote` in another
/// space (main memory on the simulated machine).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DmaRequest {
    /// Local-store endpoint of the transfer.
    pub local: Addr,
    /// Remote endpoint of the transfer.
    pub remote: Addr,
    /// Transfer size in bytes.
    pub size: u32,
    /// Tag group for completion tracking.
    pub tag: Tag,
    /// Transfer direction.
    pub direction: DmaDirection,
}

/// Timing parameters of the engine, in cycles (and bytes/cycle).
///
/// Defaults are Cell-like: commands cost issue overhead on the issuing
/// core, the engine processes them serially at `bytes_per_cycle`, and
/// completion is visible `latency` cycles after processing finishes.
/// Transfers not aligned to [`memspace::DMA_ALIGN`] on both endpoints
/// (or whose size is not a multiple of it) pay `misalign_penalty`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DmaTiming {
    /// Cycles the issuing core spends enqueueing a command.
    pub issue_cost: u64,
    /// Fixed per-command engine setup cost, in cycles.
    pub setup: u64,
    /// Round-trip latency added after a command finishes streaming.
    pub latency: u64,
    /// Streaming bandwidth, in bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Extra cycles for transfers violating the preferred alignment.
    pub misalign_penalty: u64,
}

impl DmaTiming {
    /// Cell-like defaults (the values are in one place so experiments can
    /// sweep them): issue 32, setup 64, latency 400, 16 B/cycle,
    /// misalignment penalty 96.
    pub fn cell_like() -> DmaTiming {
        DmaTiming {
            issue_cost: 32,
            setup: 64,
            latency: 400,
            bytes_per_cycle: 16,
            misalign_penalty: 96,
        }
    }

    /// Cycles the engine needs to stream `size` bytes for a request with
    /// the given endpoints (excluding latency).
    pub fn stream_cycles(&self, request: &DmaRequest) -> u64 {
        let aligned = request.local.is_aligned_to(DMA_ALIGN)
            && request.remote.is_aligned_to(DMA_ALIGN)
            && request.size.is_multiple_of(DMA_ALIGN);
        self.stream_cycles_aligned(request.size, aligned)
    }

    /// [`DmaTiming::stream_cycles`] with the alignment of the request
    /// already decided, so issue paths that also need the alignment for
    /// statistics compute it exactly once.
    #[inline]
    pub fn stream_cycles_aligned(&self, size: u32, aligned: bool) -> u64 {
        let bw = self.bytes_per_cycle.max(1);
        // Bandwidths are powers of two in every shipped config; the
        // shift avoids a 64-bit division on the per-transfer hot path.
        let streamed = if bw.is_power_of_two() {
            (u64::from(size) + bw - 1) >> bw.trailing_zeros()
        } else {
            u64::from(size).div_ceil(bw)
        };
        let mut cycles = self.setup + streamed;
        if !aligned {
            cycles += self.misalign_penalty;
        }
        cycles
    }
}

impl Default for DmaTiming {
    fn default() -> DmaTiming {
        DmaTiming::cell_like()
    }
}

/// Errors raised when issuing or waiting on DMA commands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DmaError {
    /// Tag number out of range.
    InvalidTag {
        /// The offending raw tag value.
        raw: u8,
    },
    /// Transfer larger than the per-command hardware limit.
    TransferTooLarge {
        /// Requested size in bytes.
        size: u32,
    },
    /// Zero-byte transfers are rejected (as on the MFC).
    EmptyTransfer,
    /// The local endpoint does not lie in this engine's local store.
    WrongLocalSpace {
        /// Space the local endpoint named.
        found: memspace::SpaceId,
        /// Space of this engine's local store.
        expected: memspace::SpaceId,
    },
    /// Both endpoints name the same space; DMA moves data *between*
    /// spaces.
    SameSpace {
        /// The space named by both endpoints.
        space: memspace::SpaceId,
    },
    /// A memory error from either endpoint (bounds, overflow…).
    Memory(MemError),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::InvalidTag { raw } => write!(f, "invalid DMA tag {raw} (must be 0..=31)"),
            DmaError::TransferTooLarge { size } => write!(
                f,
                "transfer of {size} bytes exceeds the {MAX_TRANSFER}-byte per-command limit"
            ),
            DmaError::EmptyTransfer => write!(f, "zero-byte DMA transfer"),
            DmaError::WrongLocalSpace { found, expected } => write!(
                f,
                "local endpoint names space {found} but this engine serves {expected}"
            ),
            DmaError::SameSpace { space } => {
                write!(f, "both endpoints lie in space {space}; DMA crosses spaces")
            }
            DmaError::Memory(err) => write!(f, "memory error during DMA: {err}"),
        }
    }
}

impl Error for DmaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DmaError::Memory(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MemError> for DmaError {
    fn from(err: MemError) -> DmaError {
        DmaError::Memory(err)
    }
}

/// Counters describing an engine's activity so far.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct DmaStats {
    /// Number of `get` commands issued.
    pub gets: u64,
    /// Number of `put` commands issued.
    pub puts: u64,
    /// Bytes moved into the local store.
    pub bytes_in: u64,
    /// Bytes moved out of the local store.
    pub bytes_out: u64,
    /// Cycles cores spent blocked in `wait` calls.
    pub stall_cycles: u64,
    /// Number of commands that paid the misalignment penalty.
    pub misaligned: u64,
}

/// One queued command: everything `wait`/`tag_busy` need to retire it.
///
/// The full [`DmaRequest`] is *not* kept here — the race checker holds
/// the address ranges it needs, keyed by `id`, and completion tracking
/// only needs the time.
#[derive(Clone, Copy, Debug)]
struct QueuedCmd {
    id: u64,
    complete_at: u64,
}

/// An MFC-like DMA engine serving one accelerator's local store.
///
/// The engine performs the byte movement *eagerly* at issue time (the
/// workspace's execution model is deterministic and sequential) while
/// modelling *when* the transfer would complete on real hardware; `wait`
/// returns the cycle at which the caller may proceed. The attached
/// [`RaceChecker`] flags accesses that would have observed incomplete
/// data on the real machine — eager data movement never masks a race.
///
/// # Example
///
/// ```
/// use dma::{DmaEngine, DmaRequest, DmaDirection, Tag};
/// use memspace::{Addr, MemoryRegion, SpaceId, SpaceKind};
///
/// # fn main() -> Result<(), dma::DmaError> {
/// let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
/// let mut ls = MemoryRegion::new(
///     SpaceId::local_store(0),
///     SpaceKind::LocalStore { accel: 0 },
///     4096,
/// );
/// let mut engine = DmaEngine::new(SpaceId::local_store(0));
/// main.write_bytes(Addr::new(SpaceId::MAIN, 64), &[1, 2, 3, 4])?;
///
/// let tag = Tag::new(0)?;
/// engine.get(
///     0, // current cycle
///     Addr::new(SpaceId::local_store(0), 128),
///     Addr::new(SpaceId::MAIN, 64),
///     4,
///     tag,
///     &mut main,
///     &mut ls,
/// )?;
/// let done_at = engine.wait(tag.mask(), 0);
/// assert!(done_at > 0, "completion takes simulated time");
/// assert_eq!(ls.read_bytes(Addr::new(SpaceId::local_store(0), 128), 4).unwrap(), &[1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DmaEngine {
    local_space: memspace::SpaceId,
    timing: DmaTiming,
    engine_free_at: u64,
    // One completion ring per tag. The engine streams commands serially
    // (`admit` advances `engine_free_at` monotonically), so completion
    // times are non-decreasing in issue order: each ring is sorted by
    // construction and the latest completion under a tag is its back.
    // `wait` is then O(tags-in-mask + commands-retired) instead of a
    // scan of everything in flight, and the rings keep their capacity
    // across retire/reissue (the free list), so steady-state issue and
    // wait allocate nothing.
    queues: [std::collections::VecDeque<QueuedCmd>; Tag::COUNT as usize],
    inflight_count: usize,
    next_id: u64,
    last_complete_at: u64,
    stats: DmaStats,
    checker: RaceChecker,
}

impl DmaEngine {
    /// Creates an engine for the given local-store space with Cell-like
    /// timing and a recording race checker.
    pub fn new(local_space: memspace::SpaceId) -> DmaEngine {
        DmaEngine::with_timing(local_space, DmaTiming::cell_like())
    }

    /// Creates an engine with explicit timing parameters.
    pub fn with_timing(local_space: memspace::SpaceId, timing: DmaTiming) -> DmaEngine {
        DmaEngine {
            local_space,
            timing,
            engine_free_at: 0,
            queues: std::array::from_fn(|_| std::collections::VecDeque::new()),
            inflight_count: 0,
            next_id: 1,
            last_complete_at: 0,
            stats: DmaStats::default(),
            checker: RaceChecker::new(RaceMode::Record),
        }
    }

    /// The local-store space this engine serves.
    pub fn local_space(&self) -> memspace::SpaceId {
        self.local_space
    }

    /// The engine's timing parameters.
    pub fn timing(&self) -> DmaTiming {
        self.timing
    }

    /// Sets the race-checking mode (recording by default).
    pub fn set_race_mode(&mut self, mode: RaceMode) {
        self.checker.set_mode(mode);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// The race checker, for inspecting recorded reports.
    pub fn race_checker(&self) -> &RaceChecker {
        &self.checker
    }

    /// Drains recorded race reports.
    pub fn take_race_reports(&mut self) -> Vec<crate::race::RaceReport> {
        self.checker.take_reports()
    }

    #[inline]
    fn validate(&self, request: &DmaRequest) -> Result<(), DmaError> {
        if request.size == 0 {
            return Err(DmaError::EmptyTransfer);
        }
        if request.size > MAX_TRANSFER {
            return Err(DmaError::TransferTooLarge { size: request.size });
        }
        if request.local.space() != self.local_space {
            return Err(DmaError::WrongLocalSpace {
                found: request.local.space(),
                expected: self.local_space,
            });
        }
        if request.remote.space() == request.local.space() {
            return Err(DmaError::SameSpace {
                space: request.remote.space(),
            });
        }
        Ok(())
    }

    /// Issues a `get`: copies `size` bytes from `remote` (in `remote_mem`)
    /// to `local` (in `local_mem`), completing asynchronously under `tag`.
    ///
    /// Returns the cycle at which the issuing core resumes (issue
    /// overhead only — the transfer itself continues in the background).
    ///
    /// # Errors
    ///
    /// Rejects oversized, empty, mis-spaced, or out-of-bounds requests.
    #[allow(clippy::too_many_arguments)]
    pub fn get(
        &mut self,
        now: u64,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
        remote_mem: &mut MemoryRegion,
        local_mem: &mut MemoryRegion,
    ) -> Result<u64, DmaError> {
        let request = DmaRequest {
            local,
            remote,
            size,
            tag,
            direction: DmaDirection::Get,
        };
        self.validate(&request)?;
        copy_between(remote_mem, remote, local_mem, local, size)?;
        self.stats.gets += 1;
        self.stats.bytes_in += u64::from(size);
        Ok(self.admit(now, request))
    }

    /// Issues a `put`: copies `size` bytes from `local` out to `remote`,
    /// completing asynchronously under `tag`.
    ///
    /// # Errors
    ///
    /// As for [`DmaEngine::get`].
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &mut self,
        now: u64,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
        remote_mem: &mut MemoryRegion,
        local_mem: &mut MemoryRegion,
    ) -> Result<u64, DmaError> {
        let request = DmaRequest {
            local,
            remote,
            size,
            tag,
            direction: DmaDirection::Put,
        };
        self.validate(&request)?;
        copy_between(local_mem, local, remote_mem, remote, size)?;
        self.stats.puts += 1;
        self.stats.bytes_out += u64::from(size);
        Ok(self.admit(now, request))
    }

    /// A `get` immediately followed by a `wait` on its tag, for callers
    /// that know the tag's queue is idle (the synchronous outer-access
    /// staging path). The command is issued and retired in one step, so
    /// the per-tag ring and the race tracker's in-flight list are never
    /// touched — every observable (statistics, command ids, race
    /// reports, engine and caller clocks) is bit-identical to
    /// [`DmaEngine::get`] + [`DmaEngine::wait`] on the tag's mask.
    ///
    /// Returns the cycle at which the caller resumes (the wait's return
    /// value).
    ///
    /// # Errors
    ///
    /// As for [`DmaEngine::get`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn sync_get(
        &mut self,
        now: u64,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
        remote_mem: &mut MemoryRegion,
        local_mem: &mut MemoryRegion,
    ) -> Result<u64, DmaError> {
        let request = DmaRequest {
            local,
            remote,
            size,
            tag,
            direction: DmaDirection::Get,
        };
        self.validate(&request)?;
        copy_between(remote_mem, remote, local_mem, local, size)?;
        self.stats.gets += 1;
        self.stats.bytes_in += u64::from(size);
        Ok(self.admit_sync(now, request))
    }

    /// A `put` immediately followed by a `wait` on its tag; see
    /// [`DmaEngine::sync_get`].
    ///
    /// # Errors
    ///
    /// As for [`DmaEngine::put`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn sync_put(
        &mut self,
        now: u64,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
        remote_mem: &mut MemoryRegion,
        local_mem: &mut MemoryRegion,
    ) -> Result<u64, DmaError> {
        let request = DmaRequest {
            local,
            remote,
            size,
            tag,
            direction: DmaDirection::Put,
        };
        self.validate(&request)?;
        copy_between(local_mem, local, remote_mem, remote, size)?;
        self.stats.puts += 1;
        self.stats.bytes_out += u64::from(size);
        Ok(self.admit_sync(now, request))
    }

    /// [`DmaEngine::admit`] fused with the immediate `wait` that
    /// follows it on the synchronous path: same charging, same id
    /// consumption, same race scan, but the command never enters the
    /// tag ring (it would be popped straight back out).
    #[inline]
    fn admit_sync(&mut self, now: u64, request: DmaRequest) -> u64 {
        debug_assert!(
            !self.tag_busy(request.tag),
            "sync transfer requires an idle tag queue"
        );
        let aligned = request.local.is_aligned_to(DMA_ALIGN)
            && request.remote.is_aligned_to(DMA_ALIGN)
            && request.size.is_multiple_of(DMA_ALIGN);
        let stream = self.timing.stream_cycles_aligned(request.size, aligned);
        if !aligned {
            self.stats.misaligned += 1;
        }
        let start = now.max(self.engine_free_at);
        let streamed = start + stream;
        self.engine_free_at = streamed;
        let complete_at = streamed + self.timing.latency;
        self.last_complete_at = complete_at;
        let id = self.next_id;
        self.next_id += 1;
        self.checker.note_sync(id, &request, now);
        // The wait, viewed from the issuing core's resume point: with
        // the tag queue otherwise empty the group's finish time is this
        // command's completion.
        let issued = now + self.timing.issue_cost;
        let resume = issued.max(complete_at);
        self.stats.stall_cycles += resume - issued;
        resume
    }

    fn admit(&mut self, now: u64, request: DmaRequest) -> u64 {
        let aligned = request.local.is_aligned_to(DMA_ALIGN)
            && request.remote.is_aligned_to(DMA_ALIGN)
            && request.size.is_multiple_of(DMA_ALIGN);
        let stream = self.timing.stream_cycles_aligned(request.size, aligned);
        if !aligned {
            self.stats.misaligned += 1;
        }
        // The engine processes commands serially, starting when both the
        // command arrives and the engine is free.
        let start = now.max(self.engine_free_at);
        let streamed = start + stream;
        self.engine_free_at = streamed;
        let complete_at = streamed + self.timing.latency;
        self.last_complete_at = complete_at;
        let id = self.next_id;
        self.next_id += 1;
        self.checker.note_issue(id, &request, now);
        self.queues[request.tag.raw() as usize].push_back(QueuedCmd { id, complete_at });
        self.inflight_count += 1;
        now + self.timing.issue_cost
    }

    /// Waits for every in-flight command whose tag is in `mask`.
    ///
    /// Returns the cycle at which the caller resumes: `now` if everything
    /// already completed, otherwise the latest completion time. Matching
    /// commands are retired.
    pub fn wait(&mut self, mask: TagMask, now: u64) -> u64 {
        let mut resume = now;
        let mut bits = mask.bits();
        while bits != 0 {
            let raw = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let queue = &mut self.queues[raw];
            // The ring is completion-ordered, so the group's finish time
            // is simply its newest command.
            if let Some(last) = queue.back() {
                resume = resume.max(last.complete_at);
            }
            while let Some(cmd) = queue.pop_front() {
                self.checker.note_retire(cmd.id);
                self.inflight_count -= 1;
            }
        }
        self.stats.stall_cycles += resume - now;
        resume
    }

    /// Waits for *all* in-flight commands (a full barrier).
    pub fn wait_all(&mut self, now: u64) -> u64 {
        self.wait(TagMask::ALL, now)
    }

    /// Completion cycle of the most recently issued command (0 if none
    /// was ever issued). The timing model is deterministic, so the
    /// completion time is known at issue time; tracing layers read this
    /// right after `get`/`put` to stamp transfer intervals without
    /// perturbing the engine.
    pub fn last_complete_at(&self) -> u64 {
        self.last_complete_at
    }

    /// Number of commands still in flight.
    pub fn inflight_len(&self) -> usize {
        self.inflight_count
    }

    /// Whether any command under `tag` is still in flight.
    #[inline]
    pub fn tag_busy(&self, tag: Tag) -> bool {
        !self.queues[tag.raw() as usize].is_empty()
    }

    /// Number of in-flight commands whose tag is in `mask`.
    ///
    /// Pure inspection: nothing is retired and no time passes. Fault
    /// layers use this to ask "would this wait actually block?" before
    /// deciding whether a timeout can plausibly be injected.
    pub fn pending_on(&self, mask: TagMask) -> usize {
        let mut bits = mask.bits();
        let mut pending = 0;
        while bits != 0 {
            let raw = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            pending += self.queues[raw].len();
        }
        pending
    }

    /// Drops every in-flight command without waiting for it.
    ///
    /// Models the engine of a dead accelerator: queued transfers are
    /// abandoned (their eager byte movement already happened and is not
    /// undone — on real hardware the data is simply in an undefined
    /// state, which the simulation approximates as "whatever landed").
    /// Retires the commands with the race checker so later accesses are
    /// not flagged against ghosts.
    pub fn purge(&mut self) {
        for queue in &mut self.queues {
            while let Some(cmd) = queue.pop_front() {
                self.checker.note_retire(cmd.id);
                self.inflight_count -= 1;
            }
        }
    }

    /// Restores the engine to its as-constructed state: in-flight
    /// commands, statistics, the race checker's history, the command
    /// id counter and every clock are discarded. The per-tag rings keep
    /// their capacity, so a reset engine reissues without allocating —
    /// the machine-reuse path of the sim farm depends on a reset engine
    /// being indistinguishable from a new one.
    pub fn reset(&mut self) {
        for queue in &mut self.queues {
            queue.clear();
        }
        self.inflight_count = 0;
        self.engine_free_at = 0;
        self.next_id = 1;
        self.last_complete_at = 0;
        self.stats = DmaStats::default();
        self.checker.reset();
    }

    /// Records a direct core access to the local store so the race
    /// checker can flag conflicts with in-flight transfers.
    ///
    /// The `offload-rt` contexts call this on every local load/store.
    pub fn note_local_access(&mut self, range: AddrRange, kind: crate::race::AccessKind, now: u64) {
        self.checker.note_access(range, kind, now);
    }

    /// Reports a put that a mode-annotated offload never declared
    /// writable (see [`RaceChecker::note_undeclared_write`]).
    pub fn note_undeclared_write(&mut self, range: AddrRange, read_only: bool, now: u64) {
        self.checker.note_undeclared_write(range, read_only, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memspace::{SpaceId, SpaceKind};

    fn setup() -> (MemoryRegion, MemoryRegion, DmaEngine) {
        let main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let ls = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            64 * 1024,
        );
        let engine = DmaEngine::new(SpaceId::local_store(0));
        (main, ls, engine)
    }

    fn tag(n: u8) -> Tag {
        Tag::new(n).unwrap()
    }

    #[test]
    fn tag_validation() {
        assert!(Tag::new(31).is_ok());
        assert!(matches!(
            Tag::new(32),
            Err(DmaError::InvalidTag { raw: 32 })
        ));
    }

    #[test]
    fn tag_mask_operations() {
        let m = tag(0).mask().union(tag(5).mask());
        assert!(m.contains(tag(0)));
        assert!(m.contains(tag(5)));
        assert!(!m.contains(tag(1)));
        assert_eq!(m.iter().count(), 2);
        assert!(TagMask::EMPTY.is_empty());
        assert!(TagMask::ALL.contains(tag(31)));
        assert_eq!(TagMask::from(tag(3)).bits(), 8);
    }

    #[test]
    fn get_moves_data_and_costs_time() {
        let (mut main, mut ls, mut engine) = setup();
        let src = Addr::new(SpaceId::MAIN, 256);
        let dst = Addr::new(SpaceId::local_store(0), 512);
        main.write_bytes(src, &[7; 64]).unwrap();

        let resume = engine
            .get(0, dst, src, 64, tag(1), &mut main, &mut ls)
            .unwrap();
        assert_eq!(resume, engine.timing().issue_cost, "issue is non-blocking");
        assert!(engine.tag_busy(tag(1)));

        let done = engine.wait(tag(1).mask(), resume);
        let timing = engine.timing();
        let expected = timing.setup + 64 / timing.bytes_per_cycle + timing.latency;
        assert_eq!(done, expected);
        assert_eq!(ls.read_bytes(dst, 64).unwrap(), &[7u8; 64][..]);
        assert!(!engine.tag_busy(tag(1)));
    }

    #[test]
    fn reset_matches_a_fresh_engine() {
        let (mut main, mut ls, mut engine) = setup();
        let src = Addr::new(SpaceId::MAIN, 256);
        let dst = Addr::new(SpaceId::local_store(0), 512);
        main.write_bytes(src, &[7; 64]).unwrap();
        let resume = engine
            .get(0, dst, src, 64, tag(1), &mut main, &mut ls)
            .unwrap();
        // A race on purpose, so the checker has history to forget.
        engine.note_local_access(
            AddrRange::new(dst, 16).unwrap(),
            crate::race::AccessKind::Read,
            resume,
        );
        assert_eq!(engine.race_checker().detected(), 1);

        engine.reset();
        assert_eq!(engine.stats(), DmaStats::default());
        assert_eq!(engine.inflight_len(), 0);
        assert_eq!(engine.last_complete_at(), 0);
        assert_eq!(engine.race_checker().detected(), 0);
        assert!(engine.race_checker().reports().is_empty());

        // The replayed transfer behaves exactly like the first one on a
        // fresh engine: same issue cost, same completion time.
        let (mut main2, mut ls2, mut fresh) = setup();
        main2.write_bytes(src, &[7; 64]).unwrap();
        let r1 = engine
            .get(0, dst, src, 64, tag(1), &mut main, &mut ls)
            .unwrap();
        let r2 = fresh
            .get(0, dst, src, 64, tag(1), &mut main2, &mut ls2)
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(
            engine.wait(tag(1).mask(), r1),
            fresh.wait(tag(1).mask(), r2)
        );
        assert_eq!(engine.stats(), fresh.stats());
    }

    #[test]
    fn put_moves_data_out() {
        let (mut main, mut ls, mut engine) = setup();
        let local = Addr::new(SpaceId::local_store(0), 1024);
        let remote = Addr::new(SpaceId::MAIN, 2048);
        ls.write_bytes(local, &[3; 32]).unwrap();

        engine
            .put(0, local, remote, 32, tag(2), &mut main, &mut ls)
            .unwrap();
        engine.wait_all(0);
        assert_eq!(main.read_bytes(remote, 32).unwrap(), &[3u8; 32][..]);
        assert_eq!(engine.stats().puts, 1);
        assert_eq!(engine.stats().bytes_out, 32);
    }

    #[test]
    fn same_tag_commands_overlap_the_engine_pipeline() {
        // Two gets issued back-to-back: the engine streams them serially,
        // but both are in flight concurrently (latency overlaps), so the
        // pair completes sooner than two fully-serialised round trips —
        // the Figure 1 motivation for tagged, non-blocking DMA.
        let (mut main, mut ls, mut engine) = setup();
        let t = tag(0);
        let a = Addr::new(SpaceId::local_store(0), 0x100);
        let b = Addr::new(SpaceId::local_store(0), 0x200);
        let ra = Addr::new(SpaceId::MAIN, 0x1000);
        let rb = Addr::new(SpaceId::MAIN, 0x2000);

        let after_a = engine.get(0, a, ra, 256, t, &mut main, &mut ls).unwrap();
        let after_b = engine
            .get(after_a, b, rb, 256, t, &mut main, &mut ls)
            .unwrap();
        let done_parallel = engine.wait(t.mask(), after_b);

        // Fully blocking alternative: wait after each get.
        let (mut main2, mut ls2, mut engine2) = setup();
        let after_a = engine2.get(0, a, ra, 256, t, &mut main2, &mut ls2).unwrap();
        let done_a = engine2.wait(t.mask(), after_a);
        let after_b = engine2
            .get(done_a, b, rb, 256, t, &mut main2, &mut ls2)
            .unwrap();
        let done_blocking = engine2.wait(t.mask(), after_b);

        assert!(
            done_parallel < done_blocking,
            "tagged overlap ({done_parallel}) should beat blocking ({done_blocking})"
        );
    }

    #[test]
    fn wait_on_idle_tag_is_free() {
        let (_, _, mut engine) = setup();
        assert_eq!(engine.wait(tag(7).mask(), 123), 123);
        assert_eq!(engine.stats().stall_cycles, 0);
    }

    #[test]
    fn wait_only_retires_matching_tags() {
        let (mut main, mut ls, mut engine) = setup();
        let a = Addr::new(SpaceId::local_store(0), 0x100);
        let ra = Addr::new(SpaceId::MAIN, 0x1000);
        engine
            .get(0, a, ra, 16, tag(1), &mut main, &mut ls)
            .unwrap();
        engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x200),
                Addr::new(SpaceId::MAIN, 0x2000),
                16,
                tag(2),
                &mut main,
                &mut ls,
            )
            .unwrap();
        engine.wait(tag(1).mask(), 0);
        assert!(!engine.tag_busy(tag(1)));
        assert!(engine.tag_busy(tag(2)));
        assert_eq!(engine.inflight_len(), 1);
    }

    #[test]
    fn union_masks_wait_on_several_tags_at_once() {
        let (mut main, mut ls, mut engine) = setup();
        for (i, t) in [tag(1), tag(2), tag(3)].into_iter().enumerate() {
            engine
                .get(
                    0,
                    Addr::new(SpaceId::local_store(0), 0x100 * (i as u32 + 1)),
                    Addr::new(SpaceId::MAIN, 0x1000 * (i as u32 + 1)),
                    32,
                    t,
                    &mut main,
                    &mut ls,
                )
                .unwrap();
        }
        let done = engine.wait(tag(1).mask().union(tag(3).mask()), 0);
        assert!(done > 0);
        assert!(!engine.tag_busy(tag(1)));
        assert!(engine.tag_busy(tag(2)), "tag 2 was not in the mask");
        assert!(!engine.tag_busy(tag(3)));
    }

    #[test]
    fn misaligned_transfers_pay_a_penalty() {
        let (mut main, mut ls, mut engine) = setup();
        let t = tag(0);
        // Aligned transfer.
        engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x100),
                Addr::new(SpaceId::MAIN, 0x1000),
                64,
                t,
                &mut main,
                &mut ls,
            )
            .unwrap();
        let aligned_done = engine.wait(t.mask(), 0);

        let (mut main2, mut ls2, mut engine2) = setup();
        engine2
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x101),
                Addr::new(SpaceId::MAIN, 0x1001),
                64,
                t,
                &mut main2,
                &mut ls2,
            )
            .unwrap();
        let misaligned_done = engine2.wait(t.mask(), 0);
        assert_eq!(
            misaligned_done,
            aligned_done + engine2.timing().misalign_penalty
        );
        assert_eq!(engine2.stats().misaligned, 1);
        assert_eq!(engine.stats().misaligned, 0);
    }

    #[test]
    fn oversized_and_empty_transfers_are_rejected() {
        let (mut main, mut ls, mut engine) = setup();
        let local = Addr::new(SpaceId::local_store(0), 0);
        let remote = Addr::new(SpaceId::MAIN, 0);
        let err = engine
            .get(
                0,
                local,
                remote,
                MAX_TRANSFER + 1,
                tag(0),
                &mut main,
                &mut ls,
            )
            .unwrap_err();
        assert!(matches!(err, DmaError::TransferTooLarge { .. }));
        let err = engine
            .get(0, local, remote, 0, tag(0), &mut main, &mut ls)
            .unwrap_err();
        assert!(matches!(err, DmaError::EmptyTransfer));
    }

    #[test]
    fn wrong_spaces_are_rejected() {
        let (mut main, mut ls, mut engine) = setup();
        // Local endpoint in main memory.
        let err = engine
            .get(
                0,
                Addr::new(SpaceId::MAIN, 0),
                Addr::new(SpaceId::MAIN, 64),
                16,
                tag(0),
                &mut main,
                &mut ls,
            )
            .unwrap_err();
        assert!(matches!(err, DmaError::WrongLocalSpace { .. }));
        // Both endpoints in the local store.
        let err = engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0),
                Addr::new(SpaceId::local_store(0), 64),
                16,
                tag(0),
                &mut main,
                &mut ls,
            )
            .unwrap_err();
        assert!(matches!(err, DmaError::SameSpace { .. }));
    }

    #[test]
    fn out_of_bounds_transfer_is_a_memory_error() {
        let (mut main, mut ls, mut engine) = setup();
        let err = engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x100),
                Addr::new(SpaceId::MAIN, 64 * 1024 - 4),
                16,
                tag(0),
                &mut main,
                &mut ls,
            )
            .unwrap_err();
        assert!(matches!(err, DmaError::Memory(_)));
    }

    #[test]
    fn stall_cycles_are_accounted() {
        let (mut main, mut ls, mut engine) = setup();
        let resume = engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x100),
                Addr::new(SpaceId::MAIN, 0x1000),
                1024,
                tag(0),
                &mut main,
                &mut ls,
            )
            .unwrap();
        let done = engine.wait(tag(0).mask(), resume);
        assert_eq!(engine.stats().stall_cycles, done - resume);
    }

    #[test]
    fn pending_on_counts_only_masked_tags() {
        let (mut main, mut ls, mut engine) = setup();
        assert_eq!(engine.pending_on(TagMask::ALL), 0);
        engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x100),
                Addr::new(SpaceId::MAIN, 0x1000),
                16,
                tag(1),
                &mut main,
                &mut ls,
            )
            .unwrap();
        engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x200),
                Addr::new(SpaceId::MAIN, 0x2000),
                16,
                tag(1),
                &mut main,
                &mut ls,
            )
            .unwrap();
        engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x300),
                Addr::new(SpaceId::MAIN, 0x3000),
                16,
                tag(4),
                &mut main,
                &mut ls,
            )
            .unwrap();
        assert_eq!(engine.pending_on(tag(1).mask()), 2);
        assert_eq!(engine.pending_on(tag(4).mask()), 1);
        assert_eq!(engine.pending_on(tag(9).mask()), 0);
        assert_eq!(engine.pending_on(TagMask::ALL), 3);
        // Inspection retires nothing.
        assert_eq!(engine.inflight_len(), 3);
        engine.wait(tag(1).mask(), 0);
        assert_eq!(engine.pending_on(TagMask::ALL), 1);
    }

    #[test]
    fn purge_abandons_in_flight_commands() {
        let (mut main, mut ls, mut engine) = setup();
        engine
            .get(
                0,
                Addr::new(SpaceId::local_store(0), 0x100),
                Addr::new(SpaceId::MAIN, 0x1000),
                64,
                tag(3),
                &mut main,
                &mut ls,
            )
            .unwrap();
        engine
            .put(
                0,
                Addr::new(SpaceId::local_store(0), 0x200),
                Addr::new(SpaceId::MAIN, 0x2000),
                64,
                tag(7),
                &mut main,
                &mut ls,
            )
            .unwrap();
        assert_eq!(engine.inflight_len(), 2);
        engine.purge();
        assert_eq!(engine.inflight_len(), 0);
        assert!(!engine.tag_busy(tag(3)));
        assert!(!engine.tag_busy(tag(7)));
        // A purged engine waits for nothing: the caller resumes at once.
        assert_eq!(engine.wait_all(5), 5);
    }

    #[test]
    fn error_display_is_informative() {
        let err = DmaError::TransferTooLarge { size: 99999 };
        assert!(err.to_string().contains("99999"));
        let err = DmaError::InvalidTag { raw: 40 };
        assert!(err.to_string().contains("40"));
    }
}
